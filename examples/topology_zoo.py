#!/usr/bin/env python
"""Topology zoo: simulate networks beyond the paper's fat-tree.

The tour:

1. build each registered zoo family (fat-tree, tree, torus) from a
   ``TopologySpec`` and inspect the compiled graph,
2. trace a generalized up*/down* route through a torus,
3. sweep one simulated operating point per family through the unified
   ``repro.api`` and show why the analytical model stays out of it,
4. register a custom topology family and simulate it too.

Run it with::

    python examples/topology_zoo.py
"""

from repro import api
from repro.experiments import model_applicability
from repro.routing.updown import GraphUpDownRouter
from repro.topology.zoo import (
    Torus2D,
    TopologySpec,
    compile_graph,
    register_topology,
    zoo_kinds,
)
from repro.utils.tables import ResultTable


def main() -> None:
    # ----------------------------------------------------------- the families
    print(f"registered zoo kinds: {', '.join(sorted(zoo_kinds()))}")
    specs = [
        TopologySpec("fattree", {"k": 4}),
        TopologySpec("tree", {"depth": 2, "fanout": 4}),
        TopologySpec("torus", {"rows": 4, "cols": 4}),
    ]
    for spec in specs:
        graph = compile_graph(spec)
        print(f"  {spec.token:24s} {spec.describe()}, {graph.num_channels} compiled channels")
    print()

    # ------------------------------------------------- a route, hop by hop
    # Up*/down* generalizes to any graph with a spanning-tree orientation:
    # on the torus the orientation is BFS distance from switch 0, so a
    # route climbs toward the BFS root region, then descends.
    torus = Torus2D(4, 4)
    route = GraphUpDownRouter(torus).route(5, 10)
    print("torus(4x4) route, host 5 -> host 10:")
    for channel in route:
        print(f"  {channel.kind.name:10s} {channel.source} -> {channel.target}")
    print()

    # ------------------------------------------- one simulated point each
    table = ResultTable(
        headers=["scenario", "nodes", "latency", "model applies?"],
        title="One simulated operating point per zoo family",
    )
    for name in ("zoo/fattree4", "zoo/tree", "zoo/torus"):
        scenario = api.scenario(
            name, points=1, sim=api.simulation_budget("quick", 0)
        )
        report = model_applicability(scenario)
        # engines=("sim",): the paper's analytical model is derived for the
        # multicluster fat-tree family only; `repro-multicluster run` and
        # `compare` report this and drop the model engine automatically.
        runset = api.run(scenario, engines=("sim",))
        record = runset.series("sim")[0]
        table.add_row(
            name,
            str(scenario.topology.total_nodes),
            f"{record.latency:.1f}",
            "yes" if report.applicable else f"no ({report.topology})",
        )
    print(table.to_text())
    print()

    # ------------------------------------------------- bring your own family
    # A builder keyed by `kind` is all the registry needs; the compile
    # cache, routing, shared-memory export and Scenario layer follow from
    # the (kind, params) identity.
    register_topology("square-torus", lambda side: Torus2D(side, side))
    scenario = api.Scenario(
        topology=TopologySpec("square-torus", {"side": 5}),
        offered_traffic=api.Scenario.load_grid(5.0e-4, 2),
        sim=api.simulation_budget("quick", 0),
        name="custom/square5",
    )
    record = api.SimulationEngine().evaluate(scenario, scenario.offered_traffic[0])
    print(
        f"custom square-torus(side=5): {scenario.topology.total_nodes} hosts, "
        f"latency={record.latency:.1f}"
    )
    print()
    print("Next steps: README.md 'Topology zoo' covers routing and the")
    print("degenerate-cluster compilation; tests/sim/test_golden_seed_zoo.py")
    print("pins every family bit-identical across all three kernels.")


if __name__ == "__main__":
    main()
