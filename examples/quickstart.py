#!/usr/bin/env python
"""Quickstart: predict and measure message latency of a Table 1 system.

This is the five-minute tour of the library:

1. build one of the paper's validation organisations (N=544, Table 1),
2. evaluate the analytical latency model at a few offered-traffic levels,
3. cross-check two of those points with the discrete-event wormhole
   simulator,
4. locate the saturation point.

Run it with::

    python examples/quickstart.py
"""

from repro import (
    MessageSpec,
    MultiClusterLatencyModel,
    MultiClusterSimulator,
    SimulationConfig,
    table1_system,
)
from repro.model import saturation_point
from repro.utils.tables import ResultTable


def main() -> None:
    # ------------------------------------------------------------------ setup
    spec = table1_system(544)                 # C=16 clusters, m=4-port switches
    message = MessageSpec(length_flits=32, flit_bytes=256)
    print(spec.describe())
    print(f"message: {message.describe()}")
    print()

    # ------------------------------------------------- analytical predictions
    model = MultiClusterLatencyModel(spec, message)
    offered_traffic = [5e-5, 1e-4, 2e-4, 3e-4, 4e-4]
    table = ResultTable(
        headers=["offered traffic", "model latency", "simulated latency"],
        title="Mean message latency (time units)",
    )

    # --------------------------------------------------- simulation spot-check
    simulator = MultiClusterSimulator(
        spec, message, config=SimulationConfig.quick(seed=42)
    )
    simulate_at = {1e-4, 3e-4}
    for lambda_g in offered_traffic:
        predicted = model.mean_latency(lambda_g)
        if lambda_g in simulate_at:
            simulated = f"{simulator.run(lambda_g).mean_latency:.1f}"
        else:
            simulated = "-"
        table.add_row(f"{lambda_g:g}", f"{predicted:.1f}", simulated)
    print(table.to_text())
    print()

    # -------------------------------------------------------------- saturation
    saturation = saturation_point(model, upper_bound=1e-3)
    print(f"zero-load latency : {model.zero_load_latency:.1f} time units")
    print(f"saturation point  : {saturation:.6f} messages/node/time-unit (model)")
    print()

    # ------------------------------------------------- the declarative route
    # The same comparison as one declarative call through the unified API
    # (repro.api): scenarios are JSON round-trippable and parallel=True
    # spreads simulation points over the cores with identical results.
    from repro import api

    runset = api.run(
        api.scenario("table1/544", points=3, seed=42),
        engines=("model", "sim"),
    )
    for record in runset.series("sim"):
        print(
            f"api: lambda_g={record.lambda_g:g} -> {record.latency:.1f} "
            f"(seed={record.metadata['seed']})"
        )
    print()
    print("Next steps: examples/model_vs_simulation.py reproduces the paper's")
    print("figures; examples/design_space_exploration.py uses the model to size")
    print("a new system; see README.md for the full API tour.")


if __name__ == "__main__":
    main()
