#!/usr/bin/env python
"""Capacity planning with an I/O hot-spot cluster (non-uniform traffic).

A common multi-cluster deployment dedicates one cluster to storage / I/O
gateways: a sizeable fraction of every compute node's messages goes to that
cluster instead of a uniformly chosen peer.  The paper's published model
assumes uniform traffic; its conclusion lists non-uniform traffic as future
work, and this example exercises exactly that extension:

1. the analytical hot-spot extension (:class:`repro.model.HotspotTrafficModel`)
   predicts how the sustainable load shrinks as the hot-spot fraction grows;
2. the wormhole simulator, driven by the matching
   :class:`repro.workloads.HotspotTraffic` pattern, confirms the trend and
   shows where the uniform-traffic model becomes optimistic;
3. a small what-if compares hosting the I/O gateways in a large cluster
   versus a small one.

Run it with::

    python examples/io_hotspot_capacity.py [--skip-simulation]
"""

import argparse
import math

from repro import MessageSpec, MultiClusterSimulator, SimulationConfig, table1_system
from repro.model import HotspotTrafficModel, MultiClusterLatencyModel
from repro.utils.tables import ResultTable
from repro.workloads import HotspotTraffic

SPEC = table1_system(544)              # Table 1, N=544, C=16, m=4
MESSAGE = MessageSpec(32, 256)
LARGE_CLUSTER = 15                      # 64 nodes (cluster group n=5)
SMALL_CLUSTER = 0                       # 16 nodes (cluster group n=3)


def hotspot_saturation(model: HotspotTrafficModel, upper: float = 2e-3) -> float:
    """Bisection on the hot-spot model's mean latency (same idea as the core helper)."""
    low, high = 0.0, upper
    for _ in range(40):
        if math.isinf(model.mean_latency(high)):
            break
        low, high = high, high * 2
    for _ in range(60):
        midpoint = 0.5 * (low + high)
        if math.isinf(model.mean_latency(midpoint)):
            high = midpoint
        else:
            low = midpoint
    return high


def sweep_hotspot_fraction() -> None:
    print(f"System: {SPEC.describe()}")
    print(f"I/O gateway cluster: #{LARGE_CLUSTER} "
          f"({SPEC.cluster_size(LARGE_CLUSTER)} nodes), {MESSAGE.describe()}\n")
    uniform = MultiClusterLatencyModel(SPEC, MESSAGE)
    table = ResultTable(
        headers=["hot-spot fraction", "latency @ 1.5e-4", "sustainable load (model)"],
        title="Impact of the I/O hot-spot share (analytical extension)",
    )
    probe = 1.5e-4
    for fraction in (0.0, 0.1, 0.2, 0.3, 0.5):
        if fraction == 0.0:
            latency = uniform.mean_latency(probe)
            from repro.model import saturation_point

            sustainable = saturation_point(uniform, upper_bound=2e-3)
        else:
            model = HotspotTrafficModel(
                SPEC, hot_cluster=LARGE_CLUSTER, hotspot_fraction=fraction, message=MESSAGE
            )
            latency = model.mean_latency(probe)
            sustainable = hotspot_saturation(model)
        table.add_row(
            f"{fraction:.0%}",
            f"{latency:.1f}" if math.isfinite(latency) else "saturated",
            f"{sustainable:.6f}",
        )
    print(table.to_text())
    print()


def placement_what_if() -> None:
    table = ResultTable(
        headers=["gateway placement", "sustainable load (model)"],
        title="Where should the I/O gateways live? (30% hot-spot share)",
    )
    for label, cluster in (("large cluster (64 nodes)", LARGE_CLUSTER),
                           ("small cluster (16 nodes)", SMALL_CLUSTER)):
        model = HotspotTrafficModel(
            SPEC, hot_cluster=cluster, hotspot_fraction=0.3, message=MESSAGE
        )
        table.add_row(label, f"{hotspot_saturation(model):.6f}")
    print(table.to_text())
    print("\nThe bigger cluster absorbs the hot-spot better: its ECN1 has more")
    print("internal bandwidth and its dispatcher represents a smaller share of")
    print("its total traffic.\n")


def simulation_check() -> None:
    print("Simulation cross-check at lambda_g = 1.5e-4 (quick budget):")
    config = SimulationConfig(
        measured_messages=2_000, warmup_messages=200, drain_messages=200, seed=11
    )
    uniform_model = MultiClusterLatencyModel(SPEC, MESSAGE)
    rows = ResultTable(headers=["workload", "model", "simulation"])
    for label, pattern, model_latency in (
        ("uniform", None, uniform_model.mean_latency(1.5e-4)),
        (
            "30% hot-spot",
            HotspotTraffic(hot_cluster=LARGE_CLUSTER, fraction=0.3),
            HotspotTrafficModel(
                SPEC, hot_cluster=LARGE_CLUSTER, hotspot_fraction=0.3, message=MESSAGE
            ).mean_latency(1.5e-4),
        ),
    ):
        simulator = MultiClusterSimulator(SPEC, MESSAGE, config=config, pattern=pattern)
        result = simulator.run(1.5e-4)
        rows.add_row(
            label,
            f"{model_latency:.1f}" if math.isfinite(model_latency) else "saturated",
            f"{result.mean_latency:.1f}",
        )
    print(rows.to_text())
    print("\nThe uniform-traffic model underestimates the hot-spot latency, while")
    print("the hot-spot extension tracks it — the gap is what the paper's future-")
    print("work item is about.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-simulation", action="store_true")
    args = parser.parse_args()
    sweep_hotspot_fraction()
    placement_what_if()
    if not args.skip_simulation:
        simulation_check()


if __name__ == "__main__":
    main()
