"""Campaign walkthrough: many scenarios, one pool, nothing simulated twice.

Runs a small two-scenario campaign twice against a throwaway result store:
the first execution streams every task as it finishes (records + progress
events), the second is served entirely from the content-addressed store —
bit-identical records, zero simulator invocations.  The cold run executes
under a :class:`~repro.campaign.RetryPolicy`, the configuration for a real
unattended campaign: a crashed or hung worker is re-queued (streaming
``TaskRetried``) instead of sinking the run.  The store is then migrated to
the single-file SQLite backend and re-read, record-identically.

Run from the repository root with::

    PYTHONPATH=src python examples/campaign_workflow.py
"""

from __future__ import annotations

import tempfile

from repro import Campaign, CampaignExecutor, ResultStore, RetryPolicy
from repro.campaign import TaskCompleted, TaskRetried
from repro.experiments.compare import compare_campaign
from repro.store import migrate_store


def main() -> None:
    plan = Campaign.from_scenarios(
        ("heterogeneous", "hotspot"), points=3, budget="quick", seed=0, name="demo"
    )
    print(plan.describe())
    print()

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)

        print("cold execution (streaming, crash-tolerant):")
        executor = CampaignExecutor(
            plan,
            parallel=True,
            store=store,
            # Survive worker failure: 3 attempts per task, hung workers
            # killed after 10 minutes — a no-op on a healthy run.
            retry=RetryPolicy(max_attempts=3, timeout_seconds=600),
        )
        for event in executor.execute():
            if isinstance(event, TaskCompleted):
                task = event.task
                print(
                    f"  [{event.done}/{event.total}] {task.label:<14} {task.engine:<6}"
                    f" lambda_g={task.lambda_g:.2e} latency={event.record.latency:10.2f}"
                    f" ({'cache' if event.from_cache else 'ran'})"
                )
            elif isinstance(event, TaskRetried):
                print(
                    f"  [retry] {event.task.task_id} attempt "
                    f"{event.attempt}/{event.max_attempts}: {event.error}"
                )
        print()

        print("packing the store into one SQLite file:")
        moved = migrate_store(store, "sqlite")
        print(f"  migrated {moved} records -> {store.describe()}")
        print()

        print("warm execution (all records from the migrated store):")
        result = CampaignExecutor(plan, parallel=True, store=store).collect()
        print(f"  {result.describe()}")
        assert result.cache_misses == 0
        print()

        for label, report in compare_campaign(result).items():
            print(
                f"  {label}: mean |relative error| "
                f"{report.mean_relative_error:.1%} over "
                f"{report.compared_points} steady-state points"
            )


if __name__ == "__main__":
    main()
