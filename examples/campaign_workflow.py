"""Campaign walkthrough: many scenarios, one pool, nothing simulated twice.

Runs a small two-scenario campaign twice against a throwaway result store:
the first execution streams every task as it finishes (records + progress
events), the second is served entirely from the content-addressed store —
bit-identical records, zero simulator invocations.

Run from the repository root with::

    PYTHONPATH=src python examples/campaign_workflow.py
"""

from __future__ import annotations

import tempfile

from repro import Campaign, CampaignExecutor, ResultStore
from repro.campaign import TaskCompleted
from repro.experiments.compare import compare_campaign


def main() -> None:
    plan = Campaign.from_scenarios(
        ("heterogeneous", "hotspot"), points=3, budget="quick", seed=0, name="demo"
    )
    print(plan.describe())
    print()

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)

        print("cold execution (streaming):")
        executor = CampaignExecutor(plan, parallel=True, store=store)
        for event in executor.execute():
            if isinstance(event, TaskCompleted):
                task = event.task
                print(
                    f"  [{event.done}/{event.total}] {task.label:<14} {task.engine:<6}"
                    f" lambda_g={task.lambda_g:.2e} latency={event.record.latency:10.2f}"
                    f" ({'cache' if event.from_cache else 'ran'})"
                )
        print()

        print("warm execution (all records from the store):")
        result = CampaignExecutor(plan, parallel=True, store=store).collect()
        print(f"  {result.describe()}")
        assert result.cache_misses == 0
        print()

        for label, report in compare_campaign(result).items():
            print(
                f"  {label}: mean |relative error| "
                f"{report.mean_relative_error:.1%} over "
                f"{report.compared_points} steady-state points"
            )


if __name__ == "__main__":
    main()
