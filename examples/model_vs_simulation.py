#!/usr/bin/env python
"""Reproduce the paper's validation figures (Fig. 3 and Fig. 4) as data.

For each figure panel (message length 32 and 64 flits) and each flit size
(256 and 512 bytes) the script sweeps offered traffic over the figure's axis
range, evaluating the analytical model and the wormhole simulator at every
point, prints the resulting series and writes them to CSV files under
``results/``.

The default simulation budget is small so the script finishes in a few
minutes; pass ``--paper-budget`` to use the paper's full 100 000-message
methodology (much slower), or ``--no-sim`` for the instant analysis-only
version.

Run it with::

    python examples/model_vs_simulation.py [--figure fig3|fig4] [--no-sim]
"""

import argparse
from pathlib import Path

from repro.experiments.compare import compare_model_and_simulation
from repro.experiments.figures import run_figure
from repro.experiments.report import (
    agreement_to_text,
    figure_to_table,
    save_figure_csvs,
)
from repro.sim.config import SimulationConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=("fig3", "fig4", "both"), default="fig4")
    parser.add_argument("--points", type=int, default=6, help="points per curve")
    parser.add_argument("--no-sim", action="store_true", help="analysis only")
    parser.add_argument(
        "--paper-budget",
        action="store_true",
        help="use the paper's 100k-message budget instead of the quick one",
    )
    parser.add_argument("--out", type=Path, default=Path("results"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan simulation points out over all cores (identical results)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = (
        SimulationConfig.paper(seed=args.seed)
        if args.paper_budget
        else SimulationConfig(
            measured_messages=2_000, warmup_messages=200, drain_messages=200, seed=args.seed
        )
    )
    figures = ("fig3", "fig4") if args.figure == "both" else (args.figure,)
    for figure_name in figures:
        print(f"=== {figure_name} "
              f"({'N=1120' if figure_name == 'fig3' else 'N=544'}) ===")
        result = run_figure(
            figure_name,
            num_points=args.points,
            run_simulation=not args.no_sim,
            simulation_config=config,
            parallel=args.parallel,
        )
        for table in figure_to_table(result):
            print(table.to_text())
            print()
        if not args.no_sim:
            for key in sorted(result.sweeps):
                report = compare_model_and_simulation(result.sweeps[key])
                print(agreement_to_text(report))
                print()
        paths = save_figure_csvs(result, args.out)
        print("CSV series written to:")
        for path in paths:
            print(f"  {path}")
        print()


if __name__ == "__main__":
    main()
