#!/usr/bin/env python
"""How much does cluster-size heterogeneity matter? (the paper's core question)

The paper's contribution over prior single-cluster / homogeneous models is
that it tracks each cluster's size individually.  This example quantifies
what that buys:

1. for both Table 1 organisations, compare the heterogeneity-aware model
   against the *equal-cluster-size approximation* (same C, same m, sizes
   replaced by the closest uniform size) across the load range;
2. show the per-cluster latency spread that a homogeneous model cannot even
   express — small clusters send almost all their traffic off-cluster and
   therefore see distinctly higher latency;
3. show how the error of the homogeneous approximation grows as the size mix
   becomes more skewed, on a family of synthetic 256-node organisations.

Run it with::

    python examples/heterogeneity_impact.py
"""

import math

import numpy as np

from repro import MessageSpec, MultiClusterLatencyModel, MultiClusterSpec, table1_system
from repro.experiments.ablation import heterogeneity_ablation
from repro.experiments.report import ablation_to_table
from repro.model import saturation_point
from repro.model.homogeneous import EqualSizeApproximationModel
from repro.utils.tables import ResultTable

MESSAGE = MessageSpec(32, 256)


def table1_ablation() -> None:
    for total_nodes in (1120, 544):
        spec = table1_system(total_nodes)
        model = MultiClusterLatencyModel(spec, MESSAGE)
        upper = saturation_point(model, upper_bound=2e-3) * 0.9
        offered = np.linspace(0.0, upper, 6)[1:]
        result = heterogeneity_ablation(spec, MESSAGE, offered)
        print(ablation_to_table(result).to_text())
        print(
            f"  -> worst-case error of the equal-size approximation: "
            f"{result.max_relative_difference():+.1%}\n"
        )


def per_cluster_spread() -> None:
    spec = table1_system(1120)
    model = MultiClusterLatencyModel(spec, MESSAGE)
    prediction = model.evaluate(1e-4)
    table = ResultTable(
        headers=["cluster group", "nodes per cluster", "P(outgoing)", "mean latency"],
        title="Per-cluster latency at lambda_g = 1e-4 (N=1120)",
    )
    for representative, label in ((0, "small (n=1)"), (12, "medium (n=2)"), (28, "large (n=3)")):
        cluster = prediction.clusters[representative]
        table.add_row(
            label,
            spec.cluster_size(representative),
            f"{cluster.outgoing_probability:.3f}",
            f"{cluster.mean:.1f}",
        )
    print(table.to_text())
    print("  -> a homogeneous model predicts a single number for all three groups.\n")


def skew_sensitivity() -> None:
    """Error of the equal-size approximation versus how skewed the mix is."""
    mixes = {
        "uniform 8 x 32": (4,) * 8,
        "mild  2x64 + 2x32 + 4x16": (5, 5, 4, 4, 3, 3, 3, 3),
        "strong 1x128 + 2x32 + 5x(16/8)": (6, 4, 4, 3, 3, 3, 2, 2),
    }
    table = ResultTable(
        headers=["256-node mix", "latency error @ 70% of saturation"],
        title="Equal-size approximation error versus heterogeneity skew (m=4)",
    )
    for label, heights in mixes.items():
        spec = MultiClusterSpec(m=4, cluster_heights=heights, name=label)
        if spec.total_nodes != 256:
            raise SystemExit(f"mix {label} totals {spec.total_nodes}, expected 256")
        exact = MultiClusterLatencyModel(spec, MESSAGE)
        approx = EqualSizeApproximationModel(spec, MESSAGE)
        probe = saturation_point(exact, upper_bound=2e-3) * 0.7
        error = approx.heterogeneity_error(exact, probe)
        table.add_row(label, "n/a" if math.isnan(error) else f"{error:+.1%}")
    print(table.to_text())
    print("  -> once the sizes differ the homogeneous shortcut drifts by several")
    print("     percent, and the sign/magnitude depend on the particular mix —")
    print("     there is no safe uniform substitute, which is why the paper")
    print("     models the cluster sizes explicitly.")


def main() -> None:
    table1_ablation()
    per_cluster_spread()
    skew_sensitivity()


if __name__ == "__main__":
    main()
