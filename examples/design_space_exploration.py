#!/usr/bin/env python
"""Design-space exploration: size a multi-cluster system with the model.

The paper's motivation for an *analytical* model is exactly this use case:
exploring many candidate organisations is free with a formula and hopeless
with simulation.  The scenario: a site must interconnect **512 compute
nodes** split over multiple clusters and wants to know

* how the cluster-size mix (few big clusters versus many small ones),
* the switch arity ``m``, and
* the message size used by the dominant application

affect the mean message latency and, above all, the offered traffic the
system can sustain before saturating.

The script enumerates all candidate organisations, evaluates each one with
the analytical model (hundreds of evaluations in seconds), and prints a
ranked table.  One winning and one losing organisation are then spot-checked
with the simulator to show the ranking is real, not a model artefact.

Run it with::

    python examples/design_space_exploration.py [--skip-simulation]
"""

import argparse
from typing import List, Tuple

from repro import (
    MessageSpec,
    MultiClusterLatencyModel,
    MultiClusterSimulator,
    MultiClusterSpec,
    SimulationConfig,
)
from repro.model import saturation_point
from repro.utils.tables import ResultTable

TARGET_NODES = 256
#: candidate switch arities and homogeneous/heterogeneous cluster mixes:
#: each entry is (m, tuple of per-cluster tree heights) totalling 256 nodes.
CANDIDATES: List[Tuple[int, Tuple[int, ...]]] = [
    # m=4 (k=2): cluster sizes 2*2^n -> 4, 8, 16, 32, 64
    (4, (5,) * 4),                                    # 4 x 64
    (4, (4,) * 8),                                    # 8 x 32
    (4, (3,) * 16),                                   # 16 x 16
    (4, (5, 5, 4, 4, 3, 3, 3, 3)),                    # 2x64 + 2x32 + 4x16
    (4, (5, 4) + (3,) * 6 + (2,) * 8),                # strongly mixed, 16 clusters
    # m=8 (k=4): cluster sizes 2*4^n -> 8, 32, 128
    (8, (2,) * 8),                                    # 8 x 32
    (8, (3, 2, 2, 2, 1, 1, 1, 1)),                    # 1x128 + 3x32 + 4x8
]


def valid_candidates() -> List[MultiClusterSpec]:
    """Keep only organisations that total 256 nodes and are constructible."""
    specs = []
    for m, heights in CANDIDATES:
        try:
            spec = MultiClusterSpec(m=m, cluster_heights=heights)
        except Exception:
            continue
        if spec.total_nodes == TARGET_NODES:
            label = f"m={m}, " + "+".join(str(size) for size in sorted(set(spec.cluster_sizes), reverse=True))
            spec = MultiClusterSpec(m=m, cluster_heights=heights, name=label)
            specs.append(spec)
    return specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-simulation", action="store_true")
    parser.add_argument("--message-flits", type=int, default=32)
    parser.add_argument("--flit-bytes", type=int, default=256)
    args = parser.parse_args()
    message = MessageSpec(args.message_flits, args.flit_bytes)

    specs = valid_candidates()
    if not specs:
        raise SystemExit("no valid 512-node candidate organisations")
    print(f"Evaluating {len(specs)} candidate organisations for "
          f"{TARGET_NODES} nodes, {message.describe()}\n")

    table = ResultTable(
        headers=[
            "organisation",
            "clusters",
            "switches",
            "zero-load latency",
            "latency @ 1e-4",
            "saturation traffic",
        ],
        title="Design-space exploration (analytical model)",
    )
    ranked = []
    for spec in specs:
        model = MultiClusterLatencyModel(spec, message)
        from repro.topology.multicluster import MultiClusterSystem

        system = MultiClusterSystem(spec)
        saturation = saturation_point(model, upper_bound=2e-3)
        latency_at_load = model.mean_latency(1e-4)
        ranked.append((saturation, spec, model))
        table.add_row(
            spec.name,
            spec.num_clusters,
            system.total_switches,
            f"{model.zero_load_latency:.1f}",
            f"{latency_at_load:.1f}" if latency_at_load != float("inf") else "saturated",
            f"{saturation:.6f}",
        )
    print(table.to_text())
    ranked.sort(key=lambda item: -item[0])
    best, worst = ranked[0], ranked[-1]
    print()
    print(f"highest sustainable load : {best[1].name}  ({best[0]:.6f})")
    print(f"lowest sustainable load  : {worst[1].name}  ({worst[0]:.6f})")

    if args.skip_simulation:
        return
    # Probe where the candidates actually differ: three quarters of the way to
    # the weakest organisation's saturation point.
    probe = 0.75 * worst[0]
    print(f"\nSpot-checking the ranking with the simulator at lambda_g = {probe:.2g} ...")
    config = SimulationConfig(
        measured_messages=2_000, warmup_messages=200, drain_messages=200, seed=7
    )
    for label, (_, spec, model) in (("best", best), ("worst", worst)):
        simulated = MultiClusterSimulator(spec, message, config=config).run(probe)
        predicted = model.mean_latency(probe)
        predicted_text = f"{predicted:.1f}" if predicted != float("inf") else "saturated"
        print(
            f"  {label:5s} {spec.name:24s} model={predicted_text:>10s} "
            f"simulated={simulated.mean_latency:.1f}"
        )
    print("\nThe organisation ranked best by the model also shows the lower")
    print("simulated latency — the model is doing its job as a design tool.")


if __name__ == "__main__":
    main()
