"""Concurrency tests: housekeeping racing record I/O must never corrupt.

Both backends are shared mutable state — campaign workers ``get``/``put``
while an operator (or another campaign) runs ``prune``/``clear``.  The
contract under that race: no call raises, and ``get`` returns either ``None``
or a complete, validated record — never a partial one.  Directory writes are
atomic (``os.replace``); SQLite serialises through WAL transactions.
"""

import json
import threading

import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.store import ResultStore, jsonable_record, task_key
from repro.topology.multicluster import MultiClusterSpec

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=5)

#: Iterations per worker thread — enough to interleave, small enough to stay
#: well under a second per backend.
ROUNDS = 60


@pytest.fixture(params=["directory", "sqlite"])
def store(tmp_path, request):
    return ResultStore(tmp_path, backend=request.param)


def tiny_scenario() -> api.Scenario:
    return api.Scenario(
        system=TINY,
        message=MessageSpec(32, 256),
        offered_traffic=(4e-4,),
        sim=FAST,
        name="tiny",
    )


@pytest.fixture(scope="module")
def record():
    return api.run(tiny_scenario(), engines=("model",)).series("model")[0]


def _run_threads(workers, errors):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "worker deadlocked"
    assert errors == []


class TestHousekeepingRaces:
    def test_prune_and_clear_racing_get_and_put(self, store, record):
        keys = [task_key(tiny_scenario(), "model", 4e-4 + i * 1e-6) for i in range(8)]
        expected = json.dumps(jsonable_record(record), sort_keys=True)
        errors = []

        def guarded(body):
            def run():
                try:
                    body()
                except Exception as error:  # noqa: BLE001 - the test's whole point
                    errors.append(error)

            return run

        @guarded
        def writer():
            for _ in range(ROUNDS):
                for key in keys:
                    store.put(key, record)

        @guarded
        def reader():
            for _ in range(ROUNDS):
                for key in keys:
                    loaded = store.get(key)
                    if loaded is not None:
                        # Never a partial record: it either misses or it
                        # round-trips bit-identically.
                        assert (
                            json.dumps(jsonable_record(loaded), sort_keys=True)
                            == expected
                        )

        @guarded
        def member():
            for _ in range(ROUNDS):
                for key in keys:
                    key in store  # noqa: B015 - exercised for the race only

        @guarded
        def housekeeper():
            for _ in range(ROUNDS):
                store.prune(3)
                store.clear()
                store.size_bytes()
                len(store)

        _run_threads([writer, writer, reader, member, housekeeper], errors)

    def test_concurrent_writers_to_the_same_key(self, store, record):
        key = task_key(tiny_scenario(), "model", 4e-4)
        expected = json.dumps(jsonable_record(record), sort_keys=True)
        errors = []

        def writer():
            try:
                for _ in range(ROUNDS):
                    store.put(key, record)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        _run_threads([writer, writer, writer], errors)
        loaded = store.get(key)
        assert loaded is not None
        assert json.dumps(jsonable_record(loaded), sort_keys=True) == expected

    def test_clear_during_reads_yields_clean_misses(self, store, record):
        keys = [task_key(tiny_scenario(), "model", 5e-4 + i * 1e-6) for i in range(4)]
        for key in keys:
            store.put(key, record)
        errors = []
        outcomes = []

        def reader():
            try:
                for _ in range(ROUNDS):
                    for key in keys:
                        outcomes.append(store.get(key) is not None)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def clearer():
            try:
                for _ in range(ROUNDS // 4):
                    store.clear()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        _run_threads([reader, clearer], errors)
        assert outcomes  # both hits and clean misses are legal; crashes are not
