"""Tests of the declarative Scenario: validation, registry, JSON round trip."""

import dataclasses

import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=400, warmup_messages=40, drain_messages=40, seed=3)


def tiny_scenario(**overrides) -> api.Scenario:
    defaults = dict(
        system=TINY,
        message=MessageSpec(32, 256),
        offered_traffic=(2e-4, 6e-4, 1e-3),
        sim=FAST,
        name="tiny",
    )
    defaults.update(overrides)
    return api.Scenario(**defaults)


class TestScenarioValidation:
    def test_offered_traffic_coerced_to_float_tuple(self):
        scenario = tiny_scenario(offered_traffic=[1e-4, 2e-4])
        assert scenario.offered_traffic == (1e-4, 2e-4)
        assert all(isinstance(v, float) for v in scenario.offered_traffic)

    def test_non_positive_traffic_rejected(self):
        with pytest.raises(ValidationError):
            tiny_scenario(offered_traffic=(0.0,))
        with pytest.raises(ValidationError):
            tiny_scenario(offered_traffic=(-1e-4,))

    def test_bad_variance_approximation_rejected(self):
        with pytest.raises(ValidationError):
            tiny_scenario(variance_approximation="nope")

    def test_bad_pattern_kind_rejected(self):
        with pytest.raises(ValidationError):
            api.PatternSpec(kind="nope")

    def test_load_grid_excludes_zero(self):
        grid = api.Scenario.load_grid(1e-3, 4)
        assert len(grid) == 4
        assert grid[0] > 0
        assert grid[-1] == pytest.approx(1e-3)

    def test_with_points_resamples_grid(self):
        scenario = tiny_scenario().with_points(6)
        assert len(scenario.offered_traffic) == 6
        assert max(scenario.offered_traffic) == pytest.approx(1e-3)

    def test_with_seed_changes_only_the_seed(self):
        scenario = tiny_scenario().with_seed(99)
        assert scenario.sim.seed == 99
        assert scenario.sim.measured_messages == FAST.measured_messages


class TestScenarioJsonRoundTrip:
    def test_dict_round_trip_is_identity(self):
        scenario = tiny_scenario()
        assert api.Scenario.from_dict(scenario.to_dict()) == scenario

    def test_file_round_trip_is_identity(self, tmp_path):
        scenario = tiny_scenario(
            pattern=api.PatternSpec("hotspot", {"hot_cluster": 0, "fraction": 0.2}),
            variance_approximation="zero",
        )
        path = scenario.to_json(tmp_path / "scenario.json")
        assert api.Scenario.from_json(path) == scenario

    def test_round_trip_preserves_run_results(self, tmp_path):
        """Serialize -> load -> run gives identical results (the API contract)."""
        scenario = tiny_scenario(offered_traffic=(3e-4, 9e-4))
        loaded = api.Scenario.from_json(scenario.to_json(tmp_path / "s.json"))
        original = api.run(scenario, engines=("model", "sim"))
        replayed = api.run(loaded, engines=("model", "sim"))
        for first, second in zip(original.records, replayed.records):
            assert first.engine == second.engine
            assert first.lambda_g == second.lambda_g
            assert first.latency == second.latency
        sim_first = original.series("sim")[0].simulation
        sim_second = replayed.series("sim")[0].simulation
        assert sim_first.mean_latency == sim_second.mean_latency
        assert sim_first.std_latency == sim_second.std_latency
        assert sim_first.seed == sim_second.seed == FAST.seed

    def test_registry_scenarios_round_trip(self, tmp_path):
        for name in api.scenario_names():
            scenario = api.scenario(name, points=3)
            path = scenario.to_json(tmp_path / "reg.json")
            assert api.Scenario.from_json(path) == scenario


class TestScenarioRegistry:
    def test_builtin_names_registered(self):
        names = api.scenario_names()
        for expected in ("table1/1120", "table1/544", "fig3", "fig4", "hotspot", "heterogeneous"):
            assert expected in names

    def test_fig3_uses_the_table1_1120_system(self):
        from repro.experiments.configs import table1_system

        scenario = api.scenario("fig3", points=5)
        assert scenario.system == table1_system(1120)
        assert len(scenario.offered_traffic) == 5

    def test_hotspot_carries_a_hotspot_pattern(self):
        scenario = api.scenario("hotspot", points=2)
        assert scenario.pattern.kind == "hotspot"
        assert scenario.pattern.build().fraction == pytest.approx(0.1)

    def test_budget_and_seed_are_applied(self):
        scenario = api.scenario("fig4", points=2, budget="paper", seed=7)
        assert scenario.sim.measured_messages == 100_000
        assert scenario.sim.seed == 7

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            api.scenario("no-such-scenario")

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValidationError):
            api.simulation_budget("huge")

    def test_register_scenario_round_trips_through_lookup(self):
        def factory(points, sim):
            return tiny_scenario(sim=sim).with_points(points)

        api.register_scenario("test/tiny", factory)
        try:
            scenario = api.scenario("test/tiny", points=2)
            assert len(scenario.offered_traffic) == 2
        finally:
            api._SCENARIOS.pop("test/tiny")
