"""Tests of the Campaign API: plans, streaming execution, store-backed re-runs."""

import json

import numpy as np
import pytest

from repro import api
from repro.campaign import (
    Campaign,
    CampaignEntry,
    CampaignExecutor,
    CampaignProgress,
    TaskCompleted,
    run_campaign,
)
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.store import ResultStore, jsonable_record
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
WIDE = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1), name="wide")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=3)


def scenario_for(system, *, traffic=(4e-4, 8e-4), name="") -> api.Scenario:
    return api.Scenario(
        system=system,
        message=MessageSpec(32, 256),
        offered_traffic=traffic,
        sim=FAST,
        name=name or system.name,
    )


def two_scenario_campaign(**executor_ignored) -> Campaign:
    return Campaign(
        entries=(
            CampaignEntry(scenario=scenario_for(TINY), engines=("model", "sim")),
            CampaignEntry(scenario=scenario_for(WIDE), engines=("model", "sim")),
        ),
        name="two",
    )


class TestCampaignValidation:
    def test_empty_campaign_rejected(self):
        with pytest.raises(ValidationError):
            Campaign(entries=())

    def test_entry_without_engines_rejected(self):
        with pytest.raises(ValidationError):
            CampaignEntry(scenario=scenario_for(TINY), engines=())

    def test_entry_with_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            CampaignEntry(scenario=scenario_for(TINY, traffic=()))

    def test_unknown_engine_name_rejected(self):
        with pytest.raises(ValidationError):
            CampaignEntry(scenario=scenario_for(TINY), engines=("warp-drive",))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValidationError):
            Campaign(
                entries=(
                    CampaignEntry(scenario=scenario_for(TINY), label="same"),
                    CampaignEntry(scenario=scenario_for(WIDE), label="same"),
                )
            )

    def test_labels_fall_back_to_scenario_names_then_indices(self):
        nameless = api.Scenario(
            system=TINY, offered_traffic=(4e-4,), sim=FAST, name=""
        )
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY), label="explicit"),
                CampaignEntry(scenario=scenario_for(WIDE)),
                CampaignEntry(scenario=nameless),
            )
        )
        assert campaign.labels == ("explicit", "wide", "entry2")

    def test_total_tasks_counts_engines_times_points(self):
        assert two_scenario_campaign().total_tasks == 2 * 2 * 2

    def test_bad_store_argument_rejected(self):
        with pytest.raises(ValidationError):
            CampaignExecutor(two_scenario_campaign(), store="nope")


class TestCampaignJson:
    def test_dict_round_trip_is_identity(self):
        campaign = two_scenario_campaign()
        assert Campaign.from_dict(campaign.to_dict()) == campaign

    def test_file_round_trip_is_identity(self, tmp_path):
        campaign = two_scenario_campaign()
        path = campaign.to_json(tmp_path / "plan.json")
        assert Campaign.from_json(path) == campaign

    def test_named_scenario_entries_resolve_through_the_registry(self):
        campaign = Campaign.from_dict(
            {
                "name": "named",
                "entries": [
                    {"scenario": "heterogeneous", "points": 3, "budget": "quick", "seed": 4},
                    {"scenario": "fig4", "points": 2, "engines": ["model"]},
                ],
            }
        )
        assert campaign.labels == ("heterogeneous", "fig4")
        first = campaign.entries[0].scenario
        assert len(first.offered_traffic) == 3
        assert first.sim.seed == 4
        assert campaign.entries[1].engines == ("model",)

    def test_budget_override_applies_to_full_scenario_entries(self):
        plan = {
            "entries": [
                {
                    "scenario": scenario_for(TINY).to_dict(),
                    "budget": "paper",
                    "seed": 11,
                }
            ]
        }
        campaign = Campaign.from_dict(plan)
        scenario = campaign.entries[0].scenario
        assert scenario.sim.measured_messages == 100_000
        assert scenario.sim.seed == 11

    def test_points_override_applies_to_full_scenario_entries(self):
        plan = {"entries": [{"scenario": scenario_for(TINY).to_dict(), "points": 5}]}
        scenario = Campaign.from_dict(plan).entries[0].scenario
        assert len(scenario.offered_traffic) == 5
        assert max(scenario.offered_traffic) == pytest.approx(8e-4)

    def test_seed_override_alone_keeps_the_budget(self):
        plan = {"entries": [{"scenario": scenario_for(TINY).to_dict(), "seed": 42}]}
        scenario = Campaign.from_dict(plan).entries[0].scenario
        assert scenario.sim.seed == 42
        assert scenario.sim.measured_messages == FAST.measured_messages

    def test_engine_instances_refuse_to_serialise(self):
        campaign = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY), engines=(api.AnalyticalEngine(),)
                ),
            )
        )
        with pytest.raises(ValidationError):
            campaign.to_dict()

    def test_malformed_plans_rejected(self):
        with pytest.raises(ValidationError):
            Campaign.from_dict({"no": "entries"})
        with pytest.raises(ValidationError):
            Campaign.from_dict({"entries": [{"engines": ["model"]}]})
        with pytest.raises(ValidationError):
            Campaign.from_dict({"entries": [{"scenario": 17}]})

    def test_from_scenarios_builder(self):
        campaign = Campaign.from_scenarios(
            ("heterogeneous", scenario_for(TINY)), points=2, name="mixed"
        )
        assert campaign.name == "mixed"
        assert campaign.labels == ("heterogeneous", "tiny")
        assert len(campaign.entries[0].scenario.offered_traffic) == 2


class TestStreamingExecution:
    def test_stream_opens_and_closes_with_progress_events(self, tmp_path):
        executor = CampaignExecutor(two_scenario_campaign(), store=ResultStore(tmp_path))
        events = list(executor.execute())
        assert isinstance(events[0], CampaignProgress)
        assert events[0].done == 0 and events[0].total == 8
        assert isinstance(events[-1], CampaignProgress)
        assert events[-1].done == 8 and events[-1].elapsed_seconds > 0
        completed = [event for event in events if isinstance(event, TaskCompleted)]
        assert len(completed) == 8
        assert [event.done for event in completed] == list(range(1, 9))
        assert all(event.total == 8 for event in completed)
        assert all(not event.from_cache for event in completed)

    def test_streamed_records_match_collected_runsets(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(two_scenario_campaign(), store=store)
        streamed = {}
        for event in executor.execute():
            if isinstance(event, TaskCompleted):
                task = event.task
                streamed[(task.entry_index, task.engine_index, task.point_index)] = (
                    event.record
                )
        result = CampaignExecutor(two_scenario_campaign(), store=store).collect()
        assert result.cache_hits == 8  # second executor replays the store
        for entry_index, runset in enumerate(result.runsets):
            for engine_index in range(2):
                for point_index in range(2):
                    record = streamed[(entry_index, engine_index, point_index)]
                    assert runset.records[engine_index * 2 + point_index].latency == (
                        record.latency
                    )

    def test_collect_on_event_observes_every_event(self, tmp_path):
        seen = []
        run_campaign(
            two_scenario_campaign(),
            store=ResultStore(tmp_path),
            on_event=seen.append,
        )
        assert sum(isinstance(event, TaskCompleted) for event in seen) == 8
        assert isinstance(seen[0], CampaignProgress)
        assert isinstance(seen[-1], CampaignProgress)


class TestParallelExecution:
    def test_parallel_streams_and_matches_sequential_bit_for_bit(self, tmp_path):
        """The acceptance criterion: streamed parallel == sequential api.run."""
        campaign = two_scenario_campaign()
        events = list(
            CampaignExecutor(
                campaign, parallel=True, max_workers=2, store=ResultStore(tmp_path / "a")
            ).execute()
        )
        progress = [event for event in events if isinstance(event, CampaignProgress)]
        assert progress[0].done == 0 and progress[-1].done == 8
        assert progress[-1].total == 8
        result = CampaignExecutor(
            campaign, parallel=True, max_workers=2, store=ResultStore(tmp_path / "b")
        ).collect()
        for entry, runset in zip(campaign.entries, result.runsets):
            reference = api.run(entry.scenario, engines=("model", "sim"))
            assert len(runset.records) == len(reference.records)
            for ours, theirs in zip(runset.records, reference.records):
                assert ours.engine == theirs.engine
                assert ours.lambda_g == theirs.lambda_g
                assert ours.latency == theirs.latency
                if theirs.simulation is not None:
                    assert ours.simulation.mean_latency == theirs.simulation.mean_latency
                    assert ours.simulation.std_latency == theirs.simulation.std_latency

    def test_single_point_scenarios_still_fan_out_at_scenario_level(self, tmp_path):
        # Two one-point entries: point-level fan-out alone could never use
        # two workers; the shared queue schedules both scenarios at once.
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=("sim",)),
                CampaignEntry(scenario=scenario_for(WIDE, traffic=(4e-4,)), engines=("sim",)),
            )
        )
        result = run_campaign(
            campaign, parallel=True, max_workers=2, store=ResultStore(tmp_path)
        )
        assert result.cache_misses == 2
        for entry, runset in zip(campaign.entries, result.runsets):
            reference = api.run(entry.scenario, engines=("sim",))
            assert runset.records[0].latency == reference.records[0].latency


class TestStoreBackedReruns:
    def test_second_execution_is_all_cache_hits_and_identical(self, tmp_path):
        """Acceptance criterion: warm re-run serves everything from the store."""
        store = ResultStore(tmp_path)
        campaign = two_scenario_campaign()
        cold = run_campaign(campaign, store=store)
        assert cold.cache_hits == 0 and cold.cache_misses == 8
        warm = run_campaign(campaign, store=store)
        assert warm.cache_hits == 8 and warm.cache_misses == 0
        for cold_set, warm_set in zip(cold.runsets, warm.runsets):
            cold_json = json.dumps(
                [jsonable_record(record) for record in cold_set.records], sort_keys=True
            )
            warm_json = json.dumps(
                [jsonable_record(record) for record in warm_set.records], sort_keys=True
            )
            assert cold_json == warm_json

    def test_warm_rerun_never_invokes_the_simulator(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        campaign = two_scenario_campaign()
        run_campaign(campaign, store=store)

        def _boom(self, scenario, lambda_g):  # pragma: no cover - must not run
            raise AssertionError("simulator invoked on a warm campaign")

        monkeypatch.setattr(api.SimulationEngine, "evaluate", _boom)
        monkeypatch.setattr(api.AnalyticalEngine, "evaluate", _boom)
        warm = run_campaign(campaign, store=store)
        assert warm.cache_misses == 0

    def test_interrupted_campaign_resumes_from_partial_store(self, tmp_path):
        store = ResultStore(tmp_path)
        campaign = two_scenario_campaign()
        # Simulate an interrupt: stop consuming the stream after five tasks.
        executor = CampaignExecutor(campaign, store=store)
        completed = 0
        for event in executor.execute():
            if isinstance(event, TaskCompleted):
                completed += 1
                if completed == 5:
                    break
        resumed = run_campaign(campaign, store=store)
        assert resumed.cache_hits == 5
        assert resumed.cache_misses == 3

    def test_flipping_a_kernel_switch_misses_the_cache(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=("sim",)),
            )
        )
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        run_campaign(campaign, store=store)
        monkeypatch.setenv("REPRO_SIM_KERNEL", "generator")
        rerun = run_campaign(campaign, store=store)
        assert rerun.cache_hits == 0 and rerun.cache_misses == 1
        # Back to the default switches: the original record is still there.
        monkeypatch.delenv("REPRO_SIM_KERNEL")
        assert run_campaign(campaign, store=store).cache_hits == 1

    def test_changing_a_scenario_field_misses_the_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        base = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=("sim",)),
            )
        )
        run_campaign(base, store=store)
        reseeded = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY, traffic=(4e-4,)).with_seed(77),
                    engines=("sim",),
                ),
            )
        )
        rerun = run_campaign(reseeded, store=store)
        assert rerun.cache_hits == 0 and rerun.cache_misses == 1

    def test_engine_instances_bypass_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        campaign = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY, traffic=(4e-4,)),
                    engines=(api.AnalyticalEngine(),),
                ),
            )
        )
        first = run_campaign(campaign, store=store)
        second = run_campaign(campaign, store=store)
        assert first.cache_misses == 1
        assert second.cache_misses == 1  # instances are never content-addressed
        assert len(store) == 0

    def test_store_none_disables_caching(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        campaign = two_scenario_campaign()
        result = run_campaign(campaign, store=None)
        assert result.cache_hits == 0
        assert len(ResultStore()) == 0


class TestCampaignResult:
    def test_runset_lookup_by_label(self, tmp_path):
        result = run_campaign(two_scenario_campaign(), store=ResultStore(tmp_path))
        assert result.runset("tiny").scenario.system == TINY
        assert result.runset("wide").scenario.system == WIDE
        with pytest.raises(ValidationError):
            result.runset("nope")

    def test_describe_reports_cache_traffic(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(two_scenario_campaign(), store=store)
        warm = run_campaign(two_scenario_campaign(), store=store)
        text = warm.describe()
        assert "8 cached" in text
        assert "0 computed" in text


class TestRunCompatibility:
    """api.run / latency_sweep stay thin wrappers with unchanged output."""

    def test_api_run_matches_hand_rolled_engine_loop(self):
        scenario = scenario_for(TINY)
        runset = api.run(scenario, engines=("model", "sim"))
        model, sim = api.AnalyticalEngine(), api.SimulationEngine()
        expected = [
            engine.evaluate(scenario, lambda_g)
            for engine in (model, sim)
            for lambda_g in scenario.offered_traffic
        ]
        assert len(runset.records) == len(expected)
        for ours, theirs in zip(runset.records, expected):
            assert ours.engine == theirs.engine
            assert ours.lambda_g == theirs.lambda_g
            assert ours.latency == theirs.latency

    def test_api_run_json_shape_unchanged(self, tmp_path):
        from repro.utils.serialization import dump_json, load_json

        runset = api.run(scenario_for(TINY, traffic=(4e-4,)), engines=("model", "sim"))
        payload = load_json(dump_json(runset, tmp_path / "runset.json"))
        assert set(payload) == {"scenario", "records"}
        assert [record["engine"] for record in payload["records"]] == ["model", "sim"]
        record = payload["records"][1]
        assert set(record) == {
            "engine",
            "lambda_g",
            "latency",
            "saturated",
            "metadata",
            "simulation",
        }
        assert record["metadata"]["seed"] == FAST.seed

    def test_api_run_with_store_reuses_records(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = scenario_for(TINY, traffic=(4e-4,))
        first = api.run(scenario, engines=("sim",), store=store)
        second = api.run(scenario, engines=("sim",), store=store)
        assert json.dumps(jsonable_record(first.records[0]), sort_keys=True) == (
            json.dumps(jsonable_record(second.records[0]), sort_keys=True)
        )
        assert len(store) == 1

    def test_latency_sweep_matches_campaign_execution(self, tmp_path):
        from repro.experiments.sweep import latency_sweep

        grid = (4e-4, 8e-4)
        sweep = latency_sweep(TINY, MessageSpec(32, 256), grid, simulation_config=FAST)
        result = run_campaign(
            Campaign(
                entries=(
                    CampaignEntry(
                        scenario=scenario_for(TINY, traffic=grid), engines=("model", "sim")
                    ),
                )
            ),
            store=ResultStore(tmp_path),
        )
        runset = result.runsets[0]
        assert np.array_equal(sweep.model_curve, runset.curve("model"))
        assert np.array_equal(sweep.simulation_curve, runset.curve("sim"))


class TestChunkedSubmission:
    """The chunked pool contract: per-task outcomes, per-task error containment.

    Chunking exists to amortise per-submission IPC and engine pickling over
    many operating points (the cold 2-worker fan-out regression); these tests
    pin the worker-side contract the coordinator and the cluster runner both
    rely on.
    """

    class _BrokenAt:
        """A stub engine that fails on one operating point."""

        name = "broken-at"
        expensive = True

        def __init__(self, bad):
            self.bad = bad

        def evaluate(self, scenario, lambda_g):
            if lambda_g == self.bad:
                raise RuntimeError("boom at the bad point")
            from repro.api import resolve_engines

            (model,) = resolve_engines(("model",))
            return model.evaluate(scenario, lambda_g)

    def test_chunk_outcomes_align_with_items(self):
        from repro.campaign import _pool_evaluate_chunk

        scenario = scenario_for(TINY, traffic=(4e-4, 8e-4))
        outcomes = _pool_evaluate_chunk(
            self._BrokenAt(None),
            scenario,
            [(4e-4, "t:broken-at:0"), (8e-4, "t:broken-at:1")],
        )
        assert [status for status, _ in outcomes] == ["ok", "ok"]
        assert [record.lambda_g for _, record in outcomes] == [4e-4, 8e-4]

    def test_one_bad_point_never_costs_its_chunk_mates(self):
        from repro.campaign import _pool_evaluate_chunk

        scenario = scenario_for(TINY, traffic=(4e-4, 8e-4))
        outcomes = _pool_evaluate_chunk(
            self._BrokenAt(8e-4),
            scenario,
            [(4e-4, "t:broken-at:0"), (8e-4, "t:broken-at:1")],
        )
        (good_status, record), (bad_status, reason) = outcomes
        assert good_status == "ok" and record.lambda_g == 4e-4
        assert bad_status == "error" and "boom at the bad point" in reason

    def test_campaign_contains_a_mid_chunk_failure(self):
        """End to end: a failing operating point surfaces as that task's
        failure while its chunk-mates complete normally."""
        campaign = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY, traffic=(4e-4, 8e-4)),
                    engines=(self._BrokenAt(8e-4),),
                ),
            ),
            name="contained",
        )
        result = run_campaign(campaign, parallel=True, max_workers=1, store=None, strict=False)
        assert len(result.failures) == 1
        assert result.failures[0].task.lambda_g == 8e-4
        assert "boom at the bad point" in result.failures[0].error
        completed = [r for runset in result.runsets for r in runset.records]
        assert [r.lambda_g for r in completed] == [4e-4]
