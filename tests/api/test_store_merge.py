"""Tests of store merge/sync semantics and the hit/miss instrumentation.

Merging is how fleet results come home: records are content-addressed, so
a key collision *is* an identity and the destination's bytes win.  The
assertions here are deliberately byte-level — ``read_text`` before and
after — because "owner wins" and "byte-identical copy" are claims about
bytes, not about records comparing equal after a round trip.
"""

import json

import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.store import (
    MergeReport,
    ResultStore,
    merge_stores,
    task_key,
)
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=5)

BACKENDS = ("directory", "sqlite")


@pytest.fixture(params=BACKENDS)
def store_backend(request):
    return request.param


def tiny_scenario(traffic) -> api.Scenario:
    return api.Scenario(
        system=TINY,
        message=MessageSpec(32, 256),
        offered_traffic=traffic,
        sim=FAST,
        name="tiny",
    )


def populate(store: ResultStore, *lambdas: float) -> list:
    """Compute model records for ``lambdas`` and file them under their keys."""
    keys = []
    for lambda_g in lambdas:
        scenario = tiny_scenario((lambda_g,))
        record = api.run(scenario, engines=("model",)).series("model")[0]
        key = task_key(scenario, "model", lambda_g)
        store.put(key, record)
        keys.append(key)
    return keys


class TestMergeStores:
    def test_disjoint_union_copies_byte_identical(self, tmp_path, store_backend):
        dest = ResultStore(tmp_path / "dest", backend=store_backend)
        source = ResultStore(tmp_path / "source", backend=store_backend)
        (kept,) = populate(dest, 4e-4)
        (incoming,) = populate(source, 8e-4)

        report = merge_stores(dest, source)

        assert report == MergeReport(copied=1, existing=0, corrupt=0, moved=False)
        assert len(dest) == 2
        # Verbatim text copy: same bytes, so same content address semantics.
        assert dest.backend.read_text(incoming) == source.backend.read_text(incoming)
        assert dest.get(kept) is not None and dest.get(incoming) is not None
        # --sync leaves the source untouched.
        assert len(source) == 1

    def test_identical_key_is_a_no_op_and_owner_wins(self, tmp_path, store_backend):
        """Both sides computed the same task: the key collides, and the
        destination's bytes must survive untouched (wall clock makes the two
        payloads differ, which is exactly what makes this assertable)."""
        dest = ResultStore(tmp_path / "dest", backend=store_backend)
        source = ResultStore(tmp_path / "source", backend=store_backend)
        (key,) = populate(dest, 4e-4)
        (source_key,) = populate(source, 4e-4)
        assert source_key == key  # same task, same content address
        owner_text = dest.backend.read_text(key)

        report = merge_stores(dest, source)

        assert report == MergeReport(copied=0, existing=1, corrupt=0, moved=False)
        assert dest.backend.read_text(key) == owner_text
        assert len(dest) == 1

    def test_corrupt_source_record_skipped_with_warning(self, tmp_path, store_backend):
        dest = ResultStore(tmp_path / "dest", backend=store_backend)
        source = ResultStore(tmp_path / "source", backend=store_backend)
        (good,) = populate(source, 4e-4)
        junk_key = "ab" + "0" * 62
        source.backend.write_text(junk_key, "{not json")
        mislabeled = "cd" + "0" * 62
        source.backend.write_text(mislabeled, source.backend.read_text(good))

        with pytest.warns(RuntimeWarning, match="corrupt record"):
            report = merge_stores(dest, source, move=True)

        assert report.copied == 1 and report.corrupt == 2
        assert dest.get(good) is not None
        assert junk_key not in dest and mislabeled not in dest
        # Corrupt records are evidence: never deleted, even when moving.
        assert source.backend.read_text(junk_key) == "{not json"
        assert source.backend.read_text(mislabeled) is not None

    def test_move_drains_the_source(self, tmp_path, store_backend):
        dest = ResultStore(tmp_path / "dest", backend=store_backend)
        source = ResultStore(tmp_path / "source", backend=store_backend)
        populate(dest, 4e-4)
        populate(source, 4e-4, 8e-4)  # one colliding, one new

        report = merge_stores(dest, source, move=True)

        assert report == MergeReport(copied=1, existing=1, corrupt=0, moved=True)
        assert len(dest) == 2
        assert len(source) == 0
        if store_backend == "sqlite":
            assert not (source.root / "store.db").exists()  # fully drained

    def test_last_used_stamp_carried(self, tmp_path, store_backend):
        dest = ResultStore(tmp_path / "dest", backend=store_backend)
        source = ResultStore(tmp_path / "source", backend=store_backend)
        (key,) = populate(source, 4e-4)
        stamp = source.backend.get_last_used(key)
        merge_stores(dest, source)
        assert dest.backend.get_last_used(key) == pytest.approx(stamp, abs=1.0)

    def test_merging_a_store_into_itself_rejected(self, tmp_path, store_backend):
        store = ResultStore(tmp_path, backend=store_backend)
        alias = ResultStore(tmp_path, backend=store_backend)
        with pytest.raises(ValidationError):
            merge_stores(store, alias)

    def test_describe_wording(self):
        sync = MergeReport(copied=3, existing=1, corrupt=0, moved=False)
        move = MergeReport(copied=3, existing=1, corrupt=2, moved=True)
        assert sync.describe() == "copied 3 records (1 already present, 0 corrupt skipped)"
        assert move.describe() == "moved 3 records (1 already present, 2 corrupt skipped)"


class TestStoreStats:
    def test_hit_miss_put_counters(self, tmp_path, store_backend):
        store = ResultStore(tmp_path, backend=store_backend)
        assert (store.hits, store.misses, store.puts) == (0, 0, 0)
        assert store.get("0" * 64) is None
        assert store.misses == 1
        (key,) = populate(store, 4e-4)
        assert store.puts == 1
        assert store.get(key) is not None
        assert store.hits == 1
        # Membership probes are not cache traffic: contains must not count.
        assert key in store
        assert (store.hits, store.misses) == (1, 1)

    def test_stats_payload(self, tmp_path, store_backend):
        store = ResultStore(tmp_path, backend=store_backend)
        (key,) = populate(store, 4e-4)
        store.get(key)
        stats = store.stats()
        assert stats["records"] == 1
        assert stats["backend"] == store_backend
        assert stats["size_bytes"] > 0
        assert stats["hits"] == 1 and stats["puts"] == 1
        assert stats["hit_rate"] == 1.0
        text = store.describe_stats()
        assert "hit rate" in text and store_backend in text
