"""Tests of the engine protocol, run() fan-out and engine parity."""

import math

import numpy as np
import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=400, warmup_messages=40, drain_messages=40, seed=3)
PARITY_CONFIG = SimulationConfig(
    measured_messages=2_500, warmup_messages=250, drain_messages=250, seed=9
)


def tiny_scenario(**overrides) -> api.Scenario:
    defaults = dict(
        system=TINY,
        message=MessageSpec(32, 256),
        offered_traffic=(2e-4, 6e-4, 1e-3),
        sim=FAST,
        name="tiny",
    )
    defaults.update(overrides)
    return api.Scenario(**defaults)


class TestEngineResolution:
    def test_names_resolve_to_engines(self):
        engines = api.resolve_engines(("model", "sim"))
        assert [engine.name for engine in engines] == ["model", "sim"]
        assert isinstance(engines[0], api.AnalyticalEngine)
        assert isinstance(engines[1], api.SimulationEngine)

    def test_aliases_resolve(self):
        engines = api.resolve_engines(("analysis", "simulation"))
        assert isinstance(engines[0], api.AnalyticalEngine)
        assert isinstance(engines[1], api.SimulationEngine)

    def test_instances_pass_through(self):
        custom = api.AnalyticalEngine(name="custom")
        assert api.resolve_engines((custom,))[0] is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            api.resolve_engines(("warp-drive",))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            api.resolve_engines(("model", "analysis"))

    def test_empty_engine_list_rejected(self):
        with pytest.raises(ValidationError):
            api.resolve_engines(())

    def test_engines_satisfy_the_protocol(self):
        assert isinstance(api.AnalyticalEngine(), api.Engine)
        assert isinstance(api.SimulationEngine(), api.Engine)


class TestRun:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            api.run(tiny_scenario(offered_traffic=()), engines=("model",))

    def test_records_ordered_engine_major_grid_minor(self):
        runset = api.run(tiny_scenario(), engines=("model", "sim"))
        assert [record.engine for record in runset.records] == ["model"] * 3 + ["sim"] * 3
        for series_name in ("model", "sim"):
            lambdas = [record.lambda_g for record in runset.series(series_name)]
            assert lambdas == list(tiny_scenario().offered_traffic)

    def test_model_records_flag_saturation(self):
        runset = api.run(
            tiny_scenario(offered_traffic=(1e-4, 5e-2)), engines=("model",)
        )
        first, second = runset.series("model")
        assert not first.saturated and math.isfinite(first.latency)
        assert second.saturated and math.isinf(second.latency)

    def test_simulation_records_carry_provenance_metadata(self):
        runset = api.run(tiny_scenario(offered_traffic=(4e-4,)), engines=("sim",))
        record = runset.series("sim")[0]
        assert record.metadata["seed"] == FAST.seed
        assert record.metadata["wall_clock_seconds"] > 0
        assert record.metadata["measured_messages"] == FAST.measured_messages
        assert record.simulation is not None
        assert record.simulation.seed == FAST.seed

    def test_runset_curve_and_record_lookup(self):
        runset = api.run(tiny_scenario(), engines=("model",))
        curve = runset.curve("model")
        assert curve.shape == (3,)
        assert (np.diff(curve) >= 0).all()
        record = runset.record("model", 6e-4)
        assert record.lambda_g == pytest.approx(6e-4)
        with pytest.raises(ValidationError):
            runset.record("model", 123.0)
        with pytest.raises(ValidationError):
            runset.series("sim")

    def test_pattern_spec_reaches_the_simulator(self):
        uniform = api.run(tiny_scenario(offered_traffic=(6e-4,)), engines=("sim",))
        hotspot = api.run(
            tiny_scenario(
                offered_traffic=(6e-4,),
                pattern=api.PatternSpec("hotspot", {"hot_cluster": 1, "fraction": 0.6}),
            ),
            engines=("sim",),
        )
        assert (
            uniform.series("sim")[0].latency != hotspot.series("sim")[0].latency
        )

    def test_parallel_results_identical_to_sequential(self):
        scenario = tiny_scenario(offered_traffic=tuple(api.Scenario.load_grid(1e-3, 4)))
        sequential = api.run(scenario, engines=("model", "sim"))
        parallel = api.run(scenario, engines=("model", "sim"), parallel=True, max_workers=2)
        for seq, par in zip(sequential.records, parallel.records):
            assert seq.engine == par.engine
            assert seq.lambda_g == par.lambda_g
            assert seq.latency == par.latency
            if seq.simulation is not None:
                assert seq.simulation.mean_latency == par.simulation.mean_latency
                assert seq.simulation.std_latency == par.simulation.std_latency
                assert seq.simulation.measured_messages == par.simulation.measured_messages

    def test_total_wall_clock_is_positive_with_simulation(self):
        runset = api.run(tiny_scenario(offered_traffic=(4e-4,)), engines=("sim",))
        assert runset.total_wall_clock_seconds() > 0


class TestEngineParity:
    """AnalyticalEngine and SimulationEngine agree within the paper's band."""

    def test_engines_agree_in_steady_state(self):
        from repro.model.saturation import saturation_point

        scenario = tiny_scenario(sim=PARITY_CONFIG)
        model = api.AnalyticalEngine().model_for(scenario)
        probe = 0.4 * saturation_point(model, upper_bound=5e-3)
        runset = api.run(
            scenario.with_traffic((probe,)), engines=("model", "sim")
        )
        predicted = runset.series("model")[0].latency
        simulated = runset.series("sim")[0].latency
        # 25% mirrors the paper's "good degree of accuracy" claim as asserted
        # by the integration tests on these very small systems.
        assert predicted == pytest.approx(simulated, rel=0.25)

    def test_variance_override_engine_differs_from_reference(self):
        scenario = tiny_scenario(offered_traffic=(1e-3,))
        runset = api.run(
            scenario,
            engines=(
                api.AnalyticalEngine(),
                api.AnalyticalEngine(variance_approximation="zero", name="model/zero"),
            ),
        )
        assert runset.curve("model")[0] != runset.curve("model/zero")[0]

    def test_equal_size_engine_runs_the_approximation(self):
        scenario = tiny_scenario(offered_traffic=(6e-4,))
        runset = api.run(
            scenario, engines=(api.AnalyticalEngine(), api.equal_size_engine())
        )
        assert runset.engines == ("model", "model/equal-size")
        assert math.isfinite(runset.curve("model/equal-size")[0])


class TestSweepBackCompat:
    """latency_sweep (the shim) must match direct API runs exactly."""

    def test_latency_sweep_matches_api_run(self):
        from repro.experiments.sweep import latency_sweep

        grid = (2e-4, 6e-4, 1e-3)
        sweep = latency_sweep(
            TINY, MessageSpec(32, 256), grid, simulation_config=FAST
        )
        runset = api.run(tiny_scenario(offered_traffic=grid), engines=("model", "sim"))
        assert np.array_equal(sweep.model_curve, runset.curve("model"))
        assert np.array_equal(sweep.simulation_curve, runset.curve("sim"))

    def test_sweep_result_from_runset_handles_missing_series(self):
        from repro.experiments.sweep import sweep_result_from_runset

        model_only = sweep_result_from_runset(
            api.run(tiny_scenario(), engines=("model",))
        )
        assert not model_only.has_simulation
        sim_only = sweep_result_from_runset(
            api.run(tiny_scenario(offered_traffic=(4e-4,)), engines=("sim",))
        )
        assert sim_only.has_simulation
        assert math.isnan(sim_only.points[0].model_latency)
