"""Zoo scenarios through the Scenario/engine/store API layer."""

import pytest

from repro import api
from repro.experiments.compare import model_applicability
from repro.store import task_key
from repro.topology.multicluster import MultiClusterSpec
from repro.topology.zoo import TopologySpec
from repro.utils.validation import ValidationError

TORUS = TopologySpec("torus", {"rows": 4, "cols": 4})
TREE = TopologySpec("tree", {"depth": 2, "fanout": 4})
SYSTEM = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")


def zoo_scenario(spec=TORUS, **overrides):
    kwargs = dict(topology=spec, offered_traffic=(1e-3,), name="zoo-test")
    kwargs.update(overrides)
    return api.Scenario(**kwargs)


class TestScenarioValidation:
    def test_exactly_one_of_system_topology_required(self):
        with pytest.raises(ValidationError):
            api.Scenario(offered_traffic=(1e-3,))
        with pytest.raises(ValidationError):
            api.Scenario(system=SYSTEM, topology=TORUS, offered_traffic=(1e-3,))

    def test_network_property_returns_whichever_is_set(self):
        assert zoo_scenario().network is TORUS
        multicluster = api.Scenario(system=SYSTEM, offered_traffic=(1e-3,))
        assert multicluster.network is SYSTEM

    def test_spec_label_and_describe_cover_zoo(self):
        scenario = zoo_scenario()
        assert scenario.spec_label == "torus(4x4)"
        assert "torus(4x4)" in scenario.describe()


class TestSerialization:
    def test_multicluster_dict_omits_topology_field(self):
        """Store task keys hash the scenario dict: multi-cluster dicts (and
        therefore every pre-zoo content address) must stay byte-identical,
        which means no ``topology`` key may appear."""
        data = api.Scenario(system=SYSTEM, offered_traffic=(1e-3,)).to_dict()
        assert "topology" not in data
        assert "system" in data

    def test_zoo_dict_omits_system_field(self):
        data = zoo_scenario().to_dict()
        assert "system" not in data
        assert data["topology"] == {"kind": "torus", "params": {"rows": 4, "cols": 4}}

    def test_round_trip(self):
        scenario = zoo_scenario()
        rebuilt = api.Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.topology == TORUS

    def test_pre_zoo_dict_still_loads(self):
        """A dict written before the topology field existed loads as-is."""
        data = api.Scenario(system=SYSTEM, offered_traffic=(1e-3,)).to_dict()
        rebuilt = api.Scenario.from_dict(data)
        assert rebuilt.system == SYSTEM
        assert rebuilt.topology is None


class TestStoreKeys:
    def test_distinct_topologies_never_share_a_cache_entry(self):
        """Two topologies at the same operating point: distinct content keys."""
        lam = 1e-3
        torus = zoo_scenario(TORUS)
        tree = zoo_scenario(TREE)
        assert task_key(torus, "sim", lam) != task_key(tree, "sim", lam)

    def test_zoo_and_multicluster_keys_differ(self):
        lam = 1e-3
        zoo = zoo_scenario(name="same")
        system = api.Scenario(system=SYSTEM, offered_traffic=(1e-3,), name="same")
        assert task_key(zoo, "sim", lam) != task_key(system, "sim", lam)

    def test_equal_specs_share_a_key(self):
        lam = 1e-3
        a = zoo_scenario(TopologySpec("torus", {"rows": 4, "cols": 4}))
        b = zoo_scenario(TopologySpec("torus", {"cols": 4, "rows": 4}))
        assert task_key(a, "sim", lam) == task_key(b, "sim", lam)


class TestEngines:
    def test_analytical_engine_rejects_zoo_scenarios(self):
        engine = api.AnalyticalEngine()
        with pytest.raises(ValidationError, match="does not apply"):
            engine.evaluate(zoo_scenario(), 1e-3)

    def test_equal_size_engine_rejects_zoo_scenarios(self):
        engine = api.equal_size_engine()
        with pytest.raises(ValidationError, match="does not apply"):
            engine.evaluate(zoo_scenario(), 1e-3)

    def test_simulation_engine_runs_zoo_scenarios(self):
        scenario = api.scenario(
            "zoo/tree", points=1, sim=api.simulation_budget("quick", 0)
        )
        record = api.SimulationEngine().evaluate(scenario, scenario.offered_traffic[0])
        assert record.latency > 0
        assert record.simulation.external_fraction == 0.0


class TestApplicability:
    def test_multicluster_scenario_is_applicable(self):
        report = model_applicability(api.Scenario(system=SYSTEM, offered_traffic=(1e-3,)))
        assert report.applicable
        assert report.topology == "tiny"

    def test_zoo_scenario_is_not_applicable(self):
        report = model_applicability(zoo_scenario())
        assert not report.applicable
        assert "torus(4x4)" in report.reason
        assert report.summary()["applicable"] is False


def test_zoo_registry_scenarios_resolve():
    for name in ("zoo/fattree4", "zoo/tree", "zoo/torus"):
        assert name in api.scenario_names()
        scenario = api.scenario(name, points=2)
        assert scenario.system is None
        assert scenario.topology is not None
        assert len(scenario.offered_traffic) == 2
