"""Tests of the content-addressed result store: keys, round trips, eviction.

Everything store-level runs against **both backends** (one JSON file per
record, single SQLite file) through the parametrised ``store`` fixture —
the backend must never change what a key means, what a miss is, or what
eviction keeps.  Layout-specific behaviour (tmp-file sweeping, fan-out
directories) and migration have their own backend-aware classes at the end.
"""

import dataclasses
import json

import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.sim.simulator import DEFAULT_KERNEL
from repro.store import (
    DEFAULT_STORE_DIR,
    DirectoryBackend,
    ResultStore,
    SqliteBackend,
    jsonable_record,
    kernel_switches,
    migrate_store,
    task_key,
)
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=5)

BACKENDS = ("directory", "sqlite")


@pytest.fixture(params=BACKENDS)
def store_backend(request):
    return request.param


@pytest.fixture
def store(tmp_path, store_backend):
    return ResultStore(tmp_path, backend=store_backend)


def tiny_scenario(**overrides) -> api.Scenario:
    defaults = dict(
        system=TINY,
        message=MessageSpec(32, 256),
        offered_traffic=(4e-4, 8e-4),
        sim=FAST,
        name="tiny",
    )
    defaults.update(overrides)
    return api.Scenario(**defaults)


class TestTaskKey:
    def test_key_is_stable_for_identical_tasks(self):
        assert task_key(tiny_scenario(), "sim", 4e-4) == task_key(
            tiny_scenario(), "sim", 4e-4
        )

    def test_engine_and_point_separate_keys(self):
        scenario = tiny_scenario()
        base = task_key(scenario, "sim", 4e-4)
        assert task_key(scenario, "model", 4e-4) != base
        assert task_key(scenario, "sim", 8e-4) != base

    def test_every_scenario_field_reaches_the_key(self):
        base = task_key(tiny_scenario(), "sim", 4e-4)
        variants = [
            tiny_scenario(message=MessageSpec(64, 256)),
            tiny_scenario(message=MessageSpec(32, 512)),
            tiny_scenario(sim=FAST.with_seed(6)),
            tiny_scenario(sim=dataclasses.replace(FAST, measured_messages=400)),
            tiny_scenario(pattern=api.PatternSpec("hotspot", {"hot_cluster": 0})),
            tiny_scenario(variance_approximation="zero"),
            tiny_scenario(name="renamed"),
            tiny_scenario(system=MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1))),
            tiny_scenario(offered_traffic=(4e-4, 9e-4)),
        ]
        keys = {task_key(variant, "sim", 4e-4) for variant in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    @pytest.mark.parametrize(
        "variable, value",
        [
            ("REPRO_SIM_KERNEL", "generator"),
            ("REPRO_DES_SCHEDULER", "calendar"),
            ("REPRO_DES_CALENDAR_THRESHOLD", "128"),
        ],
    )
    def test_kernel_switches_reach_the_key(self, monkeypatch, variable, value):
        scenario = tiny_scenario()
        monkeypatch.delenv(variable, raising=False)
        base = task_key(scenario, "sim", 4e-4)
        monkeypatch.setenv(variable, value)
        assert task_key(scenario, "sim", 4e-4) != base

    def test_explicit_default_switches_match_unset_environment(self, monkeypatch):
        """Setting a switch to its default value is the same key as unset."""
        scenario = tiny_scenario()
        for variable in (
            "REPRO_SIM_KERNEL",
            "REPRO_DES_SCHEDULER",
            "REPRO_DES_CALENDAR_THRESHOLD",
        ):
            monkeypatch.delenv(variable, raising=False)
        base = task_key(scenario, "sim", 4e-4)
        monkeypatch.setenv("REPRO_SIM_KERNEL", DEFAULT_KERNEL)
        monkeypatch.setenv("REPRO_DES_SCHEDULER", "auto")
        monkeypatch.setenv("REPRO_DES_CALENDAR_THRESHOLD", "4096")
        assert task_key(scenario, "sim", 4e-4) == base

    def test_package_version_reaches_the_key(self, monkeypatch):
        """A version bump invalidates records produced by older code."""
        import repro

        base = task_key(tiny_scenario(), "sim", 4e-4)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert task_key(tiny_scenario(), "sim", 4e-4) != base

    def test_switches_snapshot_shape(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        switches = kernel_switches()
        assert switches["sim_kernel"] == DEFAULT_KERNEL
        assert set(switches) == {"sim_kernel", "des_scheduler", "des_calendar_threshold"}


class TestStoreRoundTrip:
    def _record(self, lambda_g=4e-4):
        runset = api.run(
            tiny_scenario(offered_traffic=(lambda_g,)), engines=("sim",)
        )
        return runset.series("sim")[0]

    def test_put_get_round_trip_is_bit_identical(self, store):
        record = self._record()
        key = task_key(tiny_scenario(offered_traffic=(4e-4,)), "sim", 4e-4)
        store.put(key, record)
        loaded = store.get(key)
        # Serialised forms compare exactly (covers inf/nan fields too).
        assert json.dumps(jsonable_record(loaded), sort_keys=True) == json.dumps(
            jsonable_record(record), sort_keys=True
        )
        assert loaded.latency == record.latency
        assert loaded.simulation.mean_latency == record.simulation.mean_latency
        assert loaded.simulation.std_latency == record.simulation.std_latency
        assert loaded.simulation.seed == record.simulation.seed
        assert loaded.simulation.clusters == record.simulation.clusters

    def test_model_record_with_infinite_latency_round_trips(self, store):
        scenario = tiny_scenario(offered_traffic=(5e-2,))
        record = api.run(scenario, engines=("model",)).series("model")[0]
        assert record.saturated
        key = task_key(scenario, "model", 5e-2)
        store.put(key, record)
        loaded = store.get(key)
        assert loaded.saturated
        assert loaded.latency == float("inf")

    def test_missing_key_is_a_miss(self, store):
        assert store.get("0" * 64) is None

    def test_corrupt_payload_reads_as_a_miss(self, store):
        key = "ab" + "0" * 62
        store.backend.write_text(key, "{not json")
        assert store.get(key) is None
        store.backend.write_text(key, json.dumps({"schema": 999, "record": {}}))
        assert store.get(key) is None

    def test_truncated_record_is_a_miss_for_get_and_contains(self, store):
        """Regression: membership must run the same validation as get().

        ``__contains__`` used to answer existence-of-file, so a truncated
        record (a crashed writer, a full disk) was "in" the store while
        ``get`` correctly missed — callers branching on ``key in store``
        then trusted a record that could never be loaded.
        """
        record = self._record()
        key = task_key(tiny_scenario(offered_traffic=(4e-4,)), "sim", 4e-4)
        store.put(key, record)
        assert key in store
        text = store.backend.read_text(key)
        store.backend.write_text(key, text[: len(text) // 2])
        assert store.get(key) is None
        assert key not in store  # membership and get can never disagree
        # The next put heals the record under the same key.
        store.put(key, record)
        assert key in store and store.get(key) is not None

    def test_contains_and_len(self, store):
        key = task_key(tiny_scenario(offered_traffic=(4e-4,)), "sim", 4e-4)
        assert key not in store
        assert len(store) == 0
        store.put(key, self._record())
        assert key in store
        assert len(store) == 1


class TestStoreLocation:
    def test_repro_store_env_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "elsewhere"))
        assert ResultStore().root == tmp_path / "elsewhere"

    def test_explicit_root_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        assert ResultStore(tmp_path / "explicit").root == tmp_path / "explicit"

    def test_default_location_is_the_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert ResultStore().root == DEFAULT_STORE_DIR


class TestBackendSelection:
    def test_default_backend_is_directory(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        assert ResultStore(tmp_path).backend.name == "directory"

    def test_env_selects_the_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert ResultStore(tmp_path).backend.name == "sqlite"

    def test_constructor_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert ResultStore(tmp_path, backend="directory").backend.name == "directory"

    def test_backend_instance_accepted(self, tmp_path):
        backend = SqliteBackend(tmp_path)
        assert ResultStore(tmp_path, backend=backend).backend is backend

    def test_existing_database_autodetects_sqlite(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        ResultStore(tmp_path, backend="sqlite").backend.write_text("ab" + "0" * 62, "{}")
        assert ResultStore(tmp_path).backend.name == "sqlite"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultStore(tmp_path, backend="papyrus")

    def test_sqlite_has_no_per_record_paths(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultStore(tmp_path, backend="sqlite").path_for("ab" + "0" * 62)


class TestEviction:
    def _fill(self, store, count):
        record = api.run(
            tiny_scenario(offered_traffic=(4e-4,)), engines=("model",)
        ).series("model")[0]
        keys = []
        for index in range(count):
            key = task_key(tiny_scenario(offered_traffic=(4e-4,)), "model", 4e-4 + index * 1e-6)
            store.put(key, record)
            keys.append(key)
        return keys

    def test_clear_removes_everything(self, store):
        self._fill(store, 3)
        assert store.clear() == 3
        assert len(store) == 0

    def test_prune_keeps_most_recently_used(self, store):
        keys = self._fill(store, 4)
        # Age everything, then touch the first key through a hit.
        for index, key in enumerate(keys):
            store.backend.set_last_used(key, 1_000_000 + index)
        assert store.get(keys[0]) is not None  # refreshes last_used to "now"
        removed = store.prune(2)
        assert removed == 2
        assert keys[0] in store  # most recently used survives
        assert keys[1] not in store

    def test_reads_refresh_recency(self, store):
        keys = self._fill(store, 3)
        for index, key in enumerate(keys):
            store.backend.set_last_used(key, 1_000_000 + index)
        before = store.backend.get_last_used(keys[0])
        assert store.get(keys[0]) is not None
        assert store.backend.get_last_used(keys[0]) > before

    def test_prune_rejects_negative(self, store):
        with pytest.raises(ValueError):
            store.prune(-1)

    def test_prune_to_zero_empties_the_store(self, store):
        self._fill(store, 3)
        assert store.prune(0) == 3
        assert len(store) == 0

    def test_size_bytes_tracks_contents(self, store):
        assert store.size_bytes() == 0
        self._fill(store, 2)
        assert store.size_bytes() > 0

    def test_describe_mentions_root_count_and_backend(self, store, store_backend):
        self._fill(store, 2)
        text = store.describe()
        assert str(store.root) in text
        assert "2 records" in text
        assert store_backend in text


class TestDirectoryHousekeeping:
    """The per-file layout's failure mode: tmp droppings from dead writers."""

    def _leak_tmp(self, store, *, age_seconds=0.0, payload=b"x" * 64):
        import os
        import time

        fanout = store.root / "ab"
        fanout.mkdir(parents=True, exist_ok=True)
        leaked = fanout / "tmp_leaked_by_dead_writer.tmp"
        leaked.write_bytes(payload)
        if age_seconds:
            stamp = time.time() - age_seconds
            os.utime(leaked, (stamp, stamp))
        return leaked

    def test_size_bytes_counts_leaked_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path, backend="directory")
        leaked = self._leak_tmp(store)
        assert store.size_bytes() == leaked.stat().st_size
        assert len(store) == 0  # but they are not records

    def test_clear_leaves_an_empty_directory_tree(self, tmp_path):
        store = ResultStore(tmp_path, backend="directory")
        record = api.run(
            tiny_scenario(offered_traffic=(4e-4,)), engines=("model",)
        ).series("model")[0]
        store.put(task_key(tiny_scenario(), "model", 4e-4), record)
        self._leak_tmp(store)
        removed = store.clear()
        assert removed == 1  # records counted; tmp files swept besides
        assert list(tmp_path.iterdir()) == []  # no files, no fan-out dirs
        assert store.size_bytes() == 0

    def test_prune_sweeps_stale_tmp_but_spares_fresh_ones(self, tmp_path):
        store = ResultStore(tmp_path, backend="directory")
        stale = self._leak_tmp(store, age_seconds=7200.0)
        fresh = store.root / "ab" / "tmp_concurrent_writer.tmp"
        fresh.write_bytes(b"y" * 16)
        store.prune(10)
        assert not stale.exists()  # dead writer's dropping is gone
        assert fresh.exists()  # an in-flight put is never touched

    def test_interrupted_put_leak_is_eventually_reclaimed(self, tmp_path, monkeypatch):
        """An exception mid-write cleans up eagerly; a hard kill is swept later."""
        import os

        store = ResultStore(tmp_path, backend="directory")

        # Simulated hard kill: fdopen succeeds but the replace never runs.
        real_replace = os.replace

        def _dying_replace(src, dst, **kwargs):
            raise KeyboardInterrupt  # BaseException, like a signal

        key = task_key(tiny_scenario(), "model", 4e-4)
        record = api.run(
            tiny_scenario(offered_traffic=(4e-4,)), engines=("model",)
        ).series("model")[0]
        monkeypatch.setattr(os, "replace", _dying_replace)
        with pytest.raises(KeyboardInterrupt):
            store.put(key, record)
        monkeypatch.setattr(os, "replace", real_replace)
        # The eager cleanup already removed the tmp file...
        assert list(store.root.glob("*/*.tmp")) == []
        # ...and even a leak that survives (crash between fdopen and the
        # except clause) is reclaimed by clear().
        self._leak_tmp(store)
        store.clear()
        assert list(tmp_path.iterdir()) == []


class TestMigration:
    def _fill(self, store, count=3):
        record = api.run(
            tiny_scenario(offered_traffic=(4e-4,)), engines=("model",)
        ).series("model")[0]
        keys = []
        for index in range(count):
            key = task_key(tiny_scenario(), "model", 4e-4 + index * 1e-6)
            store.put(key, record)
            keys.append(key)
        return keys

    def test_round_trip_is_record_identical(self, tmp_path):
        store = ResultStore(tmp_path, backend="directory")
        keys = self._fill(store)
        originals = {key: store.backend.read_text(key) for key in keys}
        assert migrate_store(store, "sqlite") == 3
        assert store.backend.name == "sqlite"
        for key, text in originals.items():
            assert store.backend.read_text(key) == text  # byte-identical payloads
        assert migrate_store(store, "directory") == 3
        for key, text in originals.items():
            assert store.backend.read_text(key) == text

    def test_migration_preserves_lru_order(self, tmp_path):
        store = ResultStore(tmp_path, backend="directory")
        keys = self._fill(store)
        for index, key in enumerate(keys):
            store.backend.set_last_used(key, 1_000_000 + index)
        migrate_store(store, "sqlite")
        store.prune(1)
        assert keys[2] in store  # newest stamp survives the move
        assert keys[0] not in store

    def test_migration_flips_autodetection_both_ways(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        store = ResultStore(tmp_path, backend="directory")
        self._fill(store)
        migrate_store(store, "sqlite")
        assert ResultStore(tmp_path).backend.name == "sqlite"
        assert len(ResultStore(tmp_path)) == 3
        migrate_store(store, "directory")
        assert not (tmp_path / SqliteBackend.DB_FILENAME).exists()
        assert ResultStore(tmp_path).backend.name == "directory"
        assert len(ResultStore(tmp_path)) == 3

    def test_migrating_to_the_current_backend_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path, backend="directory")
        self._fill(store)
        assert migrate_store(store, "directory") == 0
        assert len(store) == 3

    def test_interrupted_migration_is_resumable(self, tmp_path, monkeypatch):
        """Regression: records stranded by a mid-migration crash stay reachable.

        Auto-detection flips to SQLite as soon as store.db exists, so JSON
        records an interrupted directory->sqlite migration left behind would
        be invisible forever if re-running --migrate treated "already
        sqlite" as done.  Draining the complementary layout makes the same
        command resume instead.
        """
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        store = ResultStore(tmp_path, backend="directory")
        keys = self._fill(store)
        # Simulate the interrupt: only the first record made it across.
        partial = SqliteBackend(tmp_path)
        partial.write_text(keys[0], store.backend.read_text(keys[0]))
        store.backend.delete(keys[0])
        # Auto-detection now opens the root as SQLite and sees one record;
        # the two stranded JSON files are unreachable through the store.
        resumed = ResultStore(tmp_path)
        assert resumed.backend.name == "sqlite"
        assert len(resumed) == 1
        # Re-running the same migration drains the stranded records...
        assert migrate_store(resumed, "sqlite") == 2
        assert len(resumed) == 3
        assert all(key in resumed for key in keys)
        assert list(DirectoryBackend(tmp_path).keys()) == []
        # ...and a duplicate key keeps the target's copy rather than a stale one.
        DirectoryBackend(tmp_path).write_text(keys[0], "{stale leftover")
        assert migrate_store(resumed, "sqlite") == 0
        assert resumed.get(keys[0]) is not None  # target copy untouched
        assert list(DirectoryBackend(tmp_path).keys()) == []  # stale copy dropped

    def test_unknown_target_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            migrate_store(ResultStore(tmp_path), "papyrus")

    def test_records_stay_loadable_after_migration(self, tmp_path):
        store = ResultStore(tmp_path, backend="directory")
        keys = self._fill(store)
        migrate_store(store, "sqlite")
        for key in keys:
            assert store.get(key) is not None
            assert key in store


def _fork_read_text(backend, key, conn):
    """Fork-child probe: read through a backend whose parent already holds a
    cached connection (module-level so the fork context can run it)."""
    conn.send(backend.read_text(key))
    conn.close()


class TestSqliteConnectionCache:
    """The per-thread connection cache behind warm serving reads."""

    def _seed(self, tmp_path):
        backend = SqliteBackend(tmp_path)
        backend.write_text("alpha", '{"v": 1}')
        return backend

    def test_same_thread_reuses_one_connection(self, tmp_path):
        backend = self._seed(tmp_path)
        first = backend._connect(create=False)
        second = backend._connect(create=False)
        assert first is second

    def test_two_backend_objects_share_the_thread_cache(self, tmp_path):
        self._seed(tmp_path)
        # The cache keys on the database file, not the backend instance —
        # the server and the executor hitting one store share one handle.
        assert SqliteBackend(tmp_path)._connect(create=False) is SqliteBackend(
            tmp_path
        )._connect(create=False)

    def test_threads_get_their_own_connections(self, tmp_path):
        import threading

        backend = self._seed(tmp_path)
        here = backend._connect(create=False)
        seen = {}

        def worker():
            seen["conn"] = backend._connect(create=False)
            seen["read"] = backend.read_text("alpha")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["conn"] is not here  # sqlite3 thread affinity respected
        assert seen["read"] == '{"v": 1}'

    def test_deleted_database_is_noticed_not_served_from_a_ghost(self, tmp_path):
        backend = self._seed(tmp_path)
        assert backend.read_text("alpha") is not None  # handle now cached
        for leftover in tmp_path.glob(f"{SqliteBackend.DB_FILENAME}*"):
            leftover.unlink()
        # A cached handle would happily keep reading the unlinked inode;
        # the stat-first discipline must turn this into an honest miss...
        assert backend.read_text("alpha") is None
        assert list(backend.keys()) == []
        # ...and the next write rebuilds a fresh database.
        backend.write_text("beta", '{"v": 2}')
        assert backend.read_text("beta") == '{"v": 2}'

    def test_replaced_database_drops_the_stale_handle(self, tmp_path, monkeypatch):
        backend = self._seed(tmp_path)
        assert backend.read_text("alpha") is not None
        # Replace store.db wholesale (a different file at the same path —
        # what a restore-from-backup or an rsync deploy does).
        replacement = SqliteBackend(tmp_path / "staging")
        replacement.write_text("gamma", '{"v": 3}')
        replacement._evict_cached()
        for leftover in tmp_path.glob(f"{SqliteBackend.DB_FILENAME}*"):
            leftover.unlink()
        (tmp_path / "staging" / SqliteBackend.DB_FILENAME).rename(
            tmp_path / SqliteBackend.DB_FILENAME
        )
        assert backend.read_text("alpha") is None
        assert backend.read_text("gamma") == '{"v": 3}'

    def test_forked_child_abandons_the_parents_handle(self, tmp_path):
        import multiprocessing

        backend = self._seed(tmp_path)
        assert backend.read_text("alpha") is not None  # parent handle cached
        context = multiprocessing.get_context("fork")
        receiver, sender = context.Pipe(duplex=False)
        child = context.Process(
            target=_fork_read_text, args=(backend, "alpha", sender)
        )
        child.start()
        sender.close()
        try:
            assert receiver.poll(30)
            assert receiver.recv() == '{"v": 1}'  # child re-opened, pid-stamped
        finally:
            child.join()
            receiver.close()
        assert child.exitcode == 0
        assert backend.read_text("alpha") == '{"v": 1}'  # parent handle intact

    def test_exception_rolls_back_without_closing_the_handle(self, tmp_path):
        backend = self._seed(tmp_path)
        conn = backend._connect(create=False)
        with pytest.raises(RuntimeError):
            with backend._cursor(create=False):
                raise RuntimeError("mid-operation failure")
        assert backend._connect(create=False) is conn  # survived the failure
        assert backend.read_text("alpha") == '{"v": 1}'


class TestLiveMigration:
    """``--migrate`` under concurrent writers: late records must cross too."""

    def _fill(self, store, count=2):
        record = api.run(
            tiny_scenario(offered_traffic=(4e-4,)), engines=("model",)
        ).series("model")[0]
        text = None
        keys = []
        for index in range(count):
            key = task_key(tiny_scenario(), "model", 4e-4 + index * 1e-6)
            store.put(key, record)
            keys.append(key)
            text = store.backend.read_text(key)
        return keys, text

    def test_record_written_mid_migration_is_picked_up(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path, backend="directory")
        keys, text = self._fill(store)
        source = store.backend
        original_delete = source.delete
        late = {}

        def delete_then_write_late(key):
            original_delete(key)
            if not late:
                # A concurrent campaign lands a record *after* the initial
                # snapshot was taken — the re-snapshot pass must catch it.
                late["key"] = task_key(tiny_scenario(), "model", 9e-4)
                source.write_text(late["key"], text)

        monkeypatch.setattr(source, "delete", delete_then_write_late)
        moved = migrate_store(store, "sqlite")
        assert moved == 3
        assert store.backend.name == "sqlite"
        assert late["key"] in store
        assert store.backend.read_text(late["key"]) == text
        assert list(DirectoryBackend(tmp_path).keys()) == []

    def test_migration_terminates_under_constant_write_load(
        self, tmp_path, monkeypatch
    ):
        from repro.store import _MIGRATE_MAX_PASSES

        store = ResultStore(tmp_path, backend="directory")
        keys, text = self._fill(store)
        source = store.backend
        original_delete = source.delete
        injected = []

        def delete_and_always_write(key):
            original_delete(key)
            late = task_key(tiny_scenario(), "model", 1e-3 + len(injected) * 1e-6)
            source.write_text(late, text)
            injected.append(late)

        monkeypatch.setattr(source, "delete", delete_and_always_write)
        # A writer that never stops can starve a drain loop forever; the
        # pass cap bounds the chase and leaves stragglers resumable.
        moved = migrate_store(store, "sqlite")
        assert moved == 2 * _MIGRATE_MAX_PASSES
        stragglers = list(DirectoryBackend(tmp_path).keys())
        assert len(stragglers) == 2
        # Quiet store: re-running the same migration drains the stragglers.
        assert migrate_store(store, "sqlite") == 2
        assert list(DirectoryBackend(tmp_path).keys()) == []
        assert len(store) == len(keys) + len(injected)
