"""Tests of the content-addressed result store: keys, round trips, eviction."""

import dataclasses
import json

import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.store import (
    DEFAULT_STORE_DIR,
    ResultStore,
    jsonable_record,
    kernel_switches,
    task_key,
)
from repro.topology.multicluster import MultiClusterSpec

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=5)


def tiny_scenario(**overrides) -> api.Scenario:
    defaults = dict(
        system=TINY,
        message=MessageSpec(32, 256),
        offered_traffic=(4e-4, 8e-4),
        sim=FAST,
        name="tiny",
    )
    defaults.update(overrides)
    return api.Scenario(**defaults)


class TestTaskKey:
    def test_key_is_stable_for_identical_tasks(self):
        assert task_key(tiny_scenario(), "sim", 4e-4) == task_key(
            tiny_scenario(), "sim", 4e-4
        )

    def test_engine_and_point_separate_keys(self):
        scenario = tiny_scenario()
        base = task_key(scenario, "sim", 4e-4)
        assert task_key(scenario, "model", 4e-4) != base
        assert task_key(scenario, "sim", 8e-4) != base

    def test_every_scenario_field_reaches_the_key(self):
        base = task_key(tiny_scenario(), "sim", 4e-4)
        variants = [
            tiny_scenario(message=MessageSpec(64, 256)),
            tiny_scenario(message=MessageSpec(32, 512)),
            tiny_scenario(sim=FAST.with_seed(6)),
            tiny_scenario(sim=dataclasses.replace(FAST, measured_messages=400)),
            tiny_scenario(pattern=api.PatternSpec("hotspot", {"hot_cluster": 0})),
            tiny_scenario(variance_approximation="zero"),
            tiny_scenario(name="renamed"),
            tiny_scenario(system=MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1))),
            tiny_scenario(offered_traffic=(4e-4, 9e-4)),
        ]
        keys = {task_key(variant, "sim", 4e-4) for variant in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    @pytest.mark.parametrize(
        "variable, value",
        [
            ("REPRO_SIM_KERNEL", "generator"),
            ("REPRO_DES_SCHEDULER", "calendar"),
            ("REPRO_DES_CALENDAR_THRESHOLD", "128"),
        ],
    )
    def test_kernel_switches_reach_the_key(self, monkeypatch, variable, value):
        scenario = tiny_scenario()
        monkeypatch.delenv(variable, raising=False)
        base = task_key(scenario, "sim", 4e-4)
        monkeypatch.setenv(variable, value)
        assert task_key(scenario, "sim", 4e-4) != base

    def test_explicit_default_switches_match_unset_environment(self, monkeypatch):
        """Setting a switch to its default value is the same key as unset."""
        scenario = tiny_scenario()
        for variable in (
            "REPRO_SIM_KERNEL",
            "REPRO_DES_SCHEDULER",
            "REPRO_DES_CALENDAR_THRESHOLD",
        ):
            monkeypatch.delenv(variable, raising=False)
        base = task_key(scenario, "sim", 4e-4)
        monkeypatch.setenv("REPRO_SIM_KERNEL", "dispatch")
        monkeypatch.setenv("REPRO_DES_SCHEDULER", "auto")
        monkeypatch.setenv("REPRO_DES_CALENDAR_THRESHOLD", "4096")
        assert task_key(scenario, "sim", 4e-4) == base

    def test_package_version_reaches_the_key(self, monkeypatch):
        """A version bump invalidates records produced by older code."""
        import repro

        base = task_key(tiny_scenario(), "sim", 4e-4)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert task_key(tiny_scenario(), "sim", 4e-4) != base

    def test_switches_snapshot_shape(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        switches = kernel_switches()
        assert switches["sim_kernel"] == "dispatch"
        assert set(switches) == {"sim_kernel", "des_scheduler", "des_calendar_threshold"}


class TestStoreRoundTrip:
    def _record(self, lambda_g=4e-4):
        runset = api.run(
            tiny_scenario(offered_traffic=(lambda_g,)), engines=("sim",)
        )
        return runset.series("sim")[0]

    def test_put_get_round_trip_is_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        record = self._record()
        key = task_key(tiny_scenario(offered_traffic=(4e-4,)), "sim", 4e-4)
        store.put(key, record)
        loaded = store.get(key)
        # Serialised forms compare exactly (covers inf/nan fields too).
        assert json.dumps(jsonable_record(loaded), sort_keys=True) == json.dumps(
            jsonable_record(record), sort_keys=True
        )
        assert loaded.latency == record.latency
        assert loaded.simulation.mean_latency == record.simulation.mean_latency
        assert loaded.simulation.std_latency == record.simulation.std_latency
        assert loaded.simulation.seed == record.simulation.seed
        assert loaded.simulation.clusters == record.simulation.clusters

    def test_model_record_with_infinite_latency_round_trips(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = tiny_scenario(offered_traffic=(5e-2,))
        record = api.run(scenario, engines=("model",)).series("model")[0]
        assert record.saturated
        key = task_key(scenario, "model", 5e-2)
        store.put(key, record)
        loaded = store.get(key)
        assert loaded.saturated
        assert loaded.latency == float("inf")

    def test_missing_key_is_a_miss(self, tmp_path):
        assert ResultStore(tmp_path).get("0" * 64) is None

    def test_corrupt_file_reads_as_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert store.get(key) is None
        path.write_text(json.dumps({"schema": 999, "record": {}}))
        assert store.get(key) is None

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        key = task_key(tiny_scenario(offered_traffic=(4e-4,)), "sim", 4e-4)
        assert key not in store
        assert len(store) == 0
        store.put(key, self._record())
        assert key in store
        assert len(store) == 1


class TestStoreLocation:
    def test_repro_store_env_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "elsewhere"))
        assert ResultStore().root == tmp_path / "elsewhere"

    def test_explicit_root_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
        assert ResultStore(tmp_path / "explicit").root == tmp_path / "explicit"

    def test_default_location_is_the_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert ResultStore().root == DEFAULT_STORE_DIR


class TestEviction:
    def _fill(self, store, count):
        record = api.run(
            tiny_scenario(offered_traffic=(4e-4,)), engines=("model",)
        ).series("model")[0]
        keys = []
        for index in range(count):
            key = task_key(tiny_scenario(offered_traffic=(4e-4,)), "model", 4e-4 + index * 1e-6)
            store.put(key, record)
            keys.append(key)
        return keys

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        self._fill(store, 3)
        assert store.clear() == 3
        assert len(store) == 0

    def test_prune_keeps_most_recently_used(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        keys = self._fill(store, 4)
        # Age everything, then touch the first key through a hit.
        for index, key in enumerate(keys):
            stamp = 1_000_000 + index
            os.utime(store.path_for(key), (stamp, stamp))
        assert store.get(keys[0]) is not None  # refreshes mtime to "now"
        removed = store.prune(2)
        assert removed == 2
        assert keys[0] in store  # most recently used survives
        assert keys[1] not in store

    def test_prune_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).prune(-1)

    def test_describe_mentions_root_and_count(self, tmp_path):
        store = ResultStore(tmp_path)
        self._fill(store, 2)
        text = store.describe()
        assert str(tmp_path) in text
        assert "2 records" in text
