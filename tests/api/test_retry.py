"""Tests of campaign fault tolerance: retry policy, crashes, hangs, timeouts.

The acceptance bar: killing a pooled worker mid-campaign still yields a
completed campaign whose records are bit-identical to an uninterrupted
sequential run (the wall-clock provenance in metadata is the only thing
allowed to differ).  Worker faults are injected deterministically through
the ``REPRO_CAMPAIGN_FAULT`` hook: the named task crashes (``os._exit``) or
hangs (sleeps) exactly once, recorded by a marker file, so the retried
attempt succeeds.
"""

import json

import pytest

from repro import api
from repro.campaign import (
    Campaign,
    CampaignEntry,
    CampaignExecutionError,
    CampaignExecutor,
    CampaignProgress,
    RetryPolicy,
    TaskCompleted,
    TaskFailed,
    TaskRetried,
    run_campaign,
)
from repro.store import ResultStore, jsonable_record
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
WIDE = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1), name="wide")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=3)


def scenario_for(system, *, traffic=(4e-4, 8e-4)) -> api.Scenario:
    return api.Scenario(
        system=system,
        message=MessageSpec(32, 256),
        offered_traffic=traffic,
        sim=FAST,
        name=system.name,
    )


def sim_campaign() -> Campaign:
    return Campaign(
        entries=(
            CampaignEntry(scenario=scenario_for(TINY), engines=("sim",)),
            CampaignEntry(scenario=scenario_for(WIDE), engines=("sim",)),
        ),
        name="two",
    )


def strip_wall_clock(obj):
    """Drop the wall-clock provenance — the only legitimately run-dependent field."""
    if isinstance(obj, dict):
        return {k: strip_wall_clock(v) for k, v in obj.items() if k != "wall_clock_seconds"}
    if isinstance(obj, list):
        return [strip_wall_clock(v) for v in obj]
    return obj


def canonical(result) -> str:
    return json.dumps(
        [
            [strip_wall_clock(jsonable_record(record)) for record in runset.records]
            for runset in result.runsets
        ],
        sort_keys=True,
    )


def inject_fault(monkeypatch, tmp_path, kind, task_id):
    marker = tmp_path / "fault-marker"
    monkeypatch.setenv(
        "REPRO_CAMPAIGN_FAULT",
        json.dumps({"kind": kind, "task": task_id, "marker": str(marker)}),
    )
    return marker


class FlakyEngine:
    """An inline engine that fails a configurable number of times per point."""

    name = "flaky"
    expensive = False

    def __init__(self, failures=1):
        self.failures = failures
        self.calls = 0

    def evaluate(self, scenario, lambda_g):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient failure #{self.calls}")
        return api.AnalyticalEngine(name=self.name).evaluate(scenario, lambda_g)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout_seconds is None
        assert policy.backoff_seconds == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_seconds": 0},
            {"timeout_seconds": -1.0},
            {"backoff_seconds": -0.1},
            {"backoff_multiplier": 0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_seconds=0.5, backoff_multiplier=2.0)
        assert policy.delay_before(1) == 0.0  # the first attempt never waits
        assert policy.delay_before(2) == 0.5
        assert policy.delay_before(3) == 1.0
        assert policy.delay_before(4) == 2.0

    def test_task_id_is_label_engine_point(self):
        campaign = sim_campaign()
        executor = CampaignExecutor(campaign, store=None)
        ids = [task.task_id for task in executor.tasks()]
        assert ids == ["tiny:sim:0", "tiny:sim:1", "wide:sim:0", "wide:sim:1"]


class TestInlineRetries:
    def test_transient_failure_is_retried_and_recovers(self, tmp_path):
        engine = FlakyEngine(failures=1)
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=(engine,)),
            )
        )
        events = list(
            CampaignExecutor(
                campaign, store=None, retry=RetryPolicy(max_attempts=2)
            ).execute()
        )
        retried = [event for event in events if isinstance(event, TaskRetried)]
        completed = [event for event in events if isinstance(event, TaskCompleted)]
        assert len(retried) == 1 and len(completed) == 1
        assert retried[0].attempt == 1 and retried[0].max_attempts == 2
        assert "transient failure" in retried[0].error
        assert engine.calls == 2

    def test_exhausted_task_streams_task_failed_not_an_exception(self):
        campaign = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY, traffic=(4e-4,)),
                    engines=(FlakyEngine(failures=99),),
                ),
            )
        )
        events = list(
            CampaignExecutor(
                campaign, store=None, retry=RetryPolicy(max_attempts=2)
            ).execute()
        )
        failed = [event for event in events if isinstance(event, TaskFailed)]
        assert len(failed) == 1
        assert failed[0].attempts == 2
        closing = events[-1]
        assert isinstance(closing, CampaignProgress)
        assert closing.done == closing.total == 1
        assert closing.failed == 1 and closing.retries == 1

    def test_default_policy_gives_one_attempt(self):
        engine = FlakyEngine(failures=1)
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=(engine,)),
            )
        )
        with pytest.raises(CampaignExecutionError):
            run_campaign(campaign, store=None)
        assert engine.calls == 1  # no silent retries without a policy

    def test_strict_collect_raises_with_structured_failures(self):
        campaign = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY, traffic=(4e-4,)),
                    engines=(FlakyEngine(failures=99),),
                ),
            )
        )
        with pytest.raises(CampaignExecutionError) as excinfo:
            run_campaign(campaign, store=None, retry=RetryPolicy(max_attempts=2))
        assert len(excinfo.value.failures) == 1
        failure = excinfo.value.failures[0]
        assert failure.task.task_id == "tiny:flaky:0"
        assert failure.attempts == 2
        assert "tiny:flaky:0" in str(excinfo.value)

    def test_non_strict_collect_returns_partial_runsets(self):
        healthy = api.AnalyticalEngine()
        campaign = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY, traffic=(4e-4, 8e-4)),
                    engines=(healthy, FlakyEngine(failures=99)),
                ),
            )
        )
        result = run_campaign(
            campaign, store=None, retry=RetryPolicy(max_attempts=2), strict=False
        )
        assert len(result.failures) == 2  # both flaky points exhausted
        assert result.task_retries == 2
        runset = result.runsets[0]
        assert len(runset.records) == 2  # the healthy engine's series survives
        assert all(record.engine == "model" for record in runset.records)
        assert result.total_tasks == 4
        assert {failure.task.task_id for failure in result.failures} == {
            "tiny:flaky:0",
            "tiny:flaky:1",
        }

    def test_retry_events_observable_through_collect(self):
        seen = []
        campaign = Campaign(
            entries=(
                CampaignEntry(
                    scenario=scenario_for(TINY, traffic=(4e-4,)),
                    engines=(FlakyEngine(failures=1),),
                ),
            )
        )
        result = run_campaign(
            campaign, store=None, retry=RetryPolicy(max_attempts=3), on_event=seen.append
        )
        assert result.task_retries == 1
        assert sum(isinstance(event, TaskRetried) for event in seen) == 1


class TestPooledCrashRecovery:
    def test_crashed_worker_recovers_bit_identically(self, tmp_path, monkeypatch):
        """The acceptance criterion: kill a pooled worker, records unchanged."""
        campaign = sim_campaign()
        reference = run_campaign(campaign, store=None)
        marker = inject_fault(monkeypatch, tmp_path, "crash", "tiny:sim:0")
        recovered = run_campaign(
            campaign,
            parallel=True,
            max_workers=2,
            store=None,
            retry=RetryPolicy(max_attempts=3),
        )
        assert marker.exists()  # the crash really fired
        assert recovered.task_retries >= 1
        assert not recovered.failures
        assert canonical(recovered) == canonical(reference)

    def test_crash_recovery_persists_records_to_the_store(self, tmp_path, monkeypatch):
        campaign = sim_campaign()
        store = ResultStore(tmp_path / "store")
        inject_fault(monkeypatch, tmp_path, "crash", "tiny:sim:1")
        run_campaign(
            campaign,
            parallel=True,
            max_workers=2,
            store=store,
            retry=RetryPolicy(max_attempts=3),
        )
        assert len(store) == 4
        monkeypatch.delenv("REPRO_CAMPAIGN_FAULT")
        warm = run_campaign(campaign, parallel=True, max_workers=2, store=store)
        assert warm.cache_hits == 4 and warm.cache_misses == 0

    def test_crash_without_retries_fails_structured_not_raising_midstream(
        self, tmp_path, monkeypatch
    ):
        campaign = sim_campaign()
        inject_fault(monkeypatch, tmp_path, "crash", "tiny:sim:0")
        executor = CampaignExecutor(campaign, parallel=True, max_workers=2, store=None)
        events = list(executor.execute())  # must not raise mid-stream
        failed = [event for event in events if isinstance(event, TaskFailed)]
        assert failed  # at least the crashed task is a structured failure
        for failure in failed:
            assert "worker crashed" in failure.error
        closing = events[-1]
        assert isinstance(closing, CampaignProgress)
        assert closing.done == closing.total == 4

    def test_crash_retry_events_name_the_pool_breakage(self, tmp_path, monkeypatch):
        campaign = sim_campaign()
        inject_fault(monkeypatch, tmp_path, "crash", "wide:sim:0")
        events = list(
            CampaignExecutor(
                campaign,
                parallel=True,
                max_workers=2,
                store=None,
                retry=RetryPolicy(max_attempts=3),
            ).execute()
        )
        retried = [event for event in events if isinstance(event, TaskRetried)]
        assert retried
        assert any("worker crashed" in event.error for event in retried)
        completed = [event for event in events if isinstance(event, TaskCompleted)]
        assert len(completed) == 4  # every task still completed


class TestInlineKillHarness:
    """With a timeout set, inline attempts run in a disposable child process
    so a hung evaluation can actually be reclaimed (``parallel=False`` used
    to mean the timeout was silently unenforceable)."""

    def campaign(self):
        return Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=("sim",)),
            )
        )

    def test_timeout_happy_path_is_bit_identical(self):
        reference = run_campaign(self.campaign(), store=None)
        harnessed = run_campaign(
            self.campaign(),
            store=None,
            retry=RetryPolicy(max_attempts=2, timeout_seconds=60.0),
        )
        assert harnessed.task_retries == 0
        # Records survive the pipe crossing unchanged.
        assert canonical(harnessed) == canonical(reference)

    def test_hung_inline_task_is_killed_and_retried(self, tmp_path, monkeypatch):
        reference = run_campaign(self.campaign(), store=None)
        marker = inject_fault(monkeypatch, tmp_path, "hang", "tiny:sim:0")
        recovered = run_campaign(
            self.campaign(),
            store=None,
            retry=RetryPolicy(max_attempts=2, timeout_seconds=1.5),
        )
        assert marker.exists()
        assert recovered.task_retries == 1
        assert not recovered.failures
        assert canonical(recovered) == canonical(reference)

    def test_inline_timeout_exhaustion_is_a_structured_failure(
        self, tmp_path, monkeypatch
    ):
        inject_fault(monkeypatch, tmp_path, "hang", "tiny:sim:0")
        result = run_campaign(
            self.campaign(),
            store=None,
            retry=RetryPolicy(max_attempts=1, timeout_seconds=1.0),
            strict=False,
        )
        assert len(result.failures) == 1
        assert "timed out" in result.failures[0].error
        assert "inline worker killed" in result.failures[0].error

    def test_crashed_harness_child_reports_and_recovers(self, tmp_path, monkeypatch):
        marker = inject_fault(monkeypatch, tmp_path, "crash", "tiny:sim:0")
        events = list(
            CampaignExecutor(
                self.campaign(),
                store=None,
                retry=RetryPolicy(max_attempts=2, timeout_seconds=60.0),
            ).execute()
        )
        assert marker.exists()
        retried = [event for event in events if isinstance(event, TaskRetried)]
        assert len(retried) == 1
        assert "inline harness process died" in retried[0].error
        assert sum(isinstance(event, TaskCompleted) for event in events) == 1

    def test_no_timeout_keeps_inline_tasks_in_process(self):
        import os

        class PidEngine:
            name = "pid"
            expensive = False

            def evaluate(self, scenario, lambda_g):
                record = api.AnalyticalEngine(name=self.name).evaluate(
                    scenario, lambda_g
                )
                self.pid = os.getpid()
                return record

        engine = PidEngine()
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=(engine,)),
            )
        )
        run_campaign(campaign, store=None, retry=RetryPolicy(max_attempts=2))
        assert engine.pid == os.getpid()  # no harness child without a timeout


class TestPooledTimeout:
    def test_hung_worker_is_killed_and_retried(self, tmp_path, monkeypatch):
        campaign = sim_campaign()
        reference = run_campaign(campaign, store=None)
        marker = inject_fault(monkeypatch, tmp_path, "hang", "tiny:sim:0")
        recovered = run_campaign(
            campaign,
            parallel=True,
            max_workers=2,
            store=None,
            retry=RetryPolicy(max_attempts=2, timeout_seconds=2.0),
        )
        assert marker.exists()
        assert recovered.task_retries >= 1
        assert not recovered.failures
        assert canonical(recovered) == canonical(reference)

    def test_timeout_exhaustion_is_a_structured_failure(self, tmp_path, monkeypatch):
        # The hang fires once per missing marker; deleting the marker in a
        # fresh directory and allowing one attempt makes the timeout terminal.
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=("sim",)),
                CampaignEntry(scenario=scenario_for(WIDE, traffic=(4e-4,)), engines=("sim",)),
            )
        )
        inject_fault(monkeypatch, tmp_path, "hang", "tiny:sim:0")
        result = run_campaign(
            campaign,
            parallel=True,
            max_workers=2,
            store=None,
            retry=RetryPolicy(max_attempts=1, timeout_seconds=1.5),
            strict=False,
        )
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.task.task_id == "tiny:sim:0"
        assert "timed out" in failure.error
        # The innocent scenario still completed despite the pool kill.
        total_records = sum(len(runset.records) for runset in result.runsets)
        assert total_records == 1
