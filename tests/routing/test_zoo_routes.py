"""Generalized up*/down* routing over the topology zoo.

Two layers of guarantees:

* **Property tests** (hypothesis): on randomized fanout trees and small
  tori, every route the :class:`GraphUpDownRouter` produces is *valid*
  (contiguous, starts with injection at the source, ends with ejection at
  the destination, every hop a channel of the topology) and *legal
  up*/down** (all UP hops strictly before all DOWN hops) and *cycle-free*
  (no switch visited twice).
* **Table equivalence**: the frozen integer tables of
  :class:`CompiledGraphRoutes` match the object-path router route for
  route on every zoo member, in both eager and lazy compilation modes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.compile import CompiledGraphRoutes, compile_graph_routes
from repro.routing.updown import GraphUpDownRouter
from repro.topology.fat_tree import ChannelKind
from repro.topology.zoo import (
    FanoutTree,
    GraphSwitch,
    Host,
    KAryFatTree,
    Torus2D,
    TopologySpec,
    build_topology,
    compile_graph,
)
from repro.utils.validation import ValidationError

ZOO_SPECS = [
    TopologySpec("fattree", {"k": 4}),
    TopologySpec("tree", {"depth": 2, "fanout": 4}),
    TopologySpec("tree", {"depth": 3, "fanout": 2}),
    TopologySpec("torus", {"rows": 3, "cols": 3}),
    TopologySpec("torus", {"rows": 4, "cols": 4}),
]


def _assert_valid_updown_route(topology, source, dest, route):
    channels = list(route)
    assert channels[0].kind == ChannelKind.INJECTION
    assert channels[0].source == Host(source)
    assert channels[0].target == GraphSwitch(topology.host_switch(source))
    assert channels[-1].kind == ChannelKind.EJECTION
    assert channels[-1].target == Host(dest)
    assert channels[-1].source == GraphSwitch(topology.host_switch(dest))
    # Contiguity: each hop departs where the previous one arrived.
    for previous, current in zip(channels, channels[1:]):
        assert previous.target == current.source
    # Legality: up* then down*, never up again after the first down.
    kinds = [channel.kind for channel in channels[1:-1]]
    assert all(kind in (ChannelKind.UP, ChannelKind.DOWN) for kind in kinds)
    if ChannelKind.DOWN in kinds:
        first_down = kinds.index(ChannelKind.DOWN)
        assert ChannelKind.UP not in kinds[first_down:]
    # Cycle-freedom: no switch is visited twice.
    visited = [channels[0].target] + [channel.target for channel in channels[1:-1]]
    assert len(visited) == len(set(visited))
    # Every channel belongs to the topology's compiled enumeration.
    ids = compile_graph(
        TopologySpec(topology.kind, _params_of(topology))
    ).channel_ids
    for channel in channels:
        assert channel in ids


def _params_of(topology):
    if isinstance(topology, KAryFatTree):
        return {"k": topology.k}
    if isinstance(topology, FanoutTree):
        return {"depth": topology.depth, "fanout": topology.fanout}
    if isinstance(topology, Torus2D):
        return {"rows": topology.rows, "cols": topology.cols}
    raise AssertionError(f"unknown family {type(topology).__name__}")


# --------------------------------------------------------------------------- #
# Exhaustive validity on every zoo member
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("spec", ZOO_SPECS, ids=lambda spec: spec.token)
def test_every_pair_routes_validly(spec):
    topology = build_topology(spec)
    router = GraphUpDownRouter(topology)
    for source in range(topology.num_nodes):
        for dest in range(topology.num_nodes):
            if source == dest:
                continue
            _assert_valid_updown_route(
                topology, source, dest, router.route(source, dest)
            )


def test_same_source_destination_rejected():
    router = GraphUpDownRouter(Torus2D(3, 3))
    with pytest.raises(ValidationError):
        router.route(2, 2)


def test_router_is_deterministic():
    topology = Torus2D(4, 4)
    a = GraphUpDownRouter(topology)
    b = GraphUpDownRouter(Torus2D(4, 4))
    for source, dest in ((0, 15), (7, 8), (3, 12)):
        assert list(a.route(source, dest)) == list(b.route(source, dest))


# --------------------------------------------------------------------------- #
# Property tests on randomized instances
# --------------------------------------------------------------------------- #
@settings(max_examples=30, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=3),
    fanout=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
def test_random_tree_routes_are_valid_and_cycle_free(depth, fanout, data):
    topology = FanoutTree(depth=depth, fanout=fanout)
    topology.validate()
    pairs = st.tuples(
        st.integers(0, topology.num_nodes - 1),
        st.integers(0, topology.num_nodes - 1),
    ).filter(lambda pair: pair[0] != pair[1])
    source, dest = data.draw(pairs)
    router = GraphUpDownRouter(topology)
    _assert_valid_updown_route(topology, source, dest, router.route(source, dest))


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=3, max_value=5),
    cols=st.integers(min_value=3, max_value=5),
    data=st.data(),
)
def test_random_torus_routes_are_valid_and_cycle_free(rows, cols, data):
    topology = Torus2D(rows, cols)
    topology.validate()
    pairs = st.tuples(
        st.integers(0, topology.num_nodes - 1),
        st.integers(0, topology.num_nodes - 1),
    ).filter(lambda pair: pair[0] != pair[1])
    source, dest = data.draw(pairs)
    router = GraphUpDownRouter(topology)
    _assert_valid_updown_route(topology, source, dest, router.route(source, dest))


# --------------------------------------------------------------------------- #
# Compiled integer tables == object-path router
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("spec", ZOO_SPECS, ids=lambda spec: spec.token)
def test_compiled_tables_match_router_route_for_route(spec):
    topology = build_topology(spec)
    graph = compile_graph(spec)
    router = GraphUpDownRouter(topology)
    tables = compile_graph_routes(spec)
    tables.ensure_complete()
    num_nodes = topology.num_nodes
    for source in range(num_nodes):
        for dest in range(num_nodes):
            pair = source * num_nodes + dest
            if source == dest:
                assert tables.full[pair] is None
                continue
            route = router.route(source, dest)
            expected = tuple(graph.channel_ids[channel] for channel in route)
            assert tables.full[pair] == expected
            assert tables.full_has_switch[pair] == any(
                not channel.kind.is_node_channel for channel in route
            )


@pytest.mark.parametrize("spec", ZOO_SPECS[:2], ids=lambda spec: spec.token)
def test_lazy_and_eager_tables_agree(spec):
    eager = CompiledGraphRoutes(spec, lazy=False)
    lazy = CompiledGraphRoutes(spec, lazy=True)
    assert lazy.compiled_rows == set()
    lazy.ensure_complete()
    assert lazy.full == eager.full
    assert lazy.full_has_switch == eager.full_has_switch
