"""Round-trip tests of the compiled route tables.

Every compiled route must decompile to the *exact* Channel sequence the
``UpDownRouter`` produces — the compiler is a representation change, never a
routing change — including for asymmetric heterogeneous organisations.
"""

import pytest

from repro.routing import UpDownRouter, compile_system_routes, compile_tree_routes
from repro.routing.compile import decompile, route_table_size
from repro.topology import MPortNTree, MultiClusterSpec, compile_system
from repro.topology.fat_tree import shared_tree

SHAPES = [(4, 1), (4, 2), (6, 2), (4, 3), (8, 2)]

#: Asymmetric heterogeneous organisations (mixed tree heights, including the
#: integration-test system and a taller m=4 mix like the N=544 row's groups).
HETERO_SPECS = [
    MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny"),
    MultiClusterSpec(m=4, cluster_heights=(3, 1, 2, 1), name="lopsided"),
]


class TestTreeRouteRoundTrip:
    @pytest.mark.parametrize("m,n", SHAPES)
    def test_full_routes_round_trip_for_every_ordered_pair(self, m, n):
        tree = shared_tree(m, n)
        router = UpDownRouter(tree)
        table = compile_tree_routes(m, n)
        pairs = 0
        for source in range(tree.num_nodes):
            for dest in range(tree.num_nodes):
                if source == dest:
                    assert table.full[source * tree.num_nodes + dest] is None
                    continue
                compiled = table.full[source * tree.num_nodes + dest]
                assert decompile(m, n, compiled) == router.route(source, dest).channels
                pairs += 1
        assert pairs == route_table_size(m, n)

    @pytest.mark.parametrize("m,n", SHAPES)
    def test_legs_round_trip_for_every_ordered_pair(self, m, n):
        tree = shared_tree(m, n)
        router = UpDownRouter(tree)
        table = compile_tree_routes(m, n)
        for source in range(tree.num_nodes):
            for other in range(tree.num_nodes):
                if source == other:
                    continue
                index = source * tree.num_nodes + other
                assert (
                    decompile(m, n, table.ascending[index])
                    == router.ascending_leg(source, other).channels
                )
                assert (
                    decompile(m, n, table.descending[index])
                    == router.descending_leg(source, other).channels
                )

    @pytest.mark.parametrize("m,n", SHAPES)
    def test_has_switch_flag_matches_the_route(self, m, n):
        tree = shared_tree(m, n)
        router = UpDownRouter(tree)
        table = compile_tree_routes(m, n)
        for source in range(tree.num_nodes):
            for dest in range(tree.num_nodes):
                if source == dest:
                    continue
                route = router.route(source, dest)
                expected = route.switch_channels > 0
                assert table.full_has_switch[source * tree.num_nodes + dest] == expected

    def test_tables_are_cached_per_shape(self):
        assert compile_tree_routes(4, 2) is compile_tree_routes(4, 2)


class TestSystemRouteRoundTrip:
    @pytest.mark.parametrize("spec", HETERO_SPECS, ids=lambda spec: spec.name)
    def test_intra_routes_round_trip_in_every_cluster(self, spec):
        core = compile_system(spec)
        routes = compile_system_routes(spec)
        for index, cluster in enumerate(core.system.clusters):
            router = UpDownRouter(cluster.icn1)
            offset = core.icn1_offsets[index]
            nodes = cluster.num_nodes
            for source in range(nodes):
                for dest in range(nodes):
                    if source == dest:
                        continue
                    compiled = routes.intra[index][source * nodes + dest]
                    local = tuple(cid - offset for cid in compiled)
                    assert (
                        decompile(spec.m, cluster.height, local)
                        == router.route(source, dest).channels
                    )

    @pytest.mark.parametrize("spec", HETERO_SPECS, ids=lambda spec: spec.name)
    def test_ecn1_legs_round_trip_in_every_cluster(self, spec):
        core = compile_system(spec)
        routes = compile_system_routes(spec)
        for index, cluster in enumerate(core.system.clusters):
            router = UpDownRouter(cluster.ecn1)
            offset = core.ecn1_offsets[index]
            nodes = cluster.num_nodes
            for source in range(nodes):
                for other in range(nodes):
                    if source == other:
                        continue
                    pair = source * nodes + other
                    ascent = tuple(cid - offset for cid in routes.ascend[index][pair])
                    descent = tuple(cid - offset for cid in routes.descend[index][pair])
                    assert (
                        decompile(spec.m, cluster.height, ascent)
                        == router.ascending_leg(source, other).channels
                    )
                    assert (
                        decompile(spec.m, cluster.height, descent)
                        == router.descending_leg(source, other).channels
                    )

    @pytest.mark.parametrize("spec", HETERO_SPECS, ids=lambda spec: spec.name)
    def test_icn2_routes_round_trip(self, spec):
        core = compile_system(spec)
        routes = compile_system_routes(spec)
        router = UpDownRouter(core.system.icn2)
        C = spec.num_clusters
        for source in range(C):
            for dest in range(C):
                if source == dest:
                    continue
                compiled = routes.icn2[source * C + dest]
                local = tuple(cid - core.icn2_offset for cid in compiled)
                assert (
                    decompile(spec.m, spec.icn2_height, local)
                    == router.route(source, dest).channels
                )

    def test_relay_slots_match_the_core(self):
        spec = HETERO_SPECS[0]
        core = compile_system(spec)
        routes = compile_system_routes(spec)
        for cluster in range(spec.num_clusters):
            assert routes.concentrator[cluster] == core.concentrator_slot(cluster)
            assert routes.dispatcher[cluster] == core.dispatcher_slot(cluster)

    def test_system_tables_are_cached_per_spec(self):
        spec = HETERO_SPECS[0]
        assert compile_system_routes(spec) is compile_system_routes(spec)


class TestLazyRouteTables:
    """Tall shapes compile per source row on demand (O(pairs used))."""

    def test_threshold_selects_lazy_mode(self):
        from repro.routing.compile import LAZY_NODE_THRESHOLD, CompiledTreeRoutes

        eager = CompiledTreeRoutes(4, 2)  # 8 nodes
        assert not eager.lazy
        assert shared_tree(8, 4).num_nodes >= LAZY_NODE_THRESHOLD
        lazy = CompiledTreeRoutes(8, 4)
        assert lazy.lazy
        assert lazy.compiled_rows == set()

    def test_single_pair_query_compiles_only_its_row(self):
        from repro.routing.compile import CompiledTreeRoutes

        table = CompiledTreeRoutes(8, 4)
        num_nodes = table.num_nodes
        table.ensure_pair(3, 100)
        assert table.compiled_rows == {3}
        # The whole source row exists; every other row is untouched.
        for other in range(num_nodes):
            entry = table.full[3 * num_nodes + other]
            assert (entry is None) == (other == 3)
        assert table.full[5 * num_nodes + 100] is None
        # A second query on the same row compiles nothing new.
        table.ensure_pair(3, 7)
        assert table.compiled_rows == {3}

    def test_lazy_tables_match_eager_tables(self):
        from repro.routing.compile import CompiledTreeRoutes

        eager = CompiledTreeRoutes(4, 2, lazy=False)
        lazy = CompiledTreeRoutes(4, 2, lazy=True)
        num_nodes = eager.num_nodes
        for source in range(num_nodes):
            for other in range(num_nodes):
                if source == other:
                    continue
                pair = source * num_nodes + other
                lazy.ensure_pair(source, other)
                assert lazy.full[pair] == eager.full[pair]
                assert lazy.full_has_switch[pair] == eager.full_has_switch[pair]
                assert lazy.ascending[pair] == eager.ascending[pair]
                assert lazy.descending[pair] == eager.descending[pair]

    def test_lazy_views_rebase_like_eager_system_tables(self):
        from repro.routing.compile import (
            CompiledTreeRoutes,
            LazyFlagTable,
            LazyRebasedTable,
            _rebase,
        )

        eager = CompiledTreeRoutes(4, 2, lazy=False)
        lazy_shape = CompiledTreeRoutes(4, 2, lazy=True)
        offset = 1000
        view = LazyRebasedTable(lazy_shape, lazy_shape.full, offset)
        flags = LazyFlagTable(lazy_shape)
        reference = _rebase(eager.full, offset)
        num_nodes = eager.num_nodes
        assert len(view) == len(reference)
        for pair in range(num_nodes * num_nodes):
            assert view[pair] == reference[pair]
            assert flags[pair] == eager.full_has_switch[pair]
        # Lazy fill happened row by row as the scan touched sources.
        assert lazy_shape.compiled_rows == set(range(num_nodes))
