"""Tests of nearest-common-ancestor helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import ascent_digits, common_prefix_length, nca_level, nca_switch
from repro.topology import MPortNTree
from repro.utils import ValidationError


class TestCommonPrefixLength:
    def test_identical(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 3)) == 3

    def test_partial(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 0)) == 2
        assert common_prefix_length((1, 2, 3), (0, 2, 3)) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            common_prefix_length((1, 2), (1, 2, 3))


class TestNcaLevel:
    def test_same_leaf(self):
        tree = MPortNTree(4, 2)
        # Nodes 0 and 1 share leaf switch: NCA at level 0.
        assert nca_level(tree, 0, 1) == 0

    def test_opposite_halves_meet_at_root(self):
        tree = MPortNTree(4, 3)
        assert nca_level(tree, 0, tree.num_nodes - 1) == tree.root_level

    def test_same_node_rejected(self):
        tree = MPortNTree(4, 2)
        with pytest.raises(ValidationError):
            nca_level(tree, 3, 3)

    @given(
        m=st.sampled_from([2, 4, 8]),
        n=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_level_is_distance_minus_one(self, m, n, data):
        tree = MPortNTree(m, n)
        a = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        b = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        if a == b:
            return
        assert nca_level(tree, a, b) == tree.nca_distance(a, b) - 1


class TestAscentDigits:
    def test_same_leaf_has_no_ascent(self):
        tree = MPortNTree(4, 2)
        assert ascent_digits(tree, 0, 1) == ()

    def test_digit_count_is_j_minus_one(self):
        tree = MPortNTree(4, 3)
        for dest in [1, 2, 5, 9, 15]:
            j = tree.nca_distance(0, dest)
            assert len(ascent_digits(tree, 0, dest)) == j - 1

    def test_digits_are_valid_up_ports(self):
        tree = MPortNTree(8, 3)
        for dest in range(1, tree.num_nodes, 7):
            for digit in ascent_digits(tree, 0, dest):
                assert 0 <= digit < tree.k

    def test_same_node_rejected(self):
        tree = MPortNTree(4, 2)
        with pytest.raises(ValidationError):
            ascent_digits(tree, 2, 2)

    def test_destination_based_spreading(self):
        # Two destinations in the same far leaf but with different intra-leaf
        # digits must ascend through different up ports (that is the load
        # balancing property).
        tree = MPortNTree(4, 2)
        dest_a = tree.node_index((3, 0))
        dest_b = tree.node_index((3, 1))
        assert ascent_digits(tree, 0, dest_a) != ascent_digits(tree, 0, dest_b)


class TestNcaSwitch:
    @given(
        m=st.sampled_from([2, 4, 8]),
        n=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_switch_is_common_ancestor_at_the_right_level(self, m, n, data):
        tree = MPortNTree(m, n)
        a = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        b = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        if a == b:
            return
        switch = nca_switch(tree, a, b)
        assert switch.level == nca_level(tree, a, b)
        assert tree.is_ancestor(switch, a)
        assert tree.is_ancestor(switch, b)

    def test_destinations_in_same_leaf_use_distinct_nca_switches(self):
        tree = MPortNTree(4, 3)
        # Destinations sharing a leaf switch but differing in the last digit
        # are reached through different root switches.
        dest_a = tree.node_index((3, 1, 0))
        dest_b = tree.node_index((3, 1, 1))
        switch_a = nca_switch(tree, 0, dest_a)
        switch_b = nca_switch(tree, 0, dest_b)
        assert switch_a.level == switch_b.level == tree.root_level
        assert switch_a != switch_b
