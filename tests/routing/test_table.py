"""Tests of routing tables and the traffic-balance accounting."""

import pytest

from repro.routing import RoutingTable, UpDownRouter, channel_load_histogram
from repro.routing.compile import compile_tree_routes, decompile
from repro.routing.table import load_by_kind_and_level
from repro.topology import ChannelKind, MPortNTree
from repro.utils import ValidationError


class TestRoutingTable:
    def test_routes_are_cached(self):
        table = RoutingTable(MPortNTree(4, 2))
        first = table.route(0, 5)
        second = table.route(0, 5)
        assert first is second
        assert len(table) == 1

    def test_cached_routes_equal_fresh_router_output(self):
        tree = MPortNTree(4, 2)
        table = RoutingTable(tree)
        router = UpDownRouter(tree)
        for source in range(tree.num_nodes):
            for dest in range(tree.num_nodes):
                if source != dest:
                    assert table.route(source, dest).channels == router.route(
                        source, dest
                    ).channels

    def test_precompute_is_idempotent(self):
        tree = MPortNTree(4, 2)
        table = RoutingTable(tree)
        table.precompute()
        cached = table.route(0, 5)
        table.precompute()
        assert table.route(0, 5) is cached
        assert len(table) == tree.num_nodes * (tree.num_nodes - 1)

    def test_table_agrees_with_the_compiled_route_tables(self):
        tree = MPortNTree(4, 3)
        table = RoutingTable(tree)
        compiled = compile_tree_routes(4, 3)
        for source, dest in ((0, 1), (0, 7), (3, 12), (15, 0)):
            ids = compiled.full[source * tree.num_nodes + dest]
            assert decompile(4, 3, ids) == table.route(source, dest).channels

    def test_self_route_rejected(self):
        table = RoutingTable(MPortNTree(4, 2))
        with pytest.raises(ValidationError):
            table.route(3, 3)

    def test_precompute_fills_all_ordered_pairs(self):
        tree = MPortNTree(4, 2)
        table = RoutingTable(tree)
        table.precompute()
        assert len(table) == tree.num_nodes * (tree.num_nodes - 1)

    def test_routes_iterator_yields_computed_routes(self):
        table = RoutingTable(MPortNTree(4, 2))
        table.route(0, 1)
        table.route(0, 2)
        assert len(list(table.routes())) == 2


class TestLoadBalance:
    @pytest.mark.parametrize("m,n", [(2, 2), (4, 2), (4, 3), (8, 2), (6, 2)])
    def test_loads_are_balanced_within_each_channel_class(self, m, n):
        summary = load_by_kind_and_level(MPortNTree(m, n))
        for (kind, level), (low, high) in summary.items():
            assert low == high, f"unbalanced {kind} channels at level {level}"

    def test_injection_load_equals_destinations_per_source(self):
        tree = MPortNTree(4, 2)
        loads = channel_load_histogram(tree)
        injection_loads = [
            load for channel, load in loads.items() if channel.kind == ChannelKind.INJECTION
        ]
        assert set(injection_loads) == {tree.num_nodes - 1}

    def test_every_pair_route_is_counted(self):
        tree = MPortNTree(4, 2)
        loads = channel_load_histogram(tree)
        total_crossings = sum(loads.values())
        # Total crossings equal the sum of route lengths over all ordered
        # pairs, which equals mean distance * number of pairs.
        from repro.topology import distance_histogram

        expected = sum(d * count for d, count in distance_histogram(tree).items())
        assert total_crossings == expected

    def test_up_channel_loads_smaller_than_node_channel_loads(self):
        # Up channels only carry traffic leaving the subtree, so their load
        # is below the injection channels' load.
        tree = MPortNTree(4, 3)
        summary = load_by_kind_and_level(tree)
        assert summary[("up", 0)][0] < summary[("injection", 0)][0]
        # And deeper levels carry less than lower levels.
        assert summary[("up", 1)][0] < summary[("up", 0)][0]
