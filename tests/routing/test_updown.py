"""Tests of the deterministic Up*/Down* router and the Route container."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import Route, UpDownRouter
from repro.topology import ChannelKind, FatTreeNode, MPortNTree
from repro.topology.fat_tree import Channel
from repro.utils import ValidationError

SMALL_TREES = [(2, 1), (2, 3), (4, 1), (4, 2), (4, 3), (8, 2)]


def _router(m, n):
    return UpDownRouter(MPortNTree(m, n))


class TestFullRoute:
    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_route_length_matches_nca_distance(self, m, n):
        router = _router(m, n)
        tree = router.tree
        step = max(1, tree.num_nodes // 6)
        for source in range(0, tree.num_nodes, step):
            for dest in range(tree.num_nodes):
                if source == dest:
                    continue
                route = router.route(source, dest)
                assert route.num_links == tree.distance(source, dest)

    def test_route_starts_and_ends_at_the_right_nodes(self):
        router = _router(4, 3)
        route = router.route(3, 13)
        assert route.source == FatTreeNode(3)
        assert route.target == FatTreeNode(13)

    def test_route_structure_injection_up_down_ejection(self):
        router = _router(4, 3)
        route = router.route(0, router.tree.num_nodes - 1)
        kinds = [channel.kind for channel in route]
        assert kinds[0] == ChannelKind.INJECTION
        assert kinds[-1] == ChannelKind.EJECTION
        ups = [k for k in kinds if k == ChannelKind.UP]
        downs = [k for k in kinds if k == ChannelKind.DOWN]
        assert len(ups) == len(downs) == router.tree.n - 1
        # Once the route starts descending it never goes up again.
        first_down = kinds.index(ChannelKind.DOWN) if downs else len(kinds) - 1
        assert ChannelKind.UP not in kinds[first_down:]

    def test_ascending_and_descending_counts_are_equal(self):
        router = _router(8, 2)
        for dest in range(1, 32, 5):
            route = router.route(0, dest)
            assert route.num_ascending == route.num_descending

    def test_same_source_destination_rejected(self):
        router = _router(4, 2)
        with pytest.raises(ValidationError):
            router.route(1, 1)

    def test_out_of_range_node_rejected(self):
        router = _router(4, 2)
        with pytest.raises(ValidationError):
            router.route(0, 99)

    def test_route_is_deterministic(self):
        router = _router(4, 3)
        assert router.route(5, 14) == router.route(5, 14)

    def test_highest_level_is_nca_level(self):
        router = _router(4, 3)
        tree = router.tree
        for dest in [1, 3, 9, 15]:
            route = router.route(0, dest)
            assert route.highest_level == tree.nca_distance(0, dest) - 1

    @given(
        m=st.sampled_from([2, 4, 8]),
        n=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_route_channels_exist_in_topology(self, m, n, data):
        tree = MPortNTree(m, n)
        router = UpDownRouter(tree)
        source = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        dest = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        if source == dest:
            return
        all_channels = set(tree.channels())
        for channel in router.route(source, dest):
            assert channel in all_channels

    @given(
        m=st.sampled_from([4, 8]),
        n=st.integers(min_value=2, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_node_channel_count_is_always_two(self, m, n, data):
        tree = MPortNTree(m, n)
        router = UpDownRouter(tree)
        source = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        dest = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        if source == dest:
            return
        route = router.route(source, dest)
        assert route.node_channels == 2
        assert route.switch_channels == route.num_links - 2


class TestLegs:
    def test_ascending_leg_has_only_injection_and_up(self):
        router = _router(4, 3)
        leg = router.ascending_leg(0, 15)
        kinds = {channel.kind for channel in leg}
        assert kinds <= {ChannelKind.INJECTION, ChannelKind.UP}
        assert leg.num_links == router.tree.nca_distance(0, 15)

    def test_descending_leg_has_only_down_and_ejection(self):
        router = _router(4, 3)
        leg = router.descending_leg(0, 15)
        kinds = {channel.kind for channel in leg}
        assert kinds <= {ChannelKind.DOWN, ChannelKind.EJECTION}
        assert leg.num_links == router.tree.nca_distance(0, 15)

    def test_descending_leg_reaches_destination(self):
        router = _router(8, 2)
        leg = router.descending_leg(3, 20)
        assert leg.target == FatTreeNode(20)

    def test_legs_reject_equal_endpoints(self):
        router = _router(4, 2)
        with pytest.raises(ValidationError):
            router.ascending_leg(2, 2)
        with pytest.raises(ValidationError):
            router.descending_leg(2, 2)

    def test_leg_lengths_cover_one_to_n(self):
        router = _router(4, 3)
        tree = router.tree
        lengths = {router.ascending_leg(0, peer).num_links for peer in range(1, tree.num_nodes)}
        assert lengths == set(range(1, tree.n + 1))

    def test_full_route_equals_legs_joined_at_nca(self):
        # For a full intra-tree journey the ascending leg toward the
        # destination plus the descending leg from the source-as-peer form
        # exactly the full route.
        router = _router(4, 3)
        source, dest = 2, 13
        full = router.route(source, dest)
        up = router.ascending_leg(source, dest)
        down = router.descending_leg(source, dest)
        assert up.concatenate(down).channels == full.channels


class TestRouteContainer:
    def test_non_contiguous_route_rejected(self):
        tree = MPortNTree(4, 2)
        node_a, node_b = tree.node(0), tree.node(5)
        leaf_a, leaf_b = tree.leaf_switch_of(node_a), tree.leaf_switch_of(node_b)
        with pytest.raises(ValidationError):
            Route(
                tree.name,
                (
                    Channel(node_a, leaf_a, ChannelKind.INJECTION),
                    Channel(leaf_b, node_b, ChannelKind.EJECTION),
                ),
            )

    def test_empty_route_properties_raise(self):
        route = Route("t", ())
        with pytest.raises(ValidationError):
            _ = route.source
        with pytest.raises(ValidationError):
            _ = route.target
        with pytest.raises(ValidationError):
            _ = route.highest_level

    def test_len_and_iter(self):
        router = _router(4, 2)
        route = router.route(0, 7)
        assert len(route) == route.num_links
        assert list(iter(route)) == list(route.channels)
