"""Tests of the command-line interface (model-only paths for speed)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._subparsers._group_actions  # noqa: SLF001 - argparse introspection
        }
        choices = set(actions["command"].choices)
        assert {"table1", "fig3", "fig4", "sweep", "saturation", "ablation", "report"} <= choices

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "1120" in output and "544" in output

    def test_saturation(self, capsys):
        assert main(["saturation", "--nodes", "544"]) == 0
        output = capsys.readouterr().out
        assert "saturation offered traffic" in output

    def test_fig4_model_only(self, capsys):
        assert main(["fig4", "--no-sim", "--points", "3"]) == 0
        output = capsys.readouterr().out
        assert "Lm=256" in output and "Lm=512" in output

    def test_fig3_model_only_with_csv(self, tmp_path, capsys):
        assert main(["fig3", "--no-sim", "--points", "3", "--csv-dir", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("fig3_*.csv"))) == 4
        assert "wrote:" in capsys.readouterr().out

    def test_sweep_model_only(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep",
                "--ports",
                "4",
                "--heights",
                "1",
                "2",
                "2",
                "1",
                "--max-traffic",
                "1e-3",
                "--points",
                "3",
                "--no-sim",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert "model_latency" in capsys.readouterr().out

    def test_sweep_with_quick_simulation(self, capsys):
        code = main(
            [
                "sweep",
                "--ports",
                "4",
                "--heights",
                "1",
                "1",
                "1",
                "1",
                "--max-traffic",
                "4e-4",
                "--points",
                "2",
                "--budget",
                "quick",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sim_latency" in output

    def test_sweep_invalid_organisation_reports_error(self, capsys):
        code = main(
            [
                "sweep",
                "--ports",
                "4",
                "--heights",
                "1",
                "1",
                "1",
                "--max-traffic",
                "1e-3",
                "--no-sim",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_ablation(self, capsys):
        assert main(["ablation", "--nodes", "544", "--points", "3"]) == 0
        output = capsys.readouterr().out
        assert "equal-size approximation" in output
        assert "zero-variance" in output

    def test_report_model_only_to_file(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.generated.md"
        assert main(["report", "--no-sim", "--points", "3", "--output", str(target)]) == 0
        assert target.exists()
        content = target.read_text()
        assert "Figure 3" in content and "Figure 4" in content
