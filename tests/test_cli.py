"""Tests of the command-line interface (model-only paths for speed)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._subparsers._group_actions  # noqa: SLF001 - argparse introspection
        }
        choices = set(actions["command"].choices)
        assert {
            "run",
            "table1",
            "fig3",
            "fig4",
            "sweep",
            "saturation",
            "ablation",
            "report",
            "bench",
            "campaign",
            "serve",
        } <= choices

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "1120" in output and "544" in output

    def test_saturation(self, capsys):
        assert main(["saturation", "--nodes", "544"]) == 0
        output = capsys.readouterr().out
        assert "saturation offered traffic" in output

    def test_fig4_model_only(self, capsys):
        assert main(["fig4", "--no-sim", "--points", "3"]) == 0
        output = capsys.readouterr().out
        assert "Lm=256" in output and "Lm=512" in output

    def test_fig3_model_only_with_csv(self, tmp_path, capsys):
        assert main(["fig3", "--no-sim", "--points", "3", "--csv-dir", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("fig3_*.csv"))) == 4
        assert "wrote:" in capsys.readouterr().out

    def test_sweep_model_only(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep",
                "--ports",
                "4",
                "--heights",
                "1",
                "2",
                "2",
                "1",
                "--max-traffic",
                "1e-3",
                "--points",
                "3",
                "--no-sim",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert "model_latency" in capsys.readouterr().out

    def test_sweep_with_quick_simulation(self, capsys):
        code = main(
            [
                "sweep",
                "--ports",
                "4",
                "--heights",
                "1",
                "1",
                "1",
                "1",
                "--max-traffic",
                "4e-4",
                "--points",
                "2",
                "--budget",
                "quick",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sim_latency" in output

    def test_sweep_invalid_organisation_reports_error(self, capsys):
        code = main(
            [
                "sweep",
                "--ports",
                "4",
                "--heights",
                "1",
                "1",
                "1",
                "--max-traffic",
                "1e-3",
                "--no-sim",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_ablation(self, capsys):
        assert main(["ablation", "--nodes", "544", "--points", "3"]) == 0
        output = capsys.readouterr().out
        assert "equal-size approximation" in output
        assert "zero-variance" in output

    def test_report_model_only_to_file(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.generated.md"
        assert main(["report", "--no-sim", "--points", "3", "--output", str(target)]) == 0
        assert target.exists()
        content = target.read_text()
        assert "Figure 3" in content and "Figure 4" in content


class TestRunCommand:
    def test_list_scenarios(self, capsys):
        assert main(["run", "--list"]) == 0
        output = capsys.readouterr().out
        for name in ("fig3", "fig4", "table1/1120", "table1/544", "hotspot", "heterogeneous"):
            assert name in output

    def test_run_requires_a_scenario(self, capsys):
        assert main(["run"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_scenario_reports_error(self, capsys):
        assert main(["run", "no-such-scenario"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_malformed_scenario_file_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"bogus": 1}')
        assert main(["run", str(bad)]) == 2
        assert "invalid scenario file" in capsys.readouterr().err

    def test_run_named_scenario_model_only(self, capsys):
        assert main(["run", "heterogeneous", "--engines", "model", "--points", "3"]) == 0
        output = capsys.readouterr().out
        assert "model_latency" in output
        assert "heterogeneous" in output

    def test_run_save_scenario_then_replay_from_file(self, tmp_path, capsys):
        saved = tmp_path / "scenario.json"
        assert (
            main(
                [
                    "run",
                    "heterogeneous",
                    "--engines",
                    "model",
                    "--points",
                    "2",
                    "--save-scenario",
                    str(saved),
                ]
            )
            == 0
        )
        assert saved.exists()
        capsys.readouterr()
        assert main(["run", str(saved), "--engines", "model"]) == 0
        assert "model_latency" in capsys.readouterr().out

    def test_run_replay_keeps_the_saved_sim_config(self, tmp_path, capsys):
        """A replayed scenario file keeps its saved budget/seed unless overridden."""
        from repro import api
        from repro.cli import _resolve_run_scenario, build_parser

        saved = tmp_path / "paper.json"
        api.scenario("heterogeneous", points=2, budget="paper", seed=7).to_json(saved)
        args = build_parser().parse_args(["run", str(saved)])
        scenario = _resolve_run_scenario(args)
        assert scenario.sim.measured_messages == 100_000
        assert scenario.sim.seed == 7
        # Explicit flags still override the file for replays.
        args = build_parser().parse_args(["run", str(saved), "--budget", "quick"])
        assert _resolve_run_scenario(args).sim.measured_messages == 1_500
        assert _resolve_run_scenario(args).sim.seed == 7
        args = build_parser().parse_args(["run", str(saved), "--seed", "11"])
        replayed = _resolve_run_scenario(args)
        assert replayed.sim.measured_messages == 100_000
        assert replayed.sim.seed == 11

    def test_run_with_simulation_writes_outputs(self, tmp_path, capsys):
        csv_path = tmp_path / "run.csv"
        json_path = tmp_path / "run.json"
        code = main(
            [
                "run",
                "heterogeneous",
                "--points",
                "2",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        assert csv_path.exists() and json_path.exists()
        output = capsys.readouterr().out
        assert "sim_latency" in output
        assert "mean |relative error|" in output

    def test_bench_smoke_writes_artifact(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_simulator.json"
        assert main(["bench", "--smoke", "--points", "2", "--output", str(out_path)]) == 0
        output = capsys.readouterr().out
        assert "simulator benchmark" in output
        assert "smoke" in output
        payload = json.loads(out_path.read_text())
        assert payload["smoke"] is True
        assert set(payload["scenarios"]) == {"fig3", "fig4", "heterogeneous"}
        for entry in payload["scenarios"].values():
            assert entry["messages_per_second"] > 0
            assert entry["measured_messages"] == 2 * 200

    def test_bench_with_baseline_reports_speedup(self, tmp_path, capsys):
        import json

        baseline_path = tmp_path / "baseline.json"
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--points", "2", "--output", str(baseline_path)]) == 0
        capsys.readouterr()
        code = main(
            [
                "bench",
                "--smoke",
                "--points",
                "2",
                "--baseline",
                str(baseline_path),
                "--baseline-label",
                "previous",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        assert "x vs previous" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert set(payload["speedup"]) == {"fig3", "fig4", "heterogeneous"}
        assert payload["baseline"]["label"] == "previous"

    def test_bench_missing_baseline_reports_error(self, tmp_path, capsys):
        code = main(
            ["bench", "--smoke", "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err


class TestCampaignCommand:
    @staticmethod
    def _tiny_plan(tmp_path):
        """A two-scenario plan small enough for a unit test."""
        import json

        plan = {
            "name": "cli-test",
            "entries": [
                {"scenario": "heterogeneous", "points": 2, "budget": "quick", "seed": 0},
                {
                    "scenario": "heterogeneous",
                    "points": 2,
                    "budget": "quick",
                    "seed": 1,
                    "label": "reseeded",
                    "engines": ["model", "sim"],
                },
            ],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return path

    def test_example_writes_a_runnable_plan(self, tmp_path, capsys):
        import json

        plan_path = tmp_path / "plan.json"
        assert main(["campaign", "example", str(plan_path), "--points", "2"]) == 0
        assert plan_path.exists()
        plan = json.loads(plan_path.read_text())
        assert [entry["scenario"] for entry in plan["entries"]] == [
            "heterogeneous",
            "hotspot",
        ]
        assert "campaign run" in capsys.readouterr().out

    def test_run_cold_then_warm_hits_the_store(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        plan = self._tiny_plan(tmp_path)
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        assert main(["campaign", "run", str(plan), "--json", str(cold_json)]) == 0
        cold_out = capsys.readouterr().out
        assert "0 cached, 8 computed" in cold_out
        assert (
            main(
                ["campaign", "run", str(plan), "--progress", "--json", str(warm_json)]
            )
            == 0
        )
        warm_out = capsys.readouterr().out
        assert "8 cached, 0 computed" in warm_out
        assert "(cache" in warm_out  # per-task streaming lines
        cold = json.loads(cold_json.read_text())
        warm = json.loads(warm_json.read_text())
        assert json.dumps(cold["runsets"], sort_keys=True) == json.dumps(
            warm["runsets"], sort_keys=True
        )
        assert warm["execution"]["cache_hits"] == warm["execution"]["tasks"] == 8

    def test_run_no_store_computes_fresh(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        plan = self._tiny_plan(tmp_path)
        assert main(["campaign", "run", str(plan), "--no-store"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", str(plan), "--no-store"]) == 0
        assert "0 cached, 8 computed" in capsys.readouterr().out

    def test_run_missing_plan_reports_error(self, tmp_path, capsys):
        assert main(["campaign", "run", str(tmp_path / "nope.json")]) == 2
        assert "campaign plan not found" in capsys.readouterr().err

    def test_run_malformed_plan_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"entries": [{"scenario": 12}]}')
        assert main(["campaign", "run", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_store_subcommand_reports_clears_and_prunes(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        plan = self._tiny_plan(tmp_path)
        assert main(["campaign", "run", str(plan)]) == 0
        capsys.readouterr()
        assert main(["campaign", "store"]) == 0
        assert "8 records" in capsys.readouterr().out
        assert main(["campaign", "store", "--prune", "3"]) == 0
        out = capsys.readouterr().out
        assert "pruned 5 records" in out
        assert "3 records" in out
        assert main(["campaign", "store", "--clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 3 records" in out
        assert "0 records" in out

    def test_store_explicit_path_beats_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert main(["campaign", "store", "--store", str(tmp_path / "explicit")]) == 0
        assert "explicit" in capsys.readouterr().out

    def test_progress_bar_renders_per_scenario_counts(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        plan = self._tiny_plan(tmp_path)
        assert main(["campaign", "run", str(plan), "--progress=bar"]) == 0
        out = capsys.readouterr().out
        assert "[" in out and "#" in out  # the bar itself
        assert "heterogeneous 4/4" in out  # per-scenario completion
        assert "reseeded 4/4" in out
        assert "8/8" in out  # campaign aggregate

    def test_store_migrate_round_trip_keeps_cache_hits(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        plan = self._tiny_plan(tmp_path)
        assert main(["campaign", "run", str(plan), "--json", str(tmp_path / "cold.json")]) == 0
        capsys.readouterr()
        assert main(["campaign", "store", "--migrate", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "migrated 8 records" in out and "[sqlite]" in out
        assert (tmp_path / "store" / "store.db").exists()
        assert main(["campaign", "run", str(plan), "--json", str(tmp_path / "warm.json")]) == 0
        assert "8 cached, 0 computed" in capsys.readouterr().out
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert json.dumps(cold["runsets"], sort_keys=True) == json.dumps(
            warm["runsets"], sort_keys=True
        )
        assert warm["execution"]["store_backend"] == "sqlite"
        assert main(["campaign", "store", "--migrate", "directory"]) == 0
        out = capsys.readouterr().out
        assert "migrated 8 records" in out and "[directory]" in out
        assert not (tmp_path / "store" / "store.db").exists()

    def test_run_survives_injected_worker_crash(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        plan = self._tiny_plan(tmp_path)
        marker = tmp_path / "crash-marker"
        monkeypatch.setenv(
            "REPRO_CAMPAIGN_FAULT",
            json.dumps(
                {"kind": "crash", "task": "heterogeneous:sim:0", "marker": str(marker)}
            ),
        )
        result_json = tmp_path / "crashed.json"
        assert (
            main(
                [
                    "campaign", "run", str(plan),
                    "--parallel", "--workers", "2",
                    "--retries", "3", "--progress",
                    "--json", str(result_json),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert marker.exists()
        assert "[retry]" in out and "worker crashed" in out
        assert "retries" in out
        execution = json.loads(result_json.read_text())["execution"]
        assert execution["task_retries"] >= 1
        assert execution["failures"] == []
        assert execution["cache_misses"] == 8

    def test_run_exhausted_retries_exit_code_and_allow_failures(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        plan = self._tiny_plan(tmp_path)

        def arm_fault(marker_name):
            monkeypatch.setenv(
                "REPRO_CAMPAIGN_FAULT",
                json.dumps(
                    {
                        "kind": "crash",
                        "task": "heterogeneous:sim:0",
                        "marker": str(tmp_path / marker_name),
                    }
                ),
            )

        # Strict (the default): exhausted retries exit 3 with the failure list.
        arm_fault("strict-marker")
        assert (
            main(
                ["campaign", "run", str(plan), "--no-store",
                 "--parallel", "--workers", "2"]
            )
            == 3
        )
        err = capsys.readouterr().err
        assert "failed after exhausting retries" in err
        # --allow-failures: exit 0, partial tables, failures in the JSON.
        arm_fault("lenient-marker")
        result_json = tmp_path / "partial.json"
        assert (
            main(
                ["campaign", "run", str(plan), "--no-store",
                 "--parallel", "--workers", "2",
                 "--allow-failures", "--json", str(result_json)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "PARTIAL" in out and "FAILED" in out
        payload = json.loads(result_json.read_text())
        assert payload["execution"]["failures"]
        for failure in payload["execution"]["failures"]:
            assert failure["attempts"] == 1



class TestServeCommand:
    """Parser-level coverage; the served byte stream is exercised end to end
    in tests/service/test_server.py (main(["serve"]) would block)."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.workers is None
        assert args.retries == 1
        assert args.no_store is False
        assert args.no_shared_memory is False
        assert args.store is None and args.backend is None

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--host", "0.0.0.0",
                "--port", "0",
                "--workers", "4",
                "--no-store",
                "--retries", "3",
                "--no-shared-memory",
            ]
        )
        assert args.port == 0 and args.workers == 4
        assert args.retries == 3
        assert args.no_store and args.no_shared_memory

    def test_serve_rejects_a_zero_retry_budget(self, capsys):
        assert main(["serve", "--retries", "0"]) == 2
        assert "retries" in capsys.readouterr().err
