"""Tests of the parameter-validation helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import ValidationError
from repro.utils.validation import (
    check_even,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_power_of,
    check_probability,
    check_same_length,
    check_sequence_of_positive_ints,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5) == 0.5
        assert check_positive(3) == 3.0

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad, "rate")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "3", None, True])
    def test_rejects_non_finite_and_non_numbers(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad)

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="lambda_g"):
            check_positive(-1, "lambda_g")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 5])
    def test_rejects_outside_unit_interval(self, bad):
        with pytest.raises(ValidationError):
            check_probability(bad)


class TestCheckPositiveInt:
    def test_accepts_int_and_integral_float(self):
        assert check_positive_int(4) == 4
        assert check_positive_int(4.0) == 4

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "4", True])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValidationError):
            check_positive_int(bad)


class TestCheckEven:
    def test_accepts_even(self):
        assert check_even(8) == 8
        assert check_even(0) == 0

    def test_rejects_odd(self):
        with pytest.raises(ValidationError):
            check_even(7, "m")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, 1.0, 2.0) == 1.0
        assert check_in_range(2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range(1.0, 1.0, 2.0, inclusive=False)
        assert check_in_range(1.5, 1.0, 2.0, inclusive=False) == 1.5

    def test_outside_raises(self):
        with pytest.raises(ValidationError):
            check_in_range(3.0, 0.0, 2.0, "utilisation")


class TestCheckPowerOf:
    @pytest.mark.parametrize("value", [1, 2, 4, 64])
    def test_accepts_powers_of_two(self, value):
        assert check_power_of(value, 2) == value

    @pytest.mark.parametrize("bad", [3, 6, 12, 0, -4])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValidationError):
            check_power_of(bad, 2)

    def test_rejects_bad_base(self):
        with pytest.raises(ValidationError):
            check_power_of(4, 1)

    @given(st.integers(min_value=0, max_value=12))
    def test_all_powers_of_three_accepted(self, exponent):
        assert check_power_of(3**exponent, 3) == 3**exponent


class TestSequences:
    def test_sequence_of_positive_ints(self):
        assert check_sequence_of_positive_ints([1, 2, 3]) == (1, 2, 3)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValidationError):
            check_sequence_of_positive_ints([], "heights")

    def test_sequence_with_bad_member_rejected(self):
        with pytest.raises(ValidationError, match=r"heights\[1\]"):
            check_sequence_of_positive_ints([1, 0, 3], "heights")

    def test_same_length_ok(self):
        check_same_length([1, 2], ["a", "b"])

    def test_same_length_mismatch(self):
        with pytest.raises(ValidationError):
            check_same_length([1], [1, 2], "sizes", "heights")


@given(st.floats(allow_nan=False, allow_infinity=False, min_value=1e-12, max_value=1e12))
def test_check_positive_round_trips_value(value):
    assert check_positive(value) == value


@given(st.floats())
def test_check_positive_never_lets_nan_through(value):
    if math.isnan(value) or math.isinf(value) or value <= 0:
        with pytest.raises(ValidationError):
            check_positive(value)
    else:
        assert check_positive(value) == value
