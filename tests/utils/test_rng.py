"""Tests of deterministic random-stream management."""

import numpy as np
import pytest

from repro.utils import RandomStreams, ValidationError, spawn_rng


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(42).random(10)
        b = spawn_rng(42).random(10)
        assert np.array_equal(a, b)

    def test_different_indices_give_different_streams(self):
        a = spawn_rng(42, index=0).random(10)
        b = spawn_rng(42, index=1).random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_streams(self):
        a = spawn_rng(1).random(10)
        b = spawn_rng(2).random(10)
        assert not np.array_equal(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rng(42, index=-1)


class TestRandomStreams:
    def test_same_key_returns_same_generator_object(self):
        streams = RandomStreams(seed=7)
        assert streams.get("arrivals", 3) is streams.get("arrivals", 3)

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=7).get("arrivals", 3).random(5)
        b = RandomStreams(seed=7).get("arrivals", 3).random(5)
        assert np.array_equal(a, b)

    def test_different_keys_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.get("arrivals", 0).random(100)
        b = streams.get("destinations", 0).random(100)
        assert not np.array_equal(a, b)

    def test_different_node_indices_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.get("arrivals", 0).random(100)
        b = streams.get("arrivals", 1).random(100)
        assert not np.array_equal(a, b)

    def test_empty_key_rejected(self):
        streams = RandomStreams(seed=7)
        with pytest.raises(ValidationError):
            streams.get()

    def test_seed_property_and_repr(self):
        streams = RandomStreams(seed=11)
        assert streams.seed == 11
        streams.get("x")
        assert "seed=11" in repr(streams)

    def test_fresh_returns_generator(self):
        streams = RandomStreams(seed=3)
        rng = streams.fresh()
        assert isinstance(rng, np.random.Generator)

    def test_none_seed_supported(self):
        streams = RandomStreams(seed=None)
        values = streams.get("anything").random(3)
        assert values.shape == (3,)


class TestPooledStreams:
    """The stream pool: shared generator objects reset from state snapshots."""

    def test_pooled_draws_are_bit_identical_to_unpooled(self):
        from repro.utils.rng import clear_stream_pool

        clear_stream_pool()
        reference = RandomStreams(seed=7).get("arrivals", 3).random(16)
        pooled_cold = RandomStreams(seed=7, pooled=True).get("arrivals", 3).random(16)
        pooled_warm = RandomStreams(seed=7, pooled=True).get("arrivals", 3).random(16)
        assert np.array_equal(reference, pooled_cold)
        assert np.array_equal(reference, pooled_warm)

    def test_pooled_instances_share_generator_objects(self):
        from repro.utils.rng import clear_stream_pool

        clear_stream_pool()
        first = RandomStreams(seed=9, pooled=True).get("x", 0)
        second = RandomStreams(seed=9, pooled=True).get("x", 0)
        assert first is second

    def test_pool_reset_restores_the_initial_state_every_run(self):
        from repro.utils.rng import clear_stream_pool

        clear_stream_pool()
        run1 = RandomStreams(seed=5, pooled=True).get("arrivals", 0)
        draws1 = run1.exponential(2.0, 8)
        run2 = RandomStreams(seed=5, pooled=True).get("arrivals", 0)
        draws2 = run2.exponential(2.0, 8)
        assert np.array_equal(draws1, draws2)

    def test_unpooled_instances_never_share_objects(self):
        a = RandomStreams(seed=9).get("x", 0)
        b = RandomStreams(seed=9).get("x", 0)
        assert a is not b

    def test_none_seed_disables_pooling(self):
        streams = RandomStreams(seed=None, pooled=True)
        assert not streams.pooled
        values = streams.get("anything").random(3)
        assert values.shape == (3,)

    def test_different_seeds_have_separate_pool_entries(self):
        from repro.utils.rng import clear_stream_pool

        clear_stream_pool()
        a = RandomStreams(seed=1, pooled=True).get("x").random(8)
        b = RandomStreams(seed=2, pooled=True).get("x").random(8)
        assert not np.array_equal(a, b)
