"""Tests of deterministic random-stream management."""

import numpy as np
import pytest

from repro.utils import RandomStreams, ValidationError, spawn_rng


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(42).random(10)
        b = spawn_rng(42).random(10)
        assert np.array_equal(a, b)

    def test_different_indices_give_different_streams(self):
        a = spawn_rng(42, index=0).random(10)
        b = spawn_rng(42, index=1).random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_streams(self):
        a = spawn_rng(1).random(10)
        b = spawn_rng(2).random(10)
        assert not np.array_equal(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rng(42, index=-1)


class TestRandomStreams:
    def test_same_key_returns_same_generator_object(self):
        streams = RandomStreams(seed=7)
        assert streams.get("arrivals", 3) is streams.get("arrivals", 3)

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=7).get("arrivals", 3).random(5)
        b = RandomStreams(seed=7).get("arrivals", 3).random(5)
        assert np.array_equal(a, b)

    def test_different_keys_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.get("arrivals", 0).random(100)
        b = streams.get("destinations", 0).random(100)
        assert not np.array_equal(a, b)

    def test_different_node_indices_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.get("arrivals", 0).random(100)
        b = streams.get("arrivals", 1).random(100)
        assert not np.array_equal(a, b)

    def test_empty_key_rejected(self):
        streams = RandomStreams(seed=7)
        with pytest.raises(ValidationError):
            streams.get()

    def test_seed_property_and_repr(self):
        streams = RandomStreams(seed=11)
        assert streams.seed == 11
        streams.get("x")
        assert "seed=11" in repr(streams)

    def test_fresh_returns_generator(self):
        streams = RandomStreams(seed=3)
        rng = streams.fresh()
        assert isinstance(rng, np.random.Generator)

    def test_none_seed_supported(self):
        streams = RandomStreams(seed=None)
        values = streams.get("anything").random(3)
        assert values.shape == (3,)
