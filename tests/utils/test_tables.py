"""Tests of the table/CSV rendering helpers."""

import pytest

from repro.utils import ResultTable, ValidationError, format_csv, format_table, write_csv


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert len(lines) == 4  # header + separator + 2 rows

    def test_title_is_prepended(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_floats_are_formatted_with_precision(self):
        text = format_table(["v"], [[1.23456789]], precision=3)
        assert "1.23" in text and "1.2345" not in text

    def test_mismatched_row_raises(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_columns_are_aligned(self):
        text = format_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = text.splitlines()
        # All rows have the separator at the same position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1


class TestFormatCsv:
    def test_header_and_rows(self):
        csv_text = format_csv(["a", "b"], [[1, 2]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_write_csv_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "nested" / "out.csv"
        path = write_csv(target, ["a"], [[1], [2]])
        assert path.exists()
        assert path.read_text().strip().splitlines() == ["a", "1", "2"]


class TestResultTable:
    def test_add_row_and_column_access(self):
        table = ResultTable(headers=["traffic", "latency"])
        table.add_row(0.001, 25.0)
        table.add_row(0.002, 40.0)
        assert len(table) == 2
        assert table.column("latency") == [25.0, 40.0]

    def test_add_row_wrong_arity_raises(self):
        table = ResultTable(headers=["a", "b"])
        with pytest.raises(ValidationError):
            table.add_row(1)

    def test_unknown_column_raises(self):
        table = ResultTable(headers=["a"])
        with pytest.raises(ValidationError):
            table.column("zzz")

    def test_text_and_csv_rendering(self):
        table = ResultTable(headers=["a"], title="T")
        table.add_row(1)
        assert "T" in table.to_text()
        assert table.to_csv().startswith("a")

    def test_save_csv(self, tmp_path):
        table = ResultTable(headers=["a"])
        table.add_row(5)
        path = table.save_csv(tmp_path / "t.csv")
        assert path.read_text().strip().splitlines() == ["a", "5"]
