"""Tests of JSON serialisation helpers."""

import dataclasses
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np
import pytest

from repro.utils import dump_json, from_jsonable, load_json, to_jsonable


@dataclasses.dataclass
class _Point:
    x: float
    y: float


@dataclasses.dataclass(frozen=True)
class _Nested:
    label: str
    points: Tuple[_Point, ...]
    weight: Optional[float] = None
    extras: Dict[str, Any] = dataclasses.field(default_factory=dict)


class _Color(Enum):
    RED = "red"


class TestToJsonable:
    def test_primitives_pass_through(self):
        for value in [None, True, 3, 2.5, "s"]:
            assert to_jsonable(value) == value

    def test_numpy_scalars_converted(self):
        assert to_jsonable(np.int64(3)) == 3
        assert isinstance(to_jsonable(np.int64(3)), int)
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert isinstance(to_jsonable(np.float64(2.5)), float)

    def test_numpy_arrays_become_lists(self):
        assert to_jsonable(np.array([1, 2, 3])) == [1, 2, 3]
        assert to_jsonable(np.array([[1.0, 2.0]])) == [[1.0, 2.0]]

    def test_dataclasses_become_dicts(self):
        assert to_jsonable(_Point(1.0, 2.0)) == {"x": 1.0, "y": 2.0}

    def test_enums_become_values(self):
        assert to_jsonable(_Color.RED) == "red"

    def test_nested_containers(self):
        obj = {"points": [_Point(0.0, 1.0)], "tags": ("a", "b"), "n": np.int32(2)}
        assert to_jsonable(obj) == {"points": [{"x": 0.0, "y": 1.0}], "tags": ["a", "b"], "n": 2}

    def test_paths_become_strings(self):
        assert to_jsonable(Path("/tmp/x")) == "/tmp/x"

    def test_sets_become_lists(self):
        assert sorted(to_jsonable({1, 2, 3})) == [1, 2, 3]

    def test_custom_to_jsonable_hook(self):
        class WithHook:
            def to_jsonable(self):
                return {"kind": "custom"}

        assert to_jsonable(WithHook()) == {"kind": "custom"}

    def test_unserialisable_object_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_dict_keys_coerced_to_strings(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}


class TestFromJsonable:
    def test_primitives_and_any(self):
        assert from_jsonable(int, 3) == 3
        assert from_jsonable(float, 2) == 2.0
        assert isinstance(from_jsonable(float, 2), float)
        assert from_jsonable(str, "s") == "s"
        assert from_jsonable(Any, {"k": 1}) == {"k": 1}

    def test_flat_dataclass(self):
        assert from_jsonable(_Point, {"x": 1.0, "y": 2.0}) == _Point(1.0, 2.0)

    def test_nested_dataclass_round_trip(self):
        original = _Nested(
            label="n",
            points=(_Point(0.0, 1.0), _Point(2.0, 3.0)),
            weight=0.5,
            extras={"note": "hi", "count": 2},
        )
        assert from_jsonable(_Nested, to_jsonable(original)) == original

    def test_optional_none_round_trip(self):
        original = _Nested(label="n", points=())
        rebuilt = from_jsonable(_Nested, to_jsonable(original))
        assert rebuilt.weight is None

    def test_variadic_tuple_annotation(self):
        assert from_jsonable(Tuple[int, ...], [1, 2, 3]) == (1, 2, 3)

    def test_fixed_tuple_annotation(self):
        assert from_jsonable(Tuple[int, str], [1, "a"]) == (1, "a")

    def test_dict_annotation(self):
        assert from_jsonable(Dict[str, float], {"a": 1}) == {"a": 1.0}

    def test_enum_and_path(self):
        assert from_jsonable(_Color, "red") is _Color.RED
        assert from_jsonable(Path, "/tmp/x") == Path("/tmp/x")

    def test_pep604_union(self):
        assert from_jsonable(int | None, None) is None
        assert from_jsonable(int | None, 3) == 3

    def test_non_mapping_for_dataclass_raises(self):
        with pytest.raises(TypeError):
            from_jsonable(_Point, [1.0, 2.0])

    def test_unsupported_annotation_raises(self):
        with pytest.raises(TypeError):
            from_jsonable(frozenset, [1, 2])  # no origin handler registered


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        payload = {"config": _Point(1.5, -2.0), "values": np.arange(3)}
        path = dump_json(payload, tmp_path / "sub" / "result.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded == {"config": {"x": 1.5, "y": -2.0}, "values": [0, 1, 2]}
