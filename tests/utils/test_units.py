"""Tests of unit conversions and the LinkTiming container (Eq. 14-15)."""

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    TimeUnit,
    ValidationError,
    bandwidth_to_beta,
    beta_to_bandwidth,
    bytes_to_flits,
    flits_to_bytes,
)
from repro.utils.units import LinkTiming


class TestBandwidthConversions:
    def test_paper_bandwidth_gives_expected_beta(self):
        # The paper uses a network bandwidth of 500 bytes per time unit.
        assert bandwidth_to_beta(500.0) == pytest.approx(0.002)

    def test_round_trip(self):
        assert beta_to_bandwidth(bandwidth_to_beta(123.0)) == pytest.approx(123.0)

    @pytest.mark.parametrize("bad", [0, -5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError):
            bandwidth_to_beta(bad)
        with pytest.raises(ValidationError):
            beta_to_bandwidth(bad)

    @given(st.floats(min_value=1e-6, max_value=1e9))
    def test_round_trip_property(self, bandwidth):
        assert beta_to_bandwidth(bandwidth_to_beta(bandwidth)) == pytest.approx(bandwidth)


class TestFlitConversions:
    def test_flits_to_bytes(self):
        assert flits_to_bytes(32, 256) == 8192

    def test_bytes_to_flits_rounds_up(self):
        assert bytes_to_flits(8192, 256) == 32
        assert bytes_to_flits(8193, 256) == 33
        assert bytes_to_flits(1, 256) == 1

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            flits_to_bytes(0, 256)
        with pytest.raises(ValidationError):
            bytes_to_flits(10, 0)

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=4096))
    def test_conversion_inverse_property(self, flits, flit_bytes):
        # Converting flits -> bytes -> flits always returns the original count.
        assert bytes_to_flits(flits_to_bytes(flits, flit_bytes), flit_bytes) == flits


class TestLinkTiming:
    def test_paper_values_lm_256(self):
        timing = LinkTiming(alpha_net=0.02, alpha_sw=0.01, beta_net=0.002, flit_bytes=256)
        # Eq. 14: t_cn = alpha_net + (Lm/2) * beta_net
        assert timing.t_cn == pytest.approx(0.02 + 0.5 * 256 * 0.002)
        # Eq. 15: t_cs = alpha_sw + Lm * beta_net
        assert timing.t_cs == pytest.approx(0.01 + 256 * 0.002)

    def test_paper_values_lm_512(self):
        timing = LinkTiming(alpha_net=0.02, alpha_sw=0.01, beta_net=0.002, flit_bytes=512)
        assert timing.t_cn == pytest.approx(0.532)
        assert timing.t_cs == pytest.approx(1.034)

    def test_larger_flits_take_longer(self):
        small = LinkTiming(0.02, 0.01, 0.002, 256)
        large = LinkTiming(0.02, 0.01, 0.002, 512)
        assert large.t_cn > small.t_cn
        assert large.t_cs > small.t_cs

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            LinkTiming(alpha_net=0.0, alpha_sw=0.01, beta_net=0.002, flit_bytes=256)
        with pytest.raises(ValidationError):
            LinkTiming(alpha_net=0.02, alpha_sw=0.01, beta_net=0.002, flit_bytes=0)

    def test_frozen(self):
        timing = LinkTiming(0.02, 0.01, 0.002, 256)
        with pytest.raises(AttributeError):
            timing.alpha_net = 1.0  # type: ignore[misc]


def test_time_unit_labels():
    assert TimeUnit.ABSTRACT.label() == "time-unit"
    assert TimeUnit.MICROSECONDS.label() == "us"
    assert TimeUnit.NANOSECONDS.label() == "ns"
