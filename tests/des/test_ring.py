"""Tests of the batch-oriented calendar ring (:mod:`repro.des.ring`).

Same absolute contract as the calendar queue: pop order is bit-identical to
a flat heap over ``(time, priority, eid)`` keys, whatever interleaving of
pushes, single pops and cohort pops drives it — including pushes landing
inside the bucket currently being drained, and occupancy-triggered resizes
firing mid-schedule.  The vectorized simulation kernel stands on exactly
this guarantee.
"""

import heapq
from math import inf

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import CalendarRing, FifoRing, SimulationError
from repro.des.calendar import RESIZE_CHECK_INTERVAL, RESIZE_MIN_ENTRIES


class TestCalendarRingUnit:
    def test_rejects_non_positive_width(self):
        with pytest.raises(SimulationError):
            CalendarRing(width=0.0)
        with pytest.raises(SimulationError):
            CalendarRing(width=-2.0)

    def test_pop_on_empty_raises_index_error_like_heappop(self):
        with pytest.raises(IndexError):
            CalendarRing().pop()

    def test_pop_cohort_on_empty_returns_none(self):
        assert CalendarRing().pop_cohort() is None

    def test_peek_time_empty_is_infinite(self):
        assert CalendarRing().peek_time() == inf

    def test_cohort_is_the_full_equal_time_run_in_priority_eid_order(self):
        ring = CalendarRing(width=10.0)
        ring.push(5.0, 1, 0, "n0")
        ring.push(5.0, 0, 1, "u1")
        ring.push(5.0, 1, 2, "n2")
        ring.push(6.0, 1, 3, "later")
        cohort = ring.pop_cohort()
        assert [entry[3] for entry in cohort] == ["u1", "n0", "n2"]
        assert [entry[0] for entry in cohort] == [5.0, 5.0, 5.0]
        assert len(ring) == 1
        assert [entry[3] for entry in ring.pop_cohort()] == ["later"]
        assert ring.pop_cohort() is None

    def test_push_behind_the_drained_head_still_pops_in_order(self):
        ring = CalendarRing(width=100.0)
        for eid, time in enumerate((1.0, 4.0, 9.0)):
            ring.push(time, 1, eid, time)
        assert ring.pop()[0] == 1.0
        # The head bucket is live; these land in its unconsumed tail.
        ring.push(2.0, 1, 3, 2.0)
        ring.push(4.0, 1, 4, "tie-later-eid")
        assert [ring.pop()[0] for _ in range(4)] == [2.0, 4.0, 4.0, 9.0]

    def test_push_batch_matches_scalar_pushes(self):
        times = [3.0, 1.5, 3.0, 0.25, 99.0]
        scalar = CalendarRing(width=0.5)
        batched = CalendarRing(width=0.5)
        for eid, time in enumerate(times):
            scalar.push(time, 1, eid, eid)
        batched.push_batch(times, 1, 0, list(range(len(times))))
        assert [batched.pop() for _ in range(len(times))] == [
            scalar.pop() for _ in range(len(times))
        ]

    def test_push_batch_rejects_matrix_input(self):
        with pytest.raises(SimulationError):
            CalendarRing().push_batch([[1.0, 2.0]], 1, 0, [None])

    def test_occupancy_drift_triggers_resize(self):
        # Seed a width wildly too large for the actual density, then push
        # enough entries to cross a check interval: everything lands in one
        # bucket, occupancy explodes, the ring rebuilds itself narrower.
        ring = CalendarRing(width=1e9)
        total = RESIZE_CHECK_INTERVAL + RESIZE_MIN_ENTRIES
        for eid in range(total):
            ring.push(float(eid), 1, eid, None)
        assert ring.resizes >= 1
        assert ring.width < 1e9
        assert ring.occupied_buckets > 1
        assert [ring.pop()[0] for _ in range(total)] == [float(i) for i in range(total)]


@st.composite
def _ring_schedule(draw):
    """Interleaved push / pop / pop-cohort operations."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("push"),
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    st.integers(min_value=0, max_value=1),
                ),
                st.just(("pop",)),
                st.just(("cohort",)),
            ),
            min_size=1,
            max_size=200,
        )
    )


class TestPopOrderMatchesHeap:
    @given(_ring_schedule(), st.floats(min_value=1e-6, max_value=50.0))
    @settings(max_examples=200, deadline=None)
    def test_interleaved_schedule_pops_identically(self, ops, width):
        """The tentpole property: ring pop order == heap pop order."""
        heap = []
        ring = CalendarRing(width=width)
        eid = 0
        heap_popped, ring_popped = [], []
        for op in ops:
            if op[0] == "push":
                _, time, priority = op
                heapq.heappush(heap, (time, priority, eid, None))
                ring.push(time, priority, eid, None)
                eid += 1
            elif op[0] == "pop":
                if heap:
                    heap_popped.append(heapq.heappop(heap))
                    ring_popped.append(ring.pop())
            else:
                cohort = ring.pop_cohort()
                if cohort is None:
                    assert not heap
                    continue
                ring_popped.extend(cohort)
                for _ in cohort:
                    heap_popped.append(heapq.heappop(heap))
        while heap:
            heap_popped.append(heapq.heappop(heap))
            ring_popped.append(ring.pop())
        assert ring_popped == heap_popped
        assert len(ring) == 0

    @given(_ring_schedule())
    @settings(max_examples=50, deadline=None)
    def test_cohorts_are_maximal_equal_time_runs(self, ops):
        ring = CalendarRing(width=0.75)
        eid = 0
        for op in ops:
            if op[0] == "push":
                ring.push(op[1], op[2], eid, None)
                eid += 1
        previous_time = -inf
        while True:
            cohort = ring.pop_cohort()
            if cohort is None:
                break
            times = {entry[0] for entry in cohort}
            assert len(times) == 1
            time = times.pop()
            # Maximality: strictly increasing cohort times.
            assert time > previous_time
            previous_time = time
        assert len(ring) == 0


@st.composite
def _fifo_schedule(draw):
    """Interleaved pushes and run pops, with same-time pushes made likely.

    Times are drawn from a small grid so equal-time runs — the whole point
    of the FIFO tie-break — occur constantly, and pushes landing in the
    bucket currently being drained (behind the promoted head) are common.
    """
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("push"),
                    st.integers(min_value=0, max_value=40).map(lambda k: k * 2.5),
                ),
                st.just(("run",)),
                st.just(("pop",)),
            ),
            min_size=1,
            max_size=200,
        )
    )


class TestFifoRingMatchesSequencedHeap:
    """:class:`FifoRing` pops bit-identically to a heap over ``(time, seq)``.

    The vectorized kernel dropped its event-id counter on the strength of
    this property: the ring's positional FIFO (stable bucket sorts plus
    right-bisected insorts behind the head) reproduces exactly the order an
    explicit push-sequence tie-break would impose.
    """

    @given(_fifo_schedule(), st.floats(min_value=1e-3, max_value=50.0))
    @settings(max_examples=200, deadline=None)
    def test_interleaved_schedule_pops_identically(self, ops, width):
        heap = []
        ring = FifoRing(width=width)
        seq = 0
        heap_popped, ring_popped = [], []
        for op in ops:
            if op[0] == "push":
                heapq.heappush(heap, (op[1], seq))
                ring.push(op[1], seq)
                seq += 1
            elif op[0] == "pop":
                if heap:
                    heap_popped.append(heapq.heappop(heap))
                    ring_popped.append(ring.pop())
            else:
                run = ring.pop_run()
                if run is None:
                    assert not heap
                    continue
                time, head, start, end = run
                for index in range(start, end):
                    assert head[index][0] == time
                    ring_popped.append(head[index])
                    heap_popped.append(heapq.heappop(heap))
        while heap:
            heap_popped.append(heapq.heappop(heap))
            ring_popped.append(ring.pop())
        assert ring_popped == heap_popped
        assert len(ring) == 0

    def test_pushes_during_run_iteration_do_not_shift_the_run(self):
        """The index range a run hands out survives same-bucket insorts."""
        ring = FifoRing(width=10.0)
        for payload in range(4):
            ring.push(1.0, payload)
        ring.push(2.0, 99)
        time, head, start, end = ring.pop_run()
        assert time == 1.0 and end - start == 4
        seen = []
        for index in range(start, end):
            seen.append(head[index][1])
            # Push into the drained bucket mid-iteration, at the run's own
            # time and later: both must land at or past `end`.
            ring.push(1.0, 100 + index)
            ring.push(1.5, 200 + index)
        assert seen == [0, 1, 2, 3]
        # Same-time stragglers pop next, in push order, before later times.
        time, head, start, end = ring.pop_run()
        assert time == 1.0
        assert [head[i][1] for i in range(start, end)] == [100, 101, 102, 103]
        time, head, start, end = ring.pop_run()
        assert time == 1.5
        assert [head[i][1] for i in range(start, end)] == [200, 201, 202, 203]
        assert ring.pop() == (2.0, 99)
        assert len(ring) == 0

    def test_push_batch_preserves_sequence_order(self):
        ring = FifoRing(width=0.5)
        times = [3.0, 1.0, 3.0, 1.0, 2.0]
        ring.push_batch(times, list(range(5)))
        assert ring.pop_run()[1][0:2] == [(1.0, 1), (1.0, 3)]
        assert ring.pop() == (2.0, 4)
        assert ring.pop_run()[1][0:2] == [(3.0, 0), (3.0, 2)]
        assert ring.pop_run() is None
