"""Tests of the calendar-queue scheduler layer.

The contract is absolute: whichever structure backs the event queue, events
pop in identical order — ``(time, priority, eid)`` — so scheduler choice can
never change simulation results.  The property test drives the calendar
queue and a flat heap through the same random push/pop schedules and
compares the sequences element for element.
"""

import heapq
from math import inf

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import CalendarQueue, Environment, QueueEmpty, SimulationError
from repro.des.calendar import MIN_WIDTH


class TestCalendarQueueUnit:
    def test_rejects_non_positive_width(self):
        with pytest.raises(SimulationError):
            CalendarQueue(width=0.0)
        with pytest.raises(SimulationError):
            CalendarQueue(width=-1.0)

    def test_pop_on_empty_raises_index_error_like_heappop(self):
        queue = CalendarQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_peek_time_empty_is_infinite(self):
        assert CalendarQueue().peek_time() == inf

    def test_fifo_within_equal_time_and_priority(self):
        queue = CalendarQueue(width=0.5)
        for eid in range(5):
            queue.push(1.0, 1, eid, f"event-{eid}")
        assert [queue.pop()[3] for _ in range(5)] == [f"event-{eid}" for eid in range(5)]

    def test_priority_beats_insertion_order_at_equal_times(self):
        queue = CalendarQueue()
        queue.push(2.0, 1, 0, "normal")
        queue.push(2.0, 0, 1, "urgent")
        assert queue.pop()[3] == "urgent"
        assert queue.pop()[3] == "normal"

    def test_entries_spanning_many_buckets_pop_in_time_order(self):
        queue = CalendarQueue(width=0.25)
        times = [9.0, 0.1, 4.5, 4.5001, 2.0, 100.0, 0.2]
        for eid, time in enumerate(times):
            queue.push(time, 1, eid, time)
        assert [queue.pop()[0] for _ in range(len(times))] == sorted(times)
        assert len(queue) == 0

    def test_from_entries_preserves_every_entry(self):
        entries = [(float(i % 7), 1, i, i) for i in range(50)]
        heap = sorted(entries)
        queue = CalendarQueue.from_entries(entries)
        assert len(queue) == 50
        assert [queue.pop() for _ in range(50)] == heap

    def test_from_entries_empty(self):
        queue = CalendarQueue.from_entries([])
        assert len(queue) == 0
        assert queue.peek_time() == inf

    def test_from_entries_degenerate_span_uses_width_floor(self):
        entries = [(3.0, 1, eid, eid) for eid in range(10)]
        queue = CalendarQueue.from_entries(entries)
        assert queue.width >= MIN_WIDTH
        assert [queue.pop()[2] for _ in range(10)] == list(range(10))


@st.composite
def _push_pop_schedule(draw):
    """Interleaved (push entries, pop counts) operations."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("push"),
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    st.integers(min_value=0, max_value=1),
                ),
                st.just(("pop",)),
            ),
            min_size=1,
            max_size=200,
        )
    )
    return ops


class TestPopOrderMatchesHeap:
    @given(_push_pop_schedule(), st.floats(min_value=1e-6, max_value=50.0))
    @settings(max_examples=200, deadline=None)
    def test_interleaved_schedule_pops_identically(self, ops, width):
        """The tentpole property: calendar pop order == heap pop order."""
        heap = []
        calendar = CalendarQueue(width=width)
        eid = 0
        heap_popped, calendar_popped = [], []
        for op in ops:
            if op[0] == "push":
                _, time, priority = op
                heapq.heappush(heap, (time, priority, eid, None))
                calendar.push(time, priority, eid, None)
                eid += 1
            else:
                if heap:
                    heap_popped.append(heapq.heappop(heap))
                    calendar_popped.append(calendar.pop())
        # Drain whatever is left.
        while heap:
            heap_popped.append(heapq.heappop(heap))
            calendar_popped.append(calendar.pop())
        assert calendar_popped == heap_popped
        assert len(calendar) == 0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_migration_snapshot_preserves_order(self, times):
        entries = [(time, 1, eid, None) for eid, time in enumerate(times)]
        queue = CalendarQueue.from_entries(entries)
        assert [queue.pop() for _ in range(len(entries))] == sorted(entries)


class TestEnvironmentSchedulerSelection:
    def test_default_is_auto_on_the_heap(self):
        env = Environment()
        assert env.scheduler == "auto"
        assert env.active_scheduler == "heap"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Environment(scheduler="fifo")

    def test_env_var_selects_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_DES_SCHEDULER", "calendar")
        assert Environment().active_scheduler == "calendar"
        monkeypatch.setenv("REPRO_DES_SCHEDULER", "heap")
        assert Environment().active_scheduler == "heap"

    def test_forced_calendar_runs_processes_identically(self):
        def run_with(scheduler):
            env = Environment(scheduler=scheduler)
            order = []

            def proc(env, label, delay):
                yield env.timeout(delay)
                order.append((label, env.now))
                yield env.timeout(delay)
                order.append((label, env.now))

            for label, delay in (("a", 2.0), ("b", 1.0), ("c", 2.0)):
                env.process(proc(env, label, delay))
            env.run()
            return order

        assert run_with("calendar") == run_with("heap")

    def test_auto_migrates_past_threshold_and_keeps_order(self):
        env = Environment(calendar_threshold=16)
        fired = []

        def proc(env, label, delay):
            yield env.timeout(delay)
            fired.append((env.now, label))

        assert env.active_scheduler == "heap"
        for index in range(40):
            env.process(proc(env, index, 1.0 + (index % 5)))
        # Forty processes schedule well past the threshold of 16: the queue
        # migrates as soon as the heap crosses it.
        assert env.active_scheduler == "calendar"
        env.run()
        reference = sorted(fired)
        # Same-time processes fire in creation order; earlier times first.
        assert fired == reference

    def test_heap_mode_never_migrates(self):
        env = Environment(scheduler="heap", calendar_threshold=2)
        for _ in range(10):
            env.timeout(1.0)
        assert env.active_scheduler == "heap"

    def test_peek_and_queue_size_under_calendar(self):
        env = Environment(scheduler="calendar")
        assert env.peek() == inf
        assert env.queue_size == 0
        env.timeout(7.0)
        env.timeout(3.0)
        assert env.peek() == 3.0
        assert env.queue_size == 2
        env.step()
        assert env.now == 3.0
        assert env.peek() == 7.0
        assert env.queue_size == 1

    def test_step_empty_calendar_raises_queue_empty(self):
        env = Environment(scheduler="calendar")
        with pytest.raises(QueueEmpty):
            env.step()
        # QueueEmpty is a SimulationError, so old handlers still catch it.
        with pytest.raises(SimulationError):
            env.step()


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
class TestRunUntilBoundary:
    """Regression: ``run(until=t)`` stops *at* t via its scheduled stop event.

    The stop event must land in whichever structure backs the queue — a raw
    heap push would strand it once the calendar is active and silently drain
    events past ``until``.  Equal-time ordering at the boundary is pinned:
    URGENT events enqueued at the stop time *before* ``run`` still fire,
    NORMAL ones (and URGENT ones scheduled after ``run`` began) stay pending.
    """

    def test_normal_event_at_stop_time_is_left_pending(self, scheduler):
        env = Environment(scheduler=scheduler)
        timeout = env.timeout(5.0)
        env.run(until=5.0)
        assert env.now == 5.0
        assert not timeout.processed
        assert env.queue_size == 1

    def test_event_beyond_until_is_never_processed(self, scheduler):
        env = Environment(scheduler=scheduler)
        fired = []

        def proc(env):
            while True:
                yield env.timeout(2.0)
                fired.append(env.now)

        env.process(proc(env))
        env.run(until=5.0)
        assert env.now == 5.0
        assert fired == [2.0, 4.0]

    def test_urgent_tie_scheduled_before_run_fires_first(self, scheduler):
        env = Environment(scheduler=scheduler)
        fired = []
        event = env.event()
        event._ok = True
        event._value = None
        event.callbacks.append(lambda e: fired.append(env.now))
        env.schedule(event, priority=env.URGENT, delay=5.0)
        env.run(until=5.0)
        assert env.now == 5.0
        assert fired == [5.0]

    def test_urgent_scheduled_during_boundary_stays_pending(self, scheduler):
        env = Environment(scheduler=scheduler)
        fired = []

        def chain(first_event):
            fired.append("first")
            follow = env.event()
            follow._ok = True
            follow._value = None
            follow.callbacks.append(lambda e: fired.append("second"))
            # Scheduled at the stop time but after run() began: the stop
            # event's earlier eid wins the URGENT tie.
            env.schedule(follow, priority=env.URGENT)

        event = env.event()
        event._ok = True
        event._value = None
        event.callbacks.append(chain)
        env.schedule(event, priority=env.URGENT, delay=5.0)
        env.run(until=5.0)
        assert env.now == 5.0
        assert fired == ["first"]
        assert env.queue_size == 1
        # Resuming past the boundary processes the leftover urgent event.
        env.run()
        assert fired == ["first", "second"]

    def test_resume_after_boundary_continues(self, scheduler):
        env = Environment(scheduler=scheduler)
        ticks = []

        def proc(env):
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(proc(env))
        env.run(until=3.0)
        assert ticks == [1.0, 2.0]
        env.run(until=5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_stop_event_survives_auto_migration(self, scheduler):
        if scheduler == "calendar":
            pytest.skip("migration only happens from the heap")
        env = Environment(calendar_threshold=8)
        fired = []

        def proc(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        # run(until) is issued while the heap is active; the flood of
        # processes migrates the queue to the calendar before the boundary.
        for index in range(30):
            env.process(proc(env, 1.0 + 0.1 * index))
        env.run(until=2.0)
        assert env.active_scheduler == "calendar"
        assert env.now == 2.0
        assert all(time < 2.0 for time in fired)
        remaining = env.queue_size
        assert remaining > 0
        env.run()
        assert len(fired) == 30
