"""Tests of the DES Environment: clock, scheduling, run loop."""

import pytest

from repro.des import Environment, SimulationError


def test_initial_time_defaults_to_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(initial_time=10.5)
    assert env.now == 10.5


def test_timeout_advances_clock():
    env = Environment()
    env.process(_wait(env, 3.0))
    env.run()
    assert env.now == 3.0


def test_run_until_time_stops_at_that_time():
    env = Environment()
    env.process(_tick_forever(env, period=1.0))
    env.run(until=5.5)
    assert env.now == 5.5


def test_run_until_time_in_the_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_run_until_event_returns_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    process = env.process(proc(env))
    assert env.run(until=process) == "done"
    assert env.now == 2.0


def test_run_with_no_until_exhausts_queue():
    env = Environment()
    env.process(_wait(env, 1.0))
    env.process(_wait(env, 4.0))
    env.run()
    assert env.now == 4.0
    assert env.queue_size == 0


def test_run_until_beyond_queue_exhaustion_advances_clock():
    env = Environment()
    env.process(_wait(env, 1.0))
    env.run(until=10.0)
    assert env.now == 10.0


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_empty_queue_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_events_at_same_time_fire_in_scheduling_order():
    env = Environment()
    order = []

    def proc(env, label):
        yield env.timeout(1.0)
        order.append(label)

    for label in "abc":
        env.process(proc(env, label))
    env.run()
    assert order == ["a", "b", "c"]


def test_processes_interleave_by_time():
    env = Environment()
    order = []

    def proc(env, label, delay):
        yield env.timeout(delay)
        order.append((label, env.now))

    env.process(proc(env, "slow", 5.0))
    env.process(proc(env, "fast", 1.0))
    env.run()
    assert order == [("fast", 1.0), ("slow", 5.0)]


def test_active_process_visible_inside_process():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1.0)

    process = env.process(proc(env))
    env.run()
    assert seen == [process]
    assert env.active_process is None


def test_unhandled_process_failure_propagates_out_of_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_nested_process_waiting():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return 99

    def parent(env):
        value = yield env.process(child(env))
        return value + 1

    process = env.process(parent(env))
    assert env.run(until=process) == 100


def _wait(env, delay):
    yield env.timeout(delay)


def _tick_forever(env, period):
    while True:
        yield env.timeout(period)
