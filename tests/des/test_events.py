"""Tests of events, processes, interrupts and composite conditions."""

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    ConditionValue,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class TestEventLifecycle:
    def test_new_event_is_untriggered(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_sets_value(self):
        env = Environment()
        event = env.event()
        event.succeed("payload")
        assert event.triggered
        assert event.ok
        assert event.value == "payload"

    def test_double_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_failed_event_with_no_waiter_raises_at_run(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError, match="nobody caught me"):
            env.run()

    def test_defused_failed_event_does_not_raise(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("handled"))
        event.defused()
        env.run()  # must not raise

    def test_trigger_copies_state_of_other_event(self):
        env = Environment()
        source = env.event()
        target = env.event()
        source.succeed(5)
        target.trigger(source)
        assert target.triggered and target.value == 5


class TestProcess:
    def test_process_is_alive_until_generator_returns(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_process_value_is_generator_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "result"

        process = env.process(proc(env))
        env.run()
        assert process.value == "result"

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_process_waits_for_event_and_receives_its_value(self):
        env = Environment()
        event = env.event()
        received = []

        def waiter(env):
            value = yield event
            received.append(value)

        def firer(env):
            yield env.timeout(2.0)
            event.succeed("hello")

        env.process(waiter(env))
        env.process(firer(env))
        env.run()
        assert received == ["hello"]

    def test_exception_in_waited_event_propagates_into_process(self):
        env = Environment()
        event = env.event()
        caught = []

        def waiter(env):
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        def firer(env):
            yield env.timeout(1.0)
            event.fail(RuntimeError("bad news"))

        env.process(waiter(env))
        env.process(firer(env))
        env.run()
        assert caught == ["bad news"]

    def test_target_reports_waited_event(self):
        env = Environment()
        event = env.event()

        def waiter(env):
            yield event

        process = env.process(waiter(env))
        env.run(until=0.0)
        # After the init event the process waits on `event`.
        assert process.target is event


class TestInterrupt:
    def test_interrupt_raises_inside_process(self):
        env = Environment()
        outcomes = []

        def victim(env):
            try:
                yield env.timeout(100.0)
                outcomes.append("finished")
            except Interrupt as interrupt:
                outcomes.append(("interrupted", interrupt.cause, env.now))

        def attacker(env, victim_process):
            yield env.timeout(3.0)
            victim_process.interrupt(cause="drain")

        victim_process = env.process(victim(env))
        env.process(attacker(env, victim_process))
        env.run()
        assert outcomes == [("interrupted", "drain", 3.0)]

    def test_interrupting_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_can_continue(self):
        env = Environment()
        trace = []

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt:
                trace.append(("interrupted", env.now))
            yield env.timeout(2.0)
            trace.append(("done", env.now))

        def attacker(env, victim_process):
            yield env.timeout(1.0)
            victim_process.interrupt()

        victim_process = env.process(victim(env))
        env.process(attacker(env, victim_process))
        env.run()
        assert trace == [("interrupted", 1.0), ("done", 3.0)]


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()
        done_at = []

        def proc(env):
            yield env.all_of([env.timeout(1.0), env.timeout(5.0), env.timeout(3.0)])
            done_at.append(env.now)

        env.process(proc(env))
        env.run()
        assert done_at == [5.0]

    def test_any_of_fires_at_first_event(self):
        env = Environment()
        done_at = []

        def proc(env):
            yield env.any_of([env.timeout(4.0), env.timeout(2.0)])
            done_at.append(env.now)

        env.process(proc(env))
        env.run()
        assert done_at == [2.0]

    def test_and_operator_builds_all_of(self):
        env = Environment()
        condition = env.timeout(1.0) & env.timeout(2.0)
        assert isinstance(condition, AllOf)

    def test_or_operator_builds_any_of(self):
        env = Environment()
        condition = env.timeout(1.0) | env.timeout(2.0)
        assert isinstance(condition, AnyOf)

    def test_empty_all_of_succeeds_immediately(self):
        env = Environment()
        condition = env.all_of([])
        assert condition.triggered

    def test_condition_value_maps_events_to_values(self):
        env = Environment()
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        results = []

        def proc(env):
            value = yield env.all_of([t1, t2])
            results.append(value)

        env.process(proc(env))
        env.run()
        (value,) = results
        assert isinstance(value, ConditionValue)
        assert value[t1] == "a" and value[t2] == "b"
        assert value.todict() == {t1: "a", t2: "b"}
        assert len(value) == 2

    def test_condition_value_unknown_key_raises(self):
        env = Environment()
        t1 = env.timeout(1.0)
        other = env.timeout(2.0)
        value = ConditionValue([t1])
        with pytest.raises(KeyError):
            _ = value[other]

    def test_mixing_environments_rejected(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env_a, [env_a.timeout(1.0), env_b.timeout(1.0)])

    def test_failed_member_fails_the_condition(self):
        env = Environment()
        event = env.event()
        caught = []

        def proc(env):
            try:
                yield env.all_of([event, env.timeout(10.0)])
            except RuntimeError as exc:
                caught.append(str(exc))

        def firer(env):
            yield env.timeout(1.0)
            event.fail(RuntimeError("member failed"))

        env.process(proc(env))
        env.process(firer(env))
        env.run()
        assert caught == ["member failed"]


def test_timeout_carries_value():
    env = Environment()
    received = []

    def proc(env):
        value = yield env.timeout(1.0, value=123)
        received.append(value)

    env.process(proc(env))
    env.run()
    assert received == [123]


def test_event_repr_never_crashes():
    env = Environment()
    event = Event(env)
    assert "Event" in repr(event)
