"""Tests of the statistics collectors (Tally, TimeWeightedValue, Counter)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.des import Counter, Environment, SimulationError, Tally, TimeWeightedValue


class TestTally:
    def test_empty_tally_raises_on_mean(self):
        tally = Tally("empty")
        with pytest.raises(SimulationError):
            _ = tally.mean

    def test_mean_and_variance_match_known_values(self):
        tally = Tally()
        tally.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert tally.mean == pytest.approx(5.0)
        assert tally.variance == pytest.approx(32.0 / 7.0)
        assert tally.std == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_min_max_count_total(self):
        tally = Tally()
        tally.extend([3.0, -1.0, 10.0])
        assert tally.minimum == -1.0
        assert tally.maximum == 10.0
        assert tally.count == 3
        assert tally.total == pytest.approx(12.0)

    def test_variance_of_single_observation_is_zero(self):
        tally = Tally()
        tally.record(5.0)
        assert tally.variance == 0.0

    def test_reset_clears_everything(self):
        tally = Tally()
        tally.extend([1.0, 2.0])
        tally.reset()
        assert tally.count == 0
        assert tally.samples == []

    def test_keep_samples_false_rejects_sample_access(self):
        tally = Tally(keep_samples=False)
        tally.record(1.0)
        with pytest.raises(SimulationError):
            _ = tally.samples
        # ...but running statistics still work.
        assert tally.mean == 1.0

    def test_percentiles(self):
        tally = Tally()
        tally.extend(range(1, 101))
        assert tally.percentile(0) == 1
        assert tally.percentile(100) == 100
        assert tally.percentile(50) == pytest.approx(50.5)

    def test_percentile_out_of_range_raises(self):
        tally = Tally()
        tally.record(1.0)
        with pytest.raises(SimulationError):
            tally.percentile(150)

    def test_percentile_single_sample(self):
        tally = Tally()
        tally.record(7.0)
        assert tally.percentile(37.5) == 7.0

    def test_confidence_interval_brackets_the_mean(self):
        tally = Tally()
        tally.extend([float(x) for x in range(1000)])
        low, high = tally.confidence_interval(0.95)
        assert low < tally.mean < high

    def test_confidence_interval_narrows_with_more_samples(self):
        small, large = Tally(), Tally()
        small.extend([1.0, 2.0, 3.0, 4.0, 5.0] * 4)
        large.extend([1.0, 2.0, 3.0, 4.0, 5.0] * 400)
        small_width = small.confidence_interval()[1] - small.confidence_interval()[0]
        large_width = large.confidence_interval()[1] - large.confidence_interval()[0]
        assert large_width < small_width

    def test_confidence_interval_requires_valid_level(self):
        tally = Tally()
        tally.record(1.0)
        with pytest.raises(SimulationError):
            tally.confidence_interval(1.5)

    def test_confidence_interval_single_sample_is_degenerate(self):
        tally = Tally()
        tally.record(3.0)
        assert tally.confidence_interval() == (3.0, 3.0)

    def test_summary_round_trip(self):
        tally = Tally("latency")
        assert tally.summary() == {"name": "latency", "count": 0}
        tally.extend([1.0, 3.0])
        summary = tally.summary()
        assert summary["count"] == 2
        assert summary["mean"] == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
    def test_running_statistics_match_direct_computation(self, values):
        tally = Tally()
        tally.extend(values)
        direct_mean = sum(values) / len(values)
        assert tally.mean == pytest.approx(direct_mean, rel=1e-9, abs=1e-6)
        direct_var = sum((v - direct_mean) ** 2 for v in values) / (len(values) - 1)
        assert tally.variance == pytest.approx(direct_var, rel=1e-6, abs=1e-3)
        assert tally.minimum == min(values)
        assert tally.maximum == max(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=50))
    def test_variance_is_never_negative(self, values):
        tally = Tally()
        tally.extend(values)
        assert tally.variance >= 0.0


class TestTimeWeightedValue:
    def test_time_average_of_constant_signal(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=3.0)
        env.process(_advance(env, 10.0))
        env.run()
        assert signal.time_average == pytest.approx(3.0)

    def test_time_average_weights_by_duration(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=0.0)

        def proc(env):
            yield env.timeout(4.0)   # value 0 for 4 time units
            signal.set(10.0)
            yield env.timeout(1.0)   # value 10 for 1 time unit
            signal.set(0.0)
            yield env.timeout(5.0)   # value 0 for 5 time units

        env.process(proc(env))
        env.run()
        assert signal.time_average == pytest.approx(1.0)  # 10*1 / 10

    def test_increment_decrement_track_value(self):
        env = Environment()
        signal = TimeWeightedValue(env)
        signal.increment()
        signal.increment(2.0)
        signal.decrement()
        assert signal.value == 2.0
        assert signal.maximum == 3.0
        assert signal.minimum == 0.0

    def test_reset_restarts_integration(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=100.0)

        def proc(env):
            yield env.timeout(5.0)
            signal.reset(0.0)
            yield env.timeout(5.0)

        env.process(proc(env))
        env.run()
        assert signal.time_average == pytest.approx(0.0)
        assert signal.elapsed == pytest.approx(5.0)

    def test_time_average_with_no_elapsed_time_is_current_value(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=7.0)
        assert signal.time_average == 7.0


class TestCounter:
    def test_counting_and_rate(self):
        env = Environment()
        counter = Counter(env, "messages")

        def proc(env):
            for _ in range(5):
                counter.increment()
                yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        assert counter.count == 5
        assert counter.rate == pytest.approx(0.5)

    def test_rate_with_no_elapsed_time_is_zero(self):
        env = Environment()
        counter = Counter(env)
        counter.increment(3)
        assert counter.rate == 0.0

    def test_negative_increment_rejected(self):
        env = Environment()
        counter = Counter(env)
        with pytest.raises(SimulationError):
            counter.increment(-1)

    def test_reset_zeroes_count_and_rate_clock(self):
        env = Environment()
        counter = Counter(env)

        def proc(env):
            counter.increment(10)
            yield env.timeout(5.0)
            counter.reset()
            counter.increment(1)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert counter.count == 1
        assert counter.rate == pytest.approx(1.0)


def _advance(env, delay):
    yield env.timeout(delay)


class TestCollectorsUnderCalendarScheduler:
    """The collectors read ``env.now`` only — scheduler choice cannot skew them.

    Exercised explicitly because the calendar queue changes how the clock
    advances between callbacks (bucketed pops instead of heap pops).
    """

    def test_time_weighted_value_integrates_identically(self):
        def run_with(scheduler):
            env = Environment(scheduler=scheduler)
            signal = TimeWeightedValue(env, initial=1.0)

            def proc(env):
                yield env.timeout(2.0)
                signal.set(3.0)
                yield env.timeout(2.0)
                signal.set(0.0)
                yield env.timeout(4.0)

            env.process(proc(env))
            env.run()
            return (signal.time_average, signal.maximum, signal.minimum, env.now)

        heap = run_with("heap")
        calendar = run_with("calendar")
        assert heap == calendar
        assert heap[0] == pytest.approx((1.0 * 2 + 3.0 * 2 + 0.0 * 4) / 8.0)

    def test_counter_rate_identical_across_schedulers(self):
        def run_with(scheduler):
            env = Environment(scheduler=scheduler)
            counter = Counter(env)

            def proc(env):
                for _ in range(5):
                    yield env.timeout(2.0)
                    counter.increment()

            env.process(proc(env))
            env.run()
            return (counter.count, counter.rate)

        assert run_with("heap") == run_with("calendar")
        assert run_with("calendar") == (5, 0.5)

    def test_tally_under_calendar_driven_simulation(self):
        env = Environment(scheduler="calendar")
        tally = Tally("latencies")

        def proc(env, delay):
            start = env.now
            yield env.timeout(delay)
            tally.record(env.now - start)

        for delay in (1.0, 2.0, 3.0, 4.0):
            env.process(proc(env, delay))
        env.run()
        assert tally.count == 4
        assert tally.mean == pytest.approx(2.5)
        assert tally.minimum == 1.0
        assert tally.maximum == 4.0

    def test_time_weighted_reset_mid_run_under_calendar(self):
        env = Environment(scheduler="calendar")
        signal = TimeWeightedValue(env, initial=2.0)

        def proc(env):
            yield env.timeout(4.0)
            signal.reset(value=1.0)
            yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        assert signal.elapsed == pytest.approx(2.0)
        assert signal.time_average == pytest.approx(1.0)
