"""Tests of Resource / PriorityResource / Store contention primitives."""

import pytest

from repro.des import (
    Environment,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_single_user_gets_resource_immediately(self):
        env = Environment()
        resource = Resource(env)
        grant_times = []

        def user(env):
            with resource.request() as req:
                yield req
                grant_times.append(env.now)
                yield env.timeout(1.0)

        env.process(user(env))
        env.run()
        assert grant_times == [0.0]
        assert resource.count == 0

    def test_second_user_waits_for_first(self):
        env = Environment()
        resource = Resource(env)
        grant_times = {}

        def user(env, name, hold):
            with resource.request() as req:
                yield req
                grant_times[name] = env.now
                yield env.timeout(hold)

        env.process(user(env, "first", 4.0))
        env.process(user(env, "second", 1.0))
        env.run()
        assert grant_times == {"first": 0.0, "second": 4.0}

    def test_fifo_order_among_waiters(self):
        env = Environment()
        resource = Resource(env)
        order = []

        def user(env, name):
            with resource.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1.0)

        for name in ["a", "b", "c", "d"]:
            env.process(user(env, name))
        env.run()
        assert order == ["a", "b", "c", "d"]

    def test_capacity_two_allows_two_concurrent_users(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        grant_times = {}

        def user(env, name):
            with resource.request() as req:
                yield req
                grant_times[name] = env.now
                yield env.timeout(5.0)

        for name in ["a", "b", "c"]:
            env.process(user(env, name))
        env.run()
        assert grant_times["a"] == 0.0
        assert grant_times["b"] == 0.0
        assert grant_times["c"] == 5.0

    def test_explicit_release(self):
        env = Environment()
        resource = Resource(env)
        trace = []

        def user(env):
            request = resource.request()
            yield request
            trace.append(("acquired", env.now, resource.count))
            yield env.timeout(2.0)
            yield resource.release(request)
            trace.append(("released", env.now, resource.count))

        env.process(user(env))
        env.run()
        assert trace == [("acquired", 0.0, 1), ("released", 2.0, 0)]

    def test_cancel_waiting_request_removes_it_from_queue(self):
        env = Environment()
        resource = Resource(env)
        got_it = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(10.0)

        def impatient(env):
            request = resource.request()
            result = yield request | env.timeout(1.0)
            if request not in result:
                request.cancel()
            else:  # pragma: no cover - defensive
                got_it.append(env.now)

        env.process(holder(env))
        env.process(impatient(env))
        env.run()
        assert got_it == []
        assert resource.queue_length == 0

    def test_wait_time_and_grant_accounting(self):
        env = Environment()
        resource = Resource(env)
        waits = []

        def user(env, hold):
            request = resource.request()
            yield request
            waits.append(request.wait_time)
            yield env.timeout(hold)
            request.cancel()

        env.process(user(env, 3.0))
        env.process(user(env, 1.0))
        env.run()
        assert waits == [0.0, 3.0]
        assert resource.total_grants == 2

    def test_wait_time_before_grant_raises(self):
        env = Environment()
        resource = Resource(env)
        # Occupy the resource so the next request stays queued.
        blocker = resource.request()
        assert blocker.triggered
        waiting = resource.request()
        with pytest.raises(SimulationError):
            _ = waiting.wait_time

    def test_busy_and_queue_properties(self):
        env = Environment()
        resource = Resource(env, capacity=1, name="channel")
        first = resource.request()
        second = resource.request()
        assert resource.busy
        assert resource.users == [first]
        assert resource.queue == [second]
        assert "channel" in repr(resource)


class TestPriorityResource:
    def test_higher_priority_request_granted_first(self):
        env = Environment()
        resource = PriorityResource(env)
        order = []

        def holder(env):
            with resource.request(priority=0) as req:
                yield req
                yield env.timeout(5.0)

        def user(env, name, priority, start):
            yield env.timeout(start)
            with resource.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(1.0)

        env.process(holder(env))
        env.process(user(env, "low", 10, start=1.0))
        env.process(user(env, "high", 1, start=2.0))
        env.run()
        assert order == ["high", "low"]

    def test_fifo_within_same_priority(self):
        env = Environment()
        resource = PriorityResource(env)
        order = []

        def holder(env):
            with resource.request(priority=0) as req:
                yield req
                yield env.timeout(3.0)

        def user(env, name, start):
            yield env.timeout(start)
            with resource.request(priority=5) as req:
                yield req
                order.append(name)
                yield env.timeout(1.0)

        env.process(holder(env))
        env.process(user(env, "first", 1.0))
        env.process(user(env, "second", 2.0))
        env.run()
        assert order == ["first", "second"]

    def test_cancelled_waiter_is_skipped(self):
        env = Environment()
        resource = PriorityResource(env)
        order = []

        def holder(env):
            with resource.request(priority=0) as req:
                yield req
                yield env.timeout(5.0)

        def canceller(env):
            yield env.timeout(1.0)
            request = resource.request(priority=1)
            yield env.timeout(1.0)
            request.cancel()

        def patient(env):
            yield env.timeout(1.5)
            with resource.request(priority=2) as req:
                yield req
                order.append(("patient", env.now))

        env.process(holder(env))
        env.process(canceller(env))
        env.process(patient(env))
        env.run()
        assert order == [("patient", 5.0)]


class TestStore:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_put_then_get_round_trips_items_in_fifo_order(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in ["x", "y", "z"]:
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == ["x", "y", "z"]

    def test_get_blocks_until_item_available(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env):
            item = yield store.get()
            received.append((item, env.now))

        def producer(env):
            yield env.timeout(4.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert received == [("late", 4.0)]

    def test_put_blocks_while_store_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        put_times = []

        def producer(env):
            for item in range(2):
                yield store.put(item)
                put_times.append(env.now)

        def consumer(env):
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert put_times == [0.0, 3.0]

    def test_filtered_get_retrieves_matching_item(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            yield store.put({"dest": 1})
            yield store.put({"dest": 2})

        def consumer(env):
            item = yield store.get(lambda msg: msg["dest"] == 2)
            received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == [{"dest": 2}]
        assert store.items == [{"dest": 1}]

    def test_level_and_flags(self):
        env = Environment()
        store = Store(env, capacity=2, name="buffer")
        assert store.is_empty and not store.is_full
        store.put("a")
        store.put("b")
        env.run()
        assert store.level == 2
        assert store.is_full and not store.is_empty
        assert store.total_puts == 2
        assert "buffer" in repr(store)
