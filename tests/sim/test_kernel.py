"""Tests of the direct-dispatch message kernel (:mod:`repro.sim.kernel`).

The FSM realisation must replay the generator specification event for
event: every statistic of a run — latencies, per-cluster tallies, channel
utilisation — must be bit-identical between the two kernels (and under
either event scheduler).  The golden-seed regression pins the dispatch
kernel against the historical fixture; these tests pin the two kernels
against each other directly, so a future edit to one path cannot drift.
"""

import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.sim.simulator import KERNEL_MODES, MultiClusterSimulator
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

SPEC = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="kernel-test")
CONFIG = SimulationConfig(
    measured_messages=400, warmup_messages=40, drain_messages=40, seed=23
)
LAMBDA = 6e-4


def _run(kernel, seed=23):
    simulator = MultiClusterSimulator(
        SPEC, MessageSpec(length_flits=16, flit_bytes=128), config=CONFIG, kernel=kernel
    )
    return simulator.run(LAMBDA, seed=seed)


def _statistics_tuple(result):
    return (
        result.mean_latency,
        result.std_latency,
        result.mean_queueing_delay,
        result.mean_network_latency,
        result.external_fraction,
        result.measurement_time,
        result.throughput,
        tuple((c.cluster, c.count, c.mean_latency, c.std_latency) for c in result.clusters),
        tuple(sorted(result.channel_utilisation.items())),
    )


class TestKernelEquivalence:
    def test_dispatch_and_generator_kernels_are_bit_identical(self):
        dispatch = _run("dispatch")
        generator = _run("generator")
        assert _statistics_tuple(dispatch) == _statistics_tuple(generator)

    def test_dispatch_kernel_is_bit_identical_under_calendar_scheduler(self, monkeypatch):
        dispatch_heap = _run("dispatch")
        monkeypatch.setenv("REPRO_DES_SCHEDULER", "calendar")
        dispatch_calendar = _run("dispatch")
        assert _statistics_tuple(dispatch_heap) == _statistics_tuple(dispatch_calendar)

    def test_generator_kernel_matches_under_calendar_too(self, monkeypatch):
        reference = _run("dispatch")
        monkeypatch.setenv("REPRO_DES_SCHEDULER", "calendar")
        generator_calendar = _run("generator")
        assert _statistics_tuple(reference) == _statistics_tuple(generator_calendar)


class TestKernelSelection:
    def test_default_kernel_is_vectorized(self):
        simulator = MultiClusterSimulator(SPEC, config=CONFIG)
        assert simulator.kernel == "vectorized"
        assert KERNEL_MODES == ("dispatch", "generator", "vectorized")

    def test_env_var_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "generator")
        simulator = MultiClusterSimulator(SPEC, config=CONFIG)
        assert simulator.kernel == "generator"

    def test_explicit_kernel_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "generator")
        simulator = MultiClusterSimulator(SPEC, config=CONFIG, kernel="dispatch")
        assert simulator.kernel == "dispatch"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValidationError):
            MultiClusterSimulator(SPEC, config=CONFIG, kernel="threads")


class TestKernelDiagnostics:
    def test_all_transfers_complete_and_records_recycle(self):
        from repro.sim.simulator import _RunState

        simulator = MultiClusterSimulator(
            SPEC,
            MessageSpec(length_flits=16, flit_bytes=128),
            config=CONFIG,
            kernel="dispatch",
        )
        state = _RunState(simulator, LAMBDA, CONFIG)
        state.execute()
        kernel = state.kernel
        assert kernel is not None
        assert kernel.started >= CONFIG.measured_messages
        # Measurement can stop with drain messages still in flight, but every
        # started transfer either completed or is still holding channels.
        assert 0 <= kernel.in_flight <= kernel.started
        assert kernel.completed == kernel.started - kernel.in_flight
        # The slab never holds more records than transfers that finished.
        assert len(kernel._free) <= kernel.completed

    def test_empty_journey_rejected(self):
        from repro.des import Environment
        from repro.sim.kernel import TransferKernel
        from repro.sim.message import Message
        from repro.sim.network import FlatChannels

        env = Environment()
        kernel = TransferKernel(env, FlatChannels(env, 4), [1.0] * 4)
        message = Message(
            index=0,
            source_cluster=0,
            source_node=0,
            dest_cluster=0,
            dest_node=1,
            length_flits=4,
            created_at=0.0,
        )
        with pytest.raises(ValidationError):
            kernel.start(message, (), 0.0)


class TestEngineUsesKernel:
    def test_api_simulation_engine_runs_on_vectorized_kernel(self):
        scenario = api.scenario(
            "heterogeneous",
            points=2,
            sim=SimulationConfig(
                measured_messages=200, warmup_messages=20, drain_messages=20, seed=5
            ),
        )
        engine = api.SimulationEngine()
        assert engine.simulator_for(scenario).kernel == "vectorized"
        record = engine.evaluate(scenario, scenario.offered_traffic[0])
        assert record.simulation.measured_messages == 200
