"""Tests of the statistics collector and the simulation result record."""

import math

import pytest

from repro.sim.message import Message
from repro.sim.statistics import StatisticsCollector
from repro.utils import ValidationError


def delivered_message(index, source_cluster, dest_cluster, created, injected, delivered):
    message = Message(
        index=index,
        source_cluster=source_cluster,
        source_node=0,
        dest_cluster=dest_cluster,
        dest_node=1,
        length_flits=32,
        created_at=created,
    )
    message.mark_injected(injected)
    message.mark_delivered(delivered)
    return message


class TestStatisticsCollector:
    def test_record_and_result(self):
        collector = StatisticsCollector(num_clusters=2)
        collector.record(delivered_message(0, 0, 1, 0.0, 1.0, 20.0))
        collector.record(delivered_message(1, 1, 1, 5.0, 5.0, 35.0))
        result = collector.result(lambda_g=1e-4, saturated=False)
        assert result.measured_messages == 2
        assert result.mean_latency == pytest.approx(25.0)
        assert result.mean_queueing_delay == pytest.approx(0.5)
        assert result.mean_network_latency == pytest.approx(24.5)
        assert result.external_fraction == pytest.approx(0.5)
        assert result.measurement_time == pytest.approx(15.0)
        assert result.throughput == pytest.approx(2 / 15.0)
        assert not result.saturated

    def test_per_cluster_statistics(self):
        collector = StatisticsCollector(num_clusters=2)
        collector.record(delivered_message(0, 0, 1, 0.0, 0.0, 10.0))
        collector.record(delivered_message(1, 0, 1, 0.0, 0.0, 30.0))
        collector.record(delivered_message(2, 1, 1, 0.0, 0.0, 40.0))
        result = collector.result(lambda_g=1e-4, saturated=False)
        by_cluster = {stats.cluster: stats for stats in result.clusters}
        assert by_cluster[0].count == 2
        assert by_cluster[0].mean_latency == pytest.approx(20.0)
        assert by_cluster[1].count == 1

    def test_unmeasured_message_rejected(self):
        collector = StatisticsCollector(num_clusters=1)
        message = delivered_message(0, 0, 0, 0.0, 0.0, 1.0)
        message.measured = False
        with pytest.raises(ValidationError):
            collector.record(message)

    def test_empty_collector_reports_saturation(self):
        collector = StatisticsCollector(num_clusters=1)
        result = collector.result(lambda_g=1e-4, saturated=False)
        assert result.saturated
        assert math.isinf(result.mean_latency)
        assert result.measured_messages == 0

    def test_confidence_interval_brackets_mean(self):
        collector = StatisticsCollector(num_clusters=1)
        for index in range(100):
            collector.record(delivered_message(index, 0, 0, 0.0, 0.0, 10.0 + index % 7))
        result = collector.result(lambda_g=1e-4, saturated=False)
        low, high = result.confidence_interval
        assert low < result.mean_latency < high

    def test_summary_is_json_friendly(self):
        collector = StatisticsCollector(num_clusters=1)
        collector.record(delivered_message(0, 0, 0, 0.0, 0.0, 10.0))
        summary = collector.result(lambda_g=2e-4, saturated=False).summary()
        assert summary["lambda_g"] == 2e-4
        assert summary["measured_messages"] == 1
        assert isinstance(summary["saturated"], bool)
