"""Tests of the simulation configuration and message records."""

import pytest

from repro.sim import Message, MessagePhase, SimulationConfig
from repro.utils import ValidationError


class TestSimulationConfig:
    def test_defaults_are_consistent(self):
        config = SimulationConfig()
        assert config.total_messages == (
            config.measured_messages + config.warmup_messages + config.drain_messages
        )

    def test_paper_budget(self):
        config = SimulationConfig.paper()
        assert config.measured_messages == 100_000
        assert config.warmup_messages == 10_000
        assert config.drain_messages == 10_000

    def test_quick_budget_is_small(self):
        assert SimulationConfig.quick().total_messages < 3000

    def test_with_seed(self):
        config = SimulationConfig(seed=0)
        other = config.with_seed(42)
        assert other.seed == 42 and config.seed == 0
        assert other.measured_messages == config.measured_messages

    def test_scaled(self):
        config = SimulationConfig(measured_messages=1000, warmup_messages=100, drain_messages=100)
        half = config.scaled(0.5)
        assert half.measured_messages == 500
        assert half.warmup_messages == 50
        with pytest.raises(ValueError):
            config.scaled(0.0)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValidationError):
            SimulationConfig(measured_messages=0)
        with pytest.raises(ValidationError):
            SimulationConfig(warmup_messages=-1)


class TestMessage:
    def make(self, **overrides):
        defaults = dict(
            index=0,
            source_cluster=0,
            source_node=1,
            dest_cluster=2,
            dest_node=3,
            length_flits=32,
            created_at=10.0,
        )
        defaults.update(overrides)
        return Message(**defaults)

    def test_external_flag(self):
        assert self.make().is_external
        assert not self.make(dest_cluster=0).is_external

    def test_phase_transitions(self):
        message = self.make()
        assert message.phase == MessagePhase.QUEUED
        message.mark_injected(12.0)
        assert message.phase == MessagePhase.IN_NETWORK
        message.mark_delivered(30.0)
        assert message.phase == MessagePhase.DELIVERED

    def test_latency_components(self):
        message = self.make()
        message.mark_injected(12.0)
        message.mark_delivered(30.0)
        assert message.latency == pytest.approx(20.0)
        assert message.queueing_delay == pytest.approx(2.0)
        assert message.network_latency == pytest.approx(18.0)

    def test_latency_before_delivery_raises(self):
        message = self.make()
        with pytest.raises(ValidationError):
            _ = message.latency
        with pytest.raises(ValidationError):
            _ = message.queueing_delay
        message.mark_injected(11.0)
        with pytest.raises(ValidationError):
            _ = message.network_latency
