"""Tests of the vectorized event core (:mod:`repro.sim.vector`).

The vectorized kernel executes on flat state — a :class:`FifoRing`
scheduler, pre-drawn workload batches, array-resolved channel grants — but
must replay the FSM specification event for event.  The golden-seed
regression pins it to the historical fixture; these tests pin it against
the dispatch kernel directly, on the paths the fixture does not reach:
lockstep deterministic arrivals (the vectorized header-cohort fast path),
the guard-timeout stop, and the explicit-grant fallback that runs when
delay-0 grant elision cannot be proven safe.
"""

import pytest

from repro import api
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.sim.simulator import MultiClusterSimulator
from repro.sim.vector import VectorizedRunState
from repro.topology.multicluster import MultiClusterSpec
from repro.workloads.poisson import DeterministicArrivals

SPEC = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="vector-test")
MESSAGE = MessageSpec(length_flits=16, flit_bytes=128)
CONFIG = SimulationConfig(
    measured_messages=400, warmup_messages=40, drain_messages=40, seed=31
)
LAMBDA = 6e-4


def _run(kernel, seed=31, config=CONFIG, arrivals_factory=None, lambda_g=LAMBDA):
    simulator = MultiClusterSimulator(
        SPEC,
        MESSAGE,
        config=config,
        kernel=kernel,
        arrivals_factory=arrivals_factory,
    )
    return simulator.run(lambda_g, seed=seed)


def _statistics_tuple(result):
    return (
        result.mean_latency,
        result.std_latency,
        result.mean_queueing_delay,
        result.mean_network_latency,
        result.external_fraction,
        result.measurement_time,
        result.throughput,
        result.saturated,
        tuple(
            (c.cluster, c.count, c.mean_latency, c.std_latency)
            for c in result.clusters
        ),
        tuple(sorted(result.channel_utilisation.items())),
    )


class TestVectorizedMatchesDispatch:
    @pytest.mark.parametrize("seed", [0, 7, 31])
    def test_poisson_run_is_bit_identical(self, seed):
        dispatch = _run("dispatch", seed=seed)
        vectorized = _run("vectorized", seed=seed)
        assert _statistics_tuple(dispatch) == _statistics_tuple(vectorized)

    def test_deterministic_lockstep_exercises_the_batch_path(self, monkeypatch):
        """All sources fire simultaneously: maximal equal-time cohorts.

        Lowering ``VECTOR_BATCH_MIN`` forces even this small system through
        the vectorized header-cohort resolution (gathered hold state,
        stable-sorted first-acquirer wins) instead of the scalar loop.
        """
        monkeypatch.setattr("repro.sim.vector.VECTOR_BATCH_MIN", 2)
        dispatch = _run(
            "dispatch", arrivals_factory=DeterministicArrivals, lambda_g=2e-3
        )
        vectorized = _run(
            "vectorized", arrivals_factory=DeterministicArrivals, lambda_g=2e-3
        )
        assert _statistics_tuple(dispatch) == _statistics_tuple(vectorized)

    def test_guard_timeout_stop_is_bit_identical(self):
        """A run the guard cuts off: saturated flag and partial statistics."""
        config = SimulationConfig(
            measured_messages=4000,
            warmup_messages=40,
            drain_messages=40,
            seed=31,
            max_time=400.0,
        )
        dispatch = _run("dispatch", config=config, lambda_g=2e-3)
        vectorized = _run("vectorized", config=config, lambda_g=2e-3)
        assert dispatch.saturated and vectorized.saturated
        assert _statistics_tuple(dispatch) == _statistics_tuple(vectorized)

    def test_elision_fallback_matches_elided_run(self, monkeypatch):
        """The explicit-grant path and the elided path agree bit for bit.

        Grant elision is an optimisation gated on a provable order-safety
        condition; schedules that fail the proof run the explicit path, so
        the two must be interchangeable wherever both are legal.
        """
        elided = _run("vectorized")
        assert VectorizedRunState(
            MultiClusterSimulator(SPEC, MESSAGE, config=CONFIG, kernel="vectorized"),
            LAMBDA,
            CONFIG,
        )._elide_grants, "fixture schedule should qualify for elision"
        monkeypatch.setattr(
            VectorizedRunState, "_grant_elision_safe", lambda self: False
        )
        explicit = _run("vectorized")
        assert _statistics_tuple(elided) == _statistics_tuple(explicit)

    def test_unknown_arrival_process_disables_elision(self):
        class Erlang2(DeterministicArrivals):
            def next_interarrival(self, rng):
                return float(rng.exponential(0.5) + rng.exponential(0.5))

        simulator = MultiClusterSimulator(
            SPEC, MESSAGE, config=CONFIG, kernel="vectorized",
            arrivals_factory=Erlang2,
        )
        state = VectorizedRunState(simulator, LAMBDA, CONFIG)
        assert not state._elide_grants
