"""Golden-seed regression: the compiled core reproduces the object path.

The compiled-``NetworkCore`` refactor (integer channel ids, precompiled
route tables, flat-array channel state, slotted events) changes the
*representation* of a simulation run, not its behaviour.  The fixture
``golden_seed.json`` was captured with the pre-refactor object-graph
simulator (``ChannelPool`` + per-message ``Route`` construction) at fixed
seeds; this test replays the same scenarios through the public
:class:`repro.api.SimulationEngine` and asserts every statistic —
including per-cluster tallies and channel-utilisation aggregates — is
**bit-identical** (floats are stored as ``float.hex`` strings).

If a future change to the DES kernel, routing compiler or simulator alters
any of these numbers, it changed simulation semantics and must either be a
deliberate, documented behaviour change (re-capture the fixture in the same
commit and say why) or a bug.
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.sim.config import SimulationConfig
from repro.sim.simulator import KERNEL_MODES

GOLDEN_PATH = Path(__file__).with_name("golden_seed.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: The exact budget the fixture was captured with.
GOLDEN_SIM = SimulationConfig(
    measured_messages=600, warmup_messages=60, drain_messages=60, seed=11
)

#: Scenario -> evaluated grid indices (points=4 grid; fixture stores entries
#: in this order).
GRID_INDICES = (0, 2)


def _result_for(name: str, entry_index: int):
    scenario = api.scenario(name, points=4, sim=GOLDEN_SIM)
    lambda_g = scenario.offered_traffic[GRID_INDICES[entry_index]]
    record = api.SimulationEngine().evaluate(scenario, lambda_g)
    return lambda_g, record.simulation


@pytest.mark.parametrize("kernel", KERNEL_MODES)
@pytest.mark.parametrize(
    "name,entry_index",
    [(name, index) for name in sorted(GOLDEN) for index in range(len(GOLDEN[name]))],
)
def test_simulation_statistics_are_bit_identical(name, entry_index, kernel, monkeypatch):
    # Every kernel is pinned to the same fixture: the FSM paths as the
    # executable specification, the vectorized core as the default that
    # must replay it bit for bit.
    monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
    expected = GOLDEN[name][entry_index]
    lambda_g, result = _result_for(name, entry_index)

    assert lambda_g == float.fromhex(expected["lambda_g"])
    assert result.measured_messages == expected["measured_messages"]
    assert result.saturated == expected["saturated"]
    for field, attr in (
        ("mean_latency", result.mean_latency),
        ("std_latency", result.std_latency),
        ("mean_queueing_delay", result.mean_queueing_delay),
        ("mean_network_latency", result.mean_network_latency),
        ("external_fraction", result.external_fraction),
        ("measurement_time", result.measurement_time),
        ("throughput", result.throughput),
    ):
        assert attr == float.fromhex(expected[field]), field
    assert result.confidence_interval[0] == float.fromhex(expected["ci_low"])
    assert result.confidence_interval[1] == float.fromhex(expected["ci_high"])

    clusters = [
        (c.cluster, c.count, c.mean_latency.hex(), c.std_latency.hex())
        for c in result.clusters
    ]
    assert clusters == [tuple(entry) for entry in expected["clusters"]]

    utilisation = {
        key: [value[0].hex(), value[1].hex()]
        for key, value in result.channel_utilisation.items()
    }
    assert utilisation == expected["channel_utilisation"]


def test_golden_covers_required_scenarios():
    """The acceptance bar: >= 3 registered scenarios incl. heterogeneous."""
    assert "heterogeneous" in GOLDEN
    assert len(GOLDEN) >= 3
    for name in GOLDEN:
        assert name in api.scenario_names()
