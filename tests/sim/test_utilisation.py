"""Tests of channel-utilisation accounting (resources, pools, simulator)."""

import pytest

from repro.des import Environment, Resource
from repro.model import MessageSpec
from repro.sim import MultiClusterSimulator, SimulationConfig
from repro.sim.network import ChannelPool
from repro.topology import MPortNTree, MultiClusterSpec
from repro.utils.units import LinkTiming

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=600, warmup_messages=60, drain_messages=60, seed=1)
TIMING = LinkTiming(alpha_net=0.02, alpha_sw=0.01, beta_net=0.002, flit_bytes=256)


class TestResourceBusyTime:
    def test_busy_time_accumulates_on_release(self):
        env = Environment()
        resource = Resource(env)

        def user(env, hold):
            with resource.request() as request:
                yield request
                yield env.timeout(hold)

        env.process(user(env, 3.0))
        env.process(user(env, 2.0))
        env.run()
        assert resource.busy_time == pytest.approx(5.0)

    def test_unreleased_holder_not_counted_yet(self):
        env = Environment()
        resource = Resource(env)
        resource.request()
        env.run()
        assert resource.busy_time == 0.0


class TestPoolUtilisation:
    def test_idle_pool_reports_zero(self):
        env = Environment()
        pool = ChannelPool(env, "net", TIMING)
        assert pool.utilisation(10.0) == (0.0, 0.0)
        assert pool.utilisation(0.0) == (0.0, 0.0)

    def test_single_busy_channel(self):
        env = Environment()
        tree = MPortNTree(4, 2)
        pool = ChannelPool(env, "net", TIMING)
        channel = next(iter(tree.channels()))
        resource = pool.resource(channel)

        def user(env):
            with resource.request() as request:
                yield request
                yield env.timeout(4.0)
            yield env.timeout(6.0)

        env.process(user(env))
        env.run()
        mean, peak = pool.utilisation(10.0)
        assert mean == pytest.approx(0.4)
        assert peak == pytest.approx(0.4)


class TestSimulatorUtilisation:
    @pytest.fixture(scope="class")
    def result(self):
        simulator = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST)
        return simulator.run(6e-4)

    def test_all_networks_reported(self, result):
        assert {"ICN1", "ECN1", "ICN2", "concentrators"} <= set(result.channel_utilisation)

    def test_utilisations_are_fractions(self, result):
        for mean, peak in result.channel_utilisation.values():
            assert 0.0 <= mean <= peak <= 1.0

    def test_bottleneck_named(self, result):
        assert result.bottleneck() in result.channel_utilisation

    def test_utilisation_grows_with_load(self):
        simulator = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST)
        low = simulator.run(1e-4).channel_utilisation
        high = simulator.run(1.2e-3).channel_utilisation
        assert high["ECN1"][1] > low["ECN1"][1]
        assert high["concentrators"][1] > low["concentrators"][1]

    def test_bottleneck_is_external_path_under_uniform_traffic(self, result):
        """Uniform traffic loads the ECN1/ICN2/concentrator side, not the ICN1."""
        utilisation = result.channel_utilisation
        assert utilisation["ICN1"][1] < max(
            utilisation["ECN1"][1], utilisation["ICN2"][1], utilisation["concentrators"][1]
        )

    def test_bottleneck_without_data_is_none(self):
        from repro.sim.statistics import StatisticsCollector

        collector = StatisticsCollector(num_clusters=1)
        empty = collector.result(lambda_g=1e-4, saturated=False)
        assert empty.bottleneck() is None
