"""Tests of channel pools, journey construction and the wormhole process."""

import numpy as np
import pytest

from repro.des import Environment, Resource
from repro.routing import UpDownRouter
from repro.sim.message import Message
from repro.sim.network import ChannelPool
from repro.sim.wormhole import (
    Hop,
    draw_peer,
    inter_cluster_hops,
    intra_cluster_hops,
    wormhole_transfer,
)
from repro.topology import ChannelKind, MPortNTree, MultiClusterSpec, MultiClusterSystem
from repro.utils import ValidationError
from repro.utils.units import LinkTiming

TIMING = LinkTiming(alpha_net=0.02, alpha_sw=0.01, beta_net=0.002, flit_bytes=256)


class TestChannelPool:
    def test_resources_are_created_lazily_and_cached(self):
        env = Environment()
        tree = MPortNTree(4, 2)
        pool = ChannelPool(env, "ICN1", TIMING)
        channel = next(iter(tree.channels()))
        assert pool.touched_channels == 0
        first = pool.resource(channel)
        second = pool.resource(channel)
        assert first is second
        assert pool.touched_channels == 1

    def test_header_time_by_channel_kind(self):
        env = Environment()
        tree = MPortNTree(4, 2)
        pool = ChannelPool(env, "ICN1", TIMING)
        for channel in tree.channels():
            expected = TIMING.t_cn if channel.kind.is_node_channel else TIMING.t_cs
            assert pool.header_time(channel) == pytest.approx(expected)

    def test_hops_for_route(self):
        env = Environment()
        tree = MPortNTree(4, 2)
        pool = ChannelPool(env, "ICN1", TIMING)
        route = UpDownRouter(tree).route(0, 7)
        hops = list(pool.hops_for(route))
        assert len(hops) == route.num_links
        assert all(isinstance(resource, Resource) for resource, _ in hops)

    def test_busy_and_queued_counters(self):
        env = Environment()
        tree = MPortNTree(4, 2)
        pool = ChannelPool(env, "ICN1", TIMING)
        channel = next(iter(tree.channels()))
        resource = pool.resource(channel)
        resource.request()
        resource.request()
        assert pool.busy_channels() == 1
        assert pool.queued_requests() == 1


class TestJourneyConstruction:
    def setup_method(self):
        self.env = Environment()
        self.tree = MPortNTree(4, 2)
        self.pool = ChannelPool(self.env, "net", TIMING)
        self.router = UpDownRouter(self.tree)

    def test_intra_hops_match_route_length(self):
        hops = intra_cluster_hops(self.pool, self.router, 0, 7)
        assert len(hops) == self.tree.distance(0, 7)

    def test_inter_hops_structure(self):
        system = MultiClusterSystem(MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1)))
        icn2_pool = ChannelPool(self.env, "ICN2", TIMING)
        source_pool = ChannelPool(self.env, "ECN1-0", TIMING)
        dest_pool = ChannelPool(self.env, "ECN1-2", TIMING)
        source_router = UpDownRouter(system.cluster(0).ecn1)
        dest_router = UpDownRouter(system.cluster(2).ecn1)
        icn2_router = UpDownRouter(system.icn2)
        concentrator = Resource(self.env, name="conc0")
        dispatcher = Resource(self.env, name="disp2")
        hops = inter_cluster_hops(
            source_pool=source_pool,
            source_router=source_router,
            dest_pool=dest_pool,
            dest_router=dest_router,
            icn2_pool=icn2_pool,
            icn2_router=icn2_router,
            concentrator=concentrator,
            dispatcher=dispatcher,
            source_node=0,
            exit_peer=3,
            dest_node=5,
            entry_peer=0,
            source_concentrator_node=0,
            dest_concentrator_node=2,
            relay_time=TIMING.t_cs,
        )
        resources = [hop.resource for hop in hops]
        assert concentrator in resources
        assert dispatcher in resources
        # Ascending leg + concentrator + ICN2 route + dispatcher + descent.
        ascent = source_router.ascending_leg(0, 3).num_links
        descent = dest_router.descending_leg(0, 5).num_links
        icn2 = icn2_router.route(0, 2).num_links
        assert len(hops) == ascent + 1 + icn2 + 1 + descent

    def test_draw_peer_never_returns_excluded(self):
        rng = np.random.default_rng(0)
        draws = {draw_peer(rng, 8, 3) for _ in range(200)}
        assert 3 not in draws
        assert draws <= set(range(8))

    def test_draw_peer_needs_two_nodes(self):
        with pytest.raises(ValidationError):
            draw_peer(np.random.default_rng(0), 1, 0)


class TestWormholeTransfer:
    def _message(self, length=4):
        return Message(
            index=0,
            source_cluster=0,
            source_node=0,
            dest_cluster=0,
            dest_node=1,
            length_flits=length,
            created_at=0.0,
        )

    def test_unloaded_transfer_time(self):
        env = Environment()
        hops = [Hop(Resource(env), 1.0), Hop(Resource(env), 2.0), Hop(Resource(env), 0.5)]
        message = self._message(length=4)
        delivered = []
        env.process(
            wormhole_transfer(env, message, hops, on_delivered=delivered.append)
        )
        env.run()
        # Header: 1 + 2 + 0.5; body: (4-1) * max(2.0) = 6.
        assert message.delivered_at == pytest.approx(9.5)
        assert delivered == [message]
        assert message.queueing_delay == 0.0

    def test_single_flit_message_has_no_serialisation(self):
        env = Environment()
        hops = [Hop(Resource(env), 1.0), Hop(Resource(env), 1.0)]
        message = self._message(length=1)
        env.process(wormhole_transfer(env, message, hops))
        env.run()
        assert message.delivered_at == pytest.approx(2.0)

    def test_resources_released_after_delivery(self):
        env = Environment()
        resources = [Resource(env), Resource(env)]
        hops = [Hop(resource, 1.0) for resource in resources]
        env.process(wormhole_transfer(env, self._message(), hops))
        env.run()
        assert all(resource.count == 0 for resource in resources)

    def test_blocking_on_a_busy_channel(self):
        env = Environment()
        shared = Resource(env)
        first = self._message()
        second = self._message()
        env.process(wormhole_transfer(env, first, [Hop(shared, 1.0)]))
        env.process(wormhole_transfer(env, second, [Hop(shared, 1.0)]))
        env.run()
        # Second message cannot even inject until the first releases: the
        # first holds the channel for header (1) + serialisation (3) = 4.
        assert first.delivered_at == pytest.approx(4.0)
        assert second.injected_at == pytest.approx(4.0)
        assert second.delivered_at == pytest.approx(8.0)
        assert second.queueing_delay == pytest.approx(4.0)

    def test_empty_hop_list_rejected(self):
        env = Environment()
        with pytest.raises(ValidationError):
            env.process(wormhole_transfer(env, self._message(), []))
            env.run()
