"""End-to-end tests of the multi-cluster wormhole simulator."""

import numpy as np
import pytest

from repro.model import MessageSpec, MultiClusterLatencyModel
from repro.sim import MultiClusterSimulator, SimulationConfig
from repro.topology import MultiClusterSpec
from repro.utils import ValidationError
from repro.workloads import ClusterLocalTraffic, HotspotTraffic

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=600, warmup_messages=60, drain_messages=60, seed=1)


@pytest.fixture(scope="module")
def tiny_run():
    """One shared moderate-load run used by several read-only assertions."""
    simulator = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST)
    return simulator.run(5e-4)


class TestBasicRun:
    def test_measured_message_count(self, tiny_run):
        assert tiny_run.measured_messages == FAST.measured_messages
        assert not tiny_run.saturated

    def test_latency_is_at_least_the_unloaded_transfer_time(self, tiny_run):
        # Any journey needs at least M flit times on its slowest channel.
        assert tiny_run.mean_latency > 32 * 0.276

    def test_components_are_consistent(self, tiny_run):
        assert tiny_run.mean_latency == pytest.approx(
            tiny_run.mean_queueing_delay + tiny_run.mean_network_latency, rel=1e-6
        )
        low, high = tiny_run.confidence_interval
        assert low < tiny_run.mean_latency < high

    def test_external_fraction_matches_uniform_expectation(self, tiny_run):
        # For the tiny system the weighted mean of P_o is about 0.78.
        assert 0.65 < tiny_run.external_fraction < 0.9

    def test_per_cluster_statistics_cover_all_clusters(self, tiny_run):
        assert {stats.cluster for stats in tiny_run.clusters} == {0, 1, 2, 3}
        assert sum(stats.count for stats in tiny_run.clusters) == tiny_run.measured_messages

    def test_throughput_positive(self, tiny_run):
        assert tiny_run.throughput > 0
        assert tiny_run.measurement_time > 0

    def test_wall_clock_recorded(self, tiny_run):
        assert tiny_run.wall_clock_seconds > 0


class TestReproducibility:
    def test_same_seed_same_result(self):
        simulator = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST)
        first = simulator.run(4e-4)
        second = simulator.run(4e-4)
        assert first.mean_latency == second.mean_latency
        assert first.mean_queueing_delay == second.mean_queueing_delay

    def test_different_seed_different_result(self):
        simulator = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST)
        first = simulator.run(4e-4)
        second = simulator.run(4e-4, seed=99)
        assert first.mean_latency != second.mean_latency


class TestLoadBehaviour:
    def test_latency_increases_with_offered_traffic(self):
        simulator = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST)
        low = simulator.run(1e-4)
        high = simulator.run(1.5e-3)
        assert high.mean_latency > low.mean_latency
        assert high.mean_queueing_delay > low.mean_queueing_delay

    def test_longer_messages_increase_latency(self):
        short = MultiClusterSimulator(TINY, MessageSpec(16, 256), config=FAST).run(2e-4)
        long = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST).run(2e-4)
        assert long.mean_latency > short.mean_latency

    def test_latency_curve_runs_each_point(self):
        simulator = MultiClusterSimulator(TINY, MessageSpec(16, 256), config=FAST)
        results = simulator.latency_curve([1e-4, 3e-4])
        assert [result.lambda_g for result in results] == [1e-4, 3e-4]

    def test_invalid_traffic_rejected(self):
        simulator = MultiClusterSimulator(TINY, config=FAST)
        with pytest.raises(ValidationError):
            simulator.run(0.0)


class TestModelAgreement:
    def test_simulation_matches_model_in_steady_state(self):
        """The headline claim of the paper, on a small system and budget."""
        message = MessageSpec(32, 256)
        simulator = MultiClusterSimulator(
            TINY,
            message,
            config=SimulationConfig(
                measured_messages=2500, warmup_messages=250, drain_messages=250, seed=3
            ),
        )
        model = MultiClusterLatencyModel(TINY, message)
        for lambda_g in (1e-4, 4e-4):
            simulated = simulator.run(lambda_g).mean_latency
            predicted = model.mean_latency(lambda_g)
            assert simulated == pytest.approx(predicted, rel=0.15)


class TestPatterns:
    def test_local_traffic_keeps_messages_internal(self):
        simulator = MultiClusterSimulator(
            TINY, MessageSpec(16, 256), config=FAST, pattern=ClusterLocalTraffic(1.0)
        )
        result = simulator.run(3e-4)
        assert result.external_fraction == 0.0

    def test_local_traffic_is_faster_than_uniform(self):
        local = MultiClusterSimulator(
            TINY, MessageSpec(32, 256), config=FAST, pattern=ClusterLocalTraffic(1.0)
        ).run(3e-4)
        uniform = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST).run(3e-4)
        assert local.mean_latency < uniform.mean_latency

    def test_hotspot_traffic_is_slower_than_uniform_at_load(self):
        hotspot = MultiClusterSimulator(
            TINY,
            MessageSpec(32, 256),
            config=FAST,
            pattern=HotspotTraffic(hot_cluster=1, fraction=0.6),
        ).run(9e-4)
        uniform = MultiClusterSimulator(TINY, MessageSpec(32, 256), config=FAST).run(9e-4)
        assert hotspot.mean_latency > uniform.mean_latency
