"""Golden-seed regression for the topology zoo.

Same discipline as ``test_golden_seed.py``, over the zoo registry
scenarios: the fixture ``golden_seed_zoo.json`` was captured (with a
cross-kernel agreement check at capture time) from the compiled stack, and
every kernel must replay each zoo family bit for bit.  Because a zoo
topology compiles to a single degenerate cluster whose traffic is entirely
intra-cluster, bit-identity across kernels holds by the same construction
as the multicluster fixture — this gate is what pins that construction.
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.sim.config import SimulationConfig
from repro.sim.simulator import KERNEL_MODES

GOLDEN_PATH = Path(__file__).with_name("golden_seed_zoo.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: Same capture budget as the multicluster fixture.
GOLDEN_SIM = SimulationConfig(
    measured_messages=600, warmup_messages=60, drain_messages=60, seed=11
)

GRID_INDICES = (0, 2)


def _result_for(name: str, entry_index: int):
    scenario = api.scenario(name, points=4, sim=GOLDEN_SIM)
    lambda_g = scenario.offered_traffic[GRID_INDICES[entry_index]]
    record = api.SimulationEngine().evaluate(scenario, lambda_g)
    return lambda_g, record.simulation


@pytest.mark.parametrize("kernel", KERNEL_MODES)
@pytest.mark.parametrize(
    "name,entry_index",
    [(name, index) for name in sorted(GOLDEN) for index in range(len(GOLDEN[name]))],
)
def test_zoo_statistics_are_bit_identical(name, entry_index, kernel, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
    expected = GOLDEN[name][entry_index]
    lambda_g, result = _result_for(name, entry_index)

    assert lambda_g == float.fromhex(expected["lambda_g"])
    assert result.measured_messages == expected["measured_messages"]
    assert result.saturated == expected["saturated"]
    for field, attr in (
        ("mean_latency", result.mean_latency),
        ("std_latency", result.std_latency),
        ("mean_queueing_delay", result.mean_queueing_delay),
        ("mean_network_latency", result.mean_network_latency),
        ("external_fraction", result.external_fraction),
        ("measurement_time", result.measurement_time),
        ("throughput", result.throughput),
    ):
        assert attr == float.fromhex(expected[field]), field
    assert result.confidence_interval[0] == float.fromhex(expected["ci_low"])
    assert result.confidence_interval[1] == float.fromhex(expected["ci_high"])

    clusters = [
        (c.cluster, c.count, c.mean_latency.hex(), c.std_latency.hex())
        for c in result.clusters
    ]
    assert clusters == [tuple(entry) for entry in expected["clusters"]]

    utilisation = {
        key: [value[0].hex(), value[1].hex()]
        for key, value in result.channel_utilisation.items()
    }
    assert utilisation == expected["channel_utilisation"]


def test_zoo_golden_covers_every_family():
    """One fixture entry per registered zoo family, all registry-resolvable."""
    assert set(GOLDEN) == {"zoo/fattree4", "zoo/tree", "zoo/torus"}
    for name in GOLDEN:
        assert name in api.scenario_names()


def test_zoo_utilisation_reports_single_network_pool():
    """With one degenerate cluster only the 'network' label ever appears."""
    for name, entries in GOLDEN.items():
        for entry in entries:
            assert set(entry["channel_utilisation"]) == {"network"}, name


def test_zoo_never_routes_externally():
    """Every zoo message is intra-cluster: zero external fraction by design."""
    for name, entries in GOLDEN.items():
        for entry in entries:
            assert float.fromhex(entry["external_fraction"]) == 0.0, name
