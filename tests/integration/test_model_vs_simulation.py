"""Integration tests: the analytical model against the simulator end to end.

These are the reproduction-level restatements of the paper's validation claim
on systems small enough for the unit-test budget.  The figure-scale versions
live in ``benchmarks/``.
"""

import math

import pytest

from repro import (
    MessageSpec,
    MultiClusterLatencyModel,
    MultiClusterSimulator,
    MultiClusterSpec,
    SimulationConfig,
)
from repro.workloads import DeterministicArrivals

CONFIG = SimulationConfig(
    measured_messages=2_500, warmup_messages=250, drain_messages=250, seed=9
)


class TestSteadyStateAgreement:
    @pytest.mark.parametrize(
        "heights,m",
        [
            ((1, 2, 2, 1), 4),      # heterogeneous, tiny
            ((2, 2, 2, 2), 4),      # homogeneous
            ((1, 1, 1, 1, 2, 2, 3, 3), 4),  # strongly mixed, 8 clusters
        ],
        ids=["heterogeneous", "homogeneous", "mixed8"],
    )
    def test_model_tracks_simulation_at_moderate_load(self, heights, m):
        spec = MultiClusterSpec(m=m, cluster_heights=heights)
        message = MessageSpec(32, 256)
        model = MultiClusterLatencyModel(spec, message)
        simulator = MultiClusterSimulator(spec, message, config=CONFIG)
        # Probe at 40% of the model's saturation point: well inside the
        # steady-state region where the paper claims (and we require) good
        # agreement; closer to saturation the model is deliberately
        # conservative and the curves separate.
        from repro.model import saturation_point

        probe = 0.4 * saturation_point(model, upper_bound=5e-3)
        predicted = model.mean_latency(probe)
        simulated = simulator.run(probe).mean_latency
        # 25% mirrors the "good degree of accuracy" the paper claims for the
        # steady-state region; on these very small systems the aggregated
        # source-queue approximation is the dominant error term.
        assert predicted == pytest.approx(simulated, rel=0.25)

    def test_zero_load_limit_matches_simulation_at_very_light_load(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1))
        message = MessageSpec(32, 256)
        model = MultiClusterLatencyModel(spec, message)
        simulator = MultiClusterSimulator(spec, message, config=CONFIG)
        simulated = simulator.run(1e-5).mean_latency
        assert simulated == pytest.approx(model.zero_load_latency, rel=0.1)

    def test_model_is_conservative_near_saturation(self):
        """The model saturates no later than the simulated system blows up."""
        spec = MultiClusterSpec(m=4, cluster_heights=(2, 2, 2, 2))
        message = MessageSpec(32, 256)
        model = MultiClusterLatencyModel(spec, message)
        simulator = MultiClusterSimulator(spec, message, config=CONFIG)
        from repro.model import saturation_point

        saturation = saturation_point(model, upper_bound=5e-3)
        # At two thirds of the model's saturation point the simulated system
        # is still clearly in its steady state (latency within a few times
        # the zero-load value), i.e. the model errs on the early side.
        just_below = simulator.run(saturation * 0.65).mean_latency
        assert just_below < 6 * model.zero_load_latency

    def test_simulated_latency_rises_monotonically_toward_saturation(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1))
        message = MessageSpec(32, 256)
        simulator = MultiClusterSimulator(spec, message, config=CONFIG)
        latencies = [simulator.run(lam).mean_latency for lam in (2e-4, 8e-4, 1.6e-3)]
        assert latencies[0] < latencies[1] < latencies[2]


class TestArrivalProcessEffect:
    def test_arrivals_factory_hook_changes_the_workload(self):
        """The simulator honours a non-Poisson arrival process.

        Note that globally synchronised deterministic arrivals are *worse*
        than Poisson for contention (every node injects at the same instants),
        so this test only checks the hook is wired through, not a direction.
        """
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1))
        message = MessageSpec(32, 256)
        poisson = MultiClusterSimulator(spec, message, config=CONFIG).run(1.2e-3)
        deterministic = MultiClusterSimulator(
            spec, message, config=CONFIG, arrivals_factory=DeterministicArrivals
        ).run(1.2e-3)
        assert deterministic.measured_messages == poisson.measured_messages
        assert deterministic.mean_latency != poisson.mean_latency


class TestExternalTrafficShare:
    def test_simulated_external_fraction_matches_weighted_outgoing_probability(self):
        from repro.model.traffic import outgoing_probability

        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1))
        expected = sum(
            spec.cluster_size(i) / spec.total_nodes * outgoing_probability(spec, i)
            for i in range(spec.num_clusters)
        )
        result = MultiClusterSimulator(spec, MessageSpec(16, 256), config=CONFIG).run(3e-4)
        assert result.external_fraction == pytest.approx(expected, abs=0.03)

    def test_per_cluster_message_counts_follow_cluster_sizes(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1))
        result = MultiClusterSimulator(spec, MessageSpec(16, 256), config=CONFIG).run(3e-4)
        counts = {stats.cluster: stats.count for stats in result.clusters}
        total = sum(counts.values())
        for cluster in range(spec.num_clusters):
            share = counts[cluster] / total
            expected = spec.cluster_size(cluster) / spec.total_nodes
            assert share == pytest.approx(expected, abs=0.05)
