"""Property-based tests of cross-module invariants (hypothesis).

These tie the layers together: random system organisations must satisfy the
structural identities the analytical model relies on, and the model itself
must behave monotonically in its inputs.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import MessageSpec, MultiClusterLatencyModel, MultiClusterSpec
from repro.model.probabilities import link_probability_vector
from repro.model.traffic import icn1_rate, outgoing_probability
from repro.routing import UpDownRouter
from repro.topology import MPortNTree


def valid_specs() -> st.SearchStrategy[MultiClusterSpec]:
    """Random constructible organisations (C = 2 k^n_c, small enough to test)."""

    def build(m: int, icn2_height: int, heights: list[int]) -> MultiClusterSpec:
        num_clusters = 2 * (m // 2) ** icn2_height
        padded = (heights * num_clusters)[:num_clusters]
        return MultiClusterSpec(m=m, cluster_heights=tuple(padded))

    return st.builds(
        build,
        m=st.sampled_from([2, 4, 6]),
        icn2_height=st.integers(min_value=1, max_value=2),
        heights=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=8),
    )


@given(spec=valid_specs())
@settings(max_examples=40, deadline=None)
def test_outgoing_probabilities_are_consistent_with_sizes(spec):
    # P_o is in (0,1) and weighting by sizes recovers the global external share.
    total = spec.total_nodes
    for cluster in range(spec.num_clusters):
        p_out = outgoing_probability(spec, cluster)
        assert 0.0 < p_out < 1.0
        assert p_out == pytest.approx((total - spec.cluster_size(cluster)) / (total - 1))


@given(spec=valid_specs(), lambda_g=st.floats(min_value=0.0, max_value=1e-3))
@settings(max_examples=40, deadline=None)
def test_internal_and_external_rates_conserve_generated_traffic(spec, lambda_g):
    internal = sum(icn1_rate(spec, i, lambda_g) for i in range(spec.num_clusters))
    external = sum(
        spec.cluster_size(i) * outgoing_probability(spec, i) * lambda_g
        for i in range(spec.num_clusters)
    )
    assert internal + external == pytest.approx(spec.total_nodes * lambda_g)


@given(spec=valid_specs())
@settings(max_examples=30, deadline=None)
def test_zero_load_latency_is_finite_and_bounded_by_diameter_transfer(spec):
    message = MessageSpec(16, 256)
    model = MultiClusterLatencyModel(spec, message)
    zero_load = model.zero_load_latency
    assert math.isfinite(zero_load)
    # Lower bound: the message must at least be serialised once (M * t_cn).
    assert zero_load >= 16 * 0.276 - 1e-9
    # Upper bound: serialisation plus every hop of the longest possible path
    # (diameters of ECN1 + ICN2 plus concentrator hops), unloaded.
    t_cs = 0.522
    longest_path = 2 * max(spec.cluster_heights) + 2 * spec.icn2_height + 2
    assert zero_load <= 16 * t_cs + longest_path * t_cs + 10


@given(
    spec=valid_specs(),
    loads=st.tuples(
        st.floats(min_value=1e-6, max_value=5e-4), st.floats(min_value=1e-6, max_value=5e-4)
    ),
)
@settings(max_examples=30, deadline=None)
def test_model_latency_is_monotone_in_offered_traffic(spec, loads):
    low, high = sorted(loads)
    model = MultiClusterLatencyModel(spec, MessageSpec(16, 256))
    latency_low = model.mean_latency(low)
    latency_high = model.mean_latency(high)
    if math.isinf(latency_low):
        assert math.isinf(latency_high)
    else:
        assert latency_high >= latency_low - 1e-9


@given(
    m=st.sampled_from([2, 4, 8]),
    n=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_route_length_distribution_matches_link_probability(m, n, data):
    """Routing and Eq. 4 agree: P(route length = 2j) == P_{j,n}."""
    tree = MPortNTree(m, n)
    router = UpDownRouter(tree)
    source = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
    probabilities = link_probability_vector(m, n)
    counts = [0] * n
    for dest in range(tree.num_nodes):
        if dest == source:
            continue
        j = router.route(source, dest).num_links // 2
        counts[j - 1] += 1
    total = tree.num_nodes - 1
    for j in range(1, n + 1):
        assert counts[j - 1] / total == pytest.approx(probabilities[j - 1])


@given(spec=valid_specs())
@settings(max_examples=30, deadline=None)
def test_cluster_latency_weighted_mean_equals_system_mean(spec):
    model = MultiClusterLatencyModel(spec, MessageSpec(16, 256))
    prediction = model.evaluate(1e-4)
    assume(not prediction.saturated)
    weighted = sum(
        weight * cluster.mean
        for weight, cluster in zip(prediction.weights, prediction.clusters)
    )
    assert prediction.mean_latency == pytest.approx(weighted)
