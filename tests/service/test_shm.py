"""Tests of the shared-memory export/attach codecs behind the worker daemon.

Ownership discipline under test: the exporting process owns every segment
and is the only one that unlinks it; attachers map, read, and exit.  The
leak assertions probe the segment by name — a destroyed arena must be
unattachable afterwards, which on Linux is the same thing as no leftover
``/dev/shm/repro_shm*`` entry.
"""

import numpy as np
import pytest

from multiprocessing import shared_memory

from repro.routing.compile import (
    CompiledTreeRoutes,
    clear_route_caches,
    compile_tree_routes,
)
from repro.routing.shm import (
    SharedTreeRoutes,
    attach_route_tables,
    export_route_tables,
    install_route_tables,
)
from repro.topology.compile import CompiledTree, clear_compile_caches, compile_tree
from repro.topology.shm import (
    SEGMENT_PREFIX,
    SharedArena,
    SharedCompiledTree,
    _untrack,
    attach_trees,
    export_trees,
    install_trees,
)
from repro.utils.validation import ValidationError

SHAPE = (4, 2)


@pytest.fixture(autouse=True)
def _fresh_compile_caches():
    """Isolate the module-level compile caches: installs must not leak
    shared views into other tests, and other tests' caches must not shadow
    the export paths here."""
    clear_compile_caches()
    clear_route_caches()
    yield
    clear_compile_caches()
    clear_route_caches()


def segment_exists(name: str) -> bool:
    """Probe a segment by name without letting the tracker adopt it."""
    try:
        probe = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    _untrack(probe)
    probe.close()
    return True


class TestSharedArena:
    ARRAYS = {
        "ints": np.arange(7, dtype=np.int64),
        "bytes": np.array([1, 0, 1], dtype=np.uint8),
        "floats": np.linspace(0.0, 1.0, 5, dtype=np.float64),
    }

    def test_round_trip_preserves_values_and_dtypes(self):
        arena = SharedArena.create(self.ARRAYS)
        try:
            view = SharedArena.attach(arena.manifest())
            for key, expected in self.ARRAYS.items():
                got = view.array(key)
                assert got.dtype == expected.dtype
                np.testing.assert_array_equal(got, expected)
            view.close()
        finally:
            arena.destroy()

    def test_views_alias_the_segment_zero_copy(self):
        arena = SharedArena.create({"a": np.zeros(4, dtype=np.int32)})
        try:
            view = SharedArena.attach(arena.manifest())
            arena.array("a")[2] = 99  # write through the owner...
            assert view.array("a")[2] == 99  # ...visible in the attacher
            view.close()
        finally:
            arena.destroy()

    def test_segment_name_carries_the_sweepable_prefix(self):
        arena = SharedArena.create({"a": np.zeros(1, dtype=np.int8)})
        try:
            assert arena.name.startswith(SEGMENT_PREFIX)
            assert arena.owner
        finally:
            arena.destroy()

    def test_destroy_unlinks_the_segment(self):
        arena = SharedArena.create({"a": np.ones(3, dtype=np.float32)})
        name = arena.name
        assert segment_exists(name)
        arena.destroy()
        assert not segment_exists(name)

    def test_attacher_close_leaves_the_owners_segment_alive(self):
        arena = SharedArena.create({"a": np.ones(3, dtype=np.float32)})
        try:
            view = SharedArena.attach(arena.manifest())
            view.close()
            assert segment_exists(arena.name)  # attacher exit must not unlink
        finally:
            arena.destroy()

    def test_destroy_is_idempotent(self):
        arena = SharedArena.create({"a": np.zeros(2, dtype=np.int16)})
        arena.destroy()
        arena.destroy()  # second unlink finds nothing and stays silent
        assert not segment_exists(arena.name)


class TestSharedTrees:
    def test_attached_tree_matches_the_compiled_arrays(self):
        compiled = compile_tree(*SHAPE)
        assert isinstance(compiled, CompiledTree)
        arena, manifest = export_trees([SHAPE])
        try:
            view_arena, (shared,) = attach_trees(manifest)
            assert isinstance(shared, SharedCompiledTree)
            assert (shared.m, shared.n) == SHAPE
            assert shared.num_nodes == compiled.num_nodes
            assert shared.num_switches == compiled.num_switches
            assert shared.num_channels == compiled.num_channels
            np.testing.assert_array_equal(shared.kind_codes, compiled.kind_codes)
            np.testing.assert_array_equal(
                shared.is_node_channel, compiled.is_node_channel
            )
            np.testing.assert_array_equal(shared.source_ids, compiled.source_ids)
            np.testing.assert_array_equal(shared.target_ids, compiled.target_ids)
            view_arena.close()
        finally:
            arena.destroy()

    def test_duplicate_shapes_export_once(self):
        arena, manifest = export_trees([SHAPE, SHAPE, (4, 2)])
        try:
            assert len(manifest["trees"]) == 1
        finally:
            arena.destroy()

    def test_decompile_surface_refuses_to_cross_the_boundary(self):
        arena, manifest = export_trees([SHAPE])
        try:
            _, (shared,) = attach_trees(manifest)
            with pytest.raises(ValidationError, match="process boundary"):
                shared.channels
            with pytest.raises(ValidationError, match="process boundary"):
                shared.channel_ids
            with pytest.raises(ValidationError, match="process boundary"):
                shared.index_of(None)
            with pytest.raises(ValidationError, match="process boundary"):
                shared.channel_at(0)
        finally:
            arena.destroy()

    def test_install_fills_cache_misses_only(self):
        arena, manifest = export_trees([SHAPE])
        try:
            clear_compile_caches()
            view = install_trees(manifest)
            assert isinstance(compile_tree(*SHAPE), SharedCompiledTree)
            view.close()

            # An owning process with a real compiled tree keeps it: the
            # shared view must never shadow objects this process built.
            clear_compile_caches()
            compiled = compile_tree(*SHAPE)
            view = install_trees(manifest)
            assert compile_tree(*SHAPE) is compiled
            view.close()
        finally:
            arena.destroy()


class TestSharedRoutes:
    def test_attached_tables_match_the_compiled_routes(self):
        real = compile_tree_routes(*SHAPE)
        assert isinstance(real, CompiledTreeRoutes)
        real.ensure_complete()
        arena, manifest = export_route_tables([SHAPE])
        try:
            _, (shared,) = attach_route_tables(manifest)
            assert isinstance(shared, SharedTreeRoutes)
            assert shared.num_nodes == real.num_nodes
            pairs = shared.num_nodes * shared.num_nodes
            assert len(shared.full) == pairs == len(real.full)
            for pair in range(pairs):
                assert shared.full[pair] == real.full[pair]
                assert shared.ascending[pair] == real.ascending[pair]
                assert shared.descending[pair] == real.descending[pair]
                assert shared.full_has_switch[pair] == bool(real.full_has_switch[pair])
        finally:
            arena.destroy()

    def test_diagonal_pairs_have_no_route(self):
        arena, manifest = export_route_tables([SHAPE])
        try:
            _, (shared,) = attach_route_tables(manifest)
            for node in range(shared.num_nodes):
                assert shared.full[node * shared.num_nodes + node] is None
        finally:
            arena.destroy()

    def test_shared_tables_present_a_complete_lazy_shape(self):
        arena, manifest = export_route_tables([SHAPE])
        try:
            _, (shared,) = attach_route_tables(manifest)
            assert shared.lazy is True
            assert shared.compiled_rows == set(range(shared.num_nodes))
            # The fill hooks the system compiler may call are no-ops.
            shared._fill_row(0)
            shared.ensure_pair(0, 1)
            shared.ensure_complete()
        finally:
            arena.destroy()

    def test_install_fills_cache_misses_only(self):
        arena, manifest = export_route_tables([SHAPE])
        try:
            clear_route_caches()
            view = install_route_tables(manifest)
            assert isinstance(compile_tree_routes(*SHAPE), SharedTreeRoutes)
            view.close()

            clear_route_caches()
            real = compile_tree_routes(*SHAPE)
            view = install_route_tables(manifest)
            assert compile_tree_routes(*SHAPE) is real
            view.close()
        finally:
            arena.destroy()
