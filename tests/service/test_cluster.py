"""Tests of distributed campaigns: protocol, runners, coordinator, fleets.

The in-process :class:`RunnerServer` tests exercise the full socket path
(real TCP over loopback, real frames) without subprocess spawn cost; one
fleet test spawns a genuine ``python -m repro runner`` subprocess to prove
the CLI announce/shutdown round trip.  Bit-identity against a sequential
run is the acceptance criterion: sharding a plan over machines must change
wall clock and nothing else.
"""

import json
import socket
import threading

import pytest

from repro import api
from repro.campaign import (
    Campaign,
    CampaignEntry,
    RetryPolicy,
    run_campaign,
)
from repro.model.parameters import MessageSpec
from repro.service.cluster import (
    PROTOCOL_VERSION,
    ClusterBackend,
    LocalRunnerFleet,
    ProtocolError,
    RunnerClient,
    RunnerLost,
    RunnerServer,
    parse_runner_spec,
    recv_frame,
    send_frame,
)
from repro.service.cluster.coordinator import RunnerError
from repro.service.cluster.runner import parse_listen_spec
from repro.sim.config import SimulationConfig
from repro.store import jsonable_record, kernel_switches
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
WIDE = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1), name="wide")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=3)


def scenario_for(system, *, traffic=(4e-4, 8e-4)) -> api.Scenario:
    return api.Scenario(
        system=system,
        message=MessageSpec(32, 256),
        offered_traffic=traffic,
        sim=FAST,
        name=system.name,
    )


def sim_campaign(*, traffic=(4e-4, 8e-4)) -> Campaign:
    return Campaign(
        entries=(
            CampaignEntry(scenario=scenario_for(TINY, traffic=traffic), engines=("sim",)),
            CampaignEntry(scenario=scenario_for(WIDE, traffic=traffic), engines=("sim",)),
        ),
        name="two",
    )


def strip_wall_clock(obj):
    if isinstance(obj, dict):
        return {k: strip_wall_clock(v) for k, v in obj.items() if k != "wall_clock_seconds"}
    if isinstance(obj, list):
        return [strip_wall_clock(v) for v in obj]
    return obj


def canonical(result) -> str:
    return json.dumps(
        [
            [strip_wall_clock(jsonable_record(record)) for record in runset.records]
            for runset in result.runsets
        ],
        sort_keys=True,
    )


# --------------------------------------------------------------------- framing
class TestProtocolFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(a, {"op": "ping", "n": 3})
            assert recv_frame(b) == {"n": 3, "op": "ping"}

    def test_eof_is_connection_error(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)

    def test_oversized_length_prefix_rejected_without_allocation(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                recv_frame(b)

    def test_undecodable_body_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"{not json"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError):
                recv_frame(b)

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"[1, 2, 3]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError):
                recv_frame(b)


# ----------------------------------------------------------------- spec parsing
class TestSpecParsing:
    def test_count_spec(self):
        assert parse_runner_spec("3") == 3

    def test_address_spec(self):
        assert parse_runner_spec("a:1, b:2") == ["a:1", "b:2"]

    @pytest.mark.parametrize("bad", ["", "0", "host", "host:", ":99", "h:notaport", "h:70000"])
    def test_bad_runner_specs_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_runner_spec(bad)

    def test_listen_specs(self):
        assert parse_listen_spec("0") == ("127.0.0.1", 0)
        assert parse_listen_spec(":8080") == ("127.0.0.1", 8080)
        assert parse_listen_spec("0.0.0.0:9") == ("0.0.0.0", 9)

    @pytest.mark.parametrize("bad", ["host:nope", ":-1", "h:99999", "x"])
    def test_bad_listen_specs_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_listen_spec(bad)


# --------------------------------------------------------------------- runners
@pytest.fixture(scope="module")
def runner_pair():
    """Two warm in-process runners shared by the healthy-path tests."""
    with RunnerServer() as first, RunnerServer() as second:
        yield first, second


class TestRunnerServer:
    def test_ping_reports_protocol_mode_and_switches(self, runner_pair):
        server, _ = runner_pair
        client = RunnerClient(server.address)
        try:
            info = client.ping(timeout=5.0)
        finally:
            client.close()
        assert info["protocol"] == PROTOCOL_VERSION
        assert info["mode"] == "inline"
        assert info["workers"] == 1
        assert info["switches"] == kernel_switches()

    def test_kernel_switch_mismatch_refused(self, runner_pair):
        """The bit-identity guard: a runner must never evaluate under
        switches other than the ones the coordinator hashed into its keys."""
        server, _ = runner_pair
        scenario = scenario_for(TINY)
        client = RunnerClient(server.address)
        try:
            with pytest.raises(RunnerError, match="switches mismatch"):
                client.run_chunk(
                    {
                        "op": "run",
                        "protocol": PROTOCOL_VERSION,
                        "engine": "model",
                        "scenario": scenario.to_dict(),
                        "tasks": [{"lambda_hex": (4e-4).hex(), "task_id": "t:model:0"}],
                        "switches": {**kernel_switches(), "REPRO_KERNEL": "bogus"},
                    }
                )
        finally:
            client.close()

    def test_protocol_version_mismatch_refused(self, runner_pair):
        server, _ = runner_pair
        client = RunnerClient(server.address)
        try:
            with pytest.raises(RunnerError, match="protocol mismatch"):
                client.run_chunk({"op": "run", "protocol": 999, "tasks": []})
        finally:
            client.close()

    def test_unknown_engine_is_a_refusal_not_a_crash(self, runner_pair):
        server, _ = runner_pair
        client = RunnerClient(server.address)
        try:
            with pytest.raises(RunnerError, match="malformed run request"):
                client.run_chunk(
                    {
                        "op": "run",
                        "protocol": PROTOCOL_VERSION,
                        "engine": "warp-drive",
                        "scenario": scenario_for(TINY).to_dict(),
                        "tasks": [{"lambda_hex": (4e-4).hex(), "task_id": "t"}],
                        "switches": kernel_switches(),
                    }
                )
        finally:
            client.close()

    def test_run_chunk_round_trips_exact_doubles(self, runner_pair):
        """lambda travels as float.hex(): the runner evaluates the exact
        double the coordinator hashed, and the record comes back rebuilt."""
        server, _ = runner_pair
        scenario = scenario_for(TINY, traffic=(4e-4,))
        client = RunnerClient(server.address)
        try:
            outcomes = client.run_chunk(
                {
                    "op": "run",
                    "protocol": PROTOCOL_VERSION,
                    "engine": "model",
                    "scenario": scenario.to_dict(),
                    "tasks": [{"lambda_hex": (4e-4).hex(), "task_id": "tiny:model:0"}],
                    "switches": kernel_switches(),
                }
            )
        finally:
            client.close()
        (status, record) = outcomes[0]
        assert status == "ok"
        reference = api.run(scenario, engines=("model",)).series("model")[0]
        assert strip_wall_clock(jsonable_record(record)) == strip_wall_clock(
            jsonable_record(reference)
        )


# ----------------------------------------------------------------- coordinator
class TestClusterCampaigns:
    def test_records_bit_identical_to_sequential(self, runner_pair):
        """The acceptance criterion: sharding over two socket runners changes
        wall clock and nothing else."""
        campaign = sim_campaign()
        reference = run_campaign(campaign, store=None)
        backend = ClusterBackend([server.address for server in runner_pair])
        sharded = run_campaign(
            campaign, parallel=True, max_workers=2, backend=backend, store=None
        )
        assert not sharded.failures
        assert canonical(sharded) == canonical(reference)

    def test_work_is_sharded_across_the_fleet(self, runner_pair):
        first, second = runner_pair
        before = first.tasks_evaluated + second.tasks_evaluated
        backend = ClusterBackend([first.address, second.address])
        result = run_campaign(
            sim_campaign(), parallel=True, max_workers=2, backend=backend, store=None
        )
        assert not result.failures
        evaluated = first.tasks_evaluated + second.tasks_evaluated - before
        assert evaluated == 4  # every pooled task ran on some runner, once

    def test_no_live_runners_raises_runner_lost(self):
        # Bind-then-close yields a port with nothing listening on it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        backend = ClusterBackend([f"127.0.0.1:{port}"], connect_timeout=2.0)
        with pytest.raises(RunnerLost):
            run_campaign(
                sim_campaign(), parallel=True, max_workers=2, backend=backend, store=None
            )

    def test_lost_runner_mid_campaign_converges_on_survivors(self, runner_pair):
        """A runner that dies with chunks in flight costs one charged attempt
        per in-flight task; the re-queued tasks land on the survivors and the
        campaign converges to the sequential result."""
        healthy, _ = runner_pair
        flaky = _FlakyRunner()  # answers ping, drops the socket on "run"
        with flaky:
            backend = ClusterBackend([flaky.address, healthy.address])
            campaign = sim_campaign()
            result = run_campaign(
                campaign,
                parallel=True,
                max_workers=2,
                backend=backend,
                store=None,
                retry=RetryPolicy(max_attempts=3),
            )
        assert not result.failures
        assert result.task_retries >= 1
        assert backend.dead_runners() == (flaky.address,)
        assert canonical(result) == canonical(run_campaign(campaign, store=None))

    def test_cluster_requires_at_least_one_address(self):
        with pytest.raises(ValidationError):
            ClusterBackend([])


class _FlakyRunner:
    """A runner that speaks ping, then hangs up on every ``run`` request —
    the socket signature of a machine dying mid-chunk."""

    def __init__(self) -> None:
        self._server = socket.socket()
        self._server.bind(("127.0.0.1", 0))
        self._server.listen()
        self.address = "127.0.0.1:%d" % self._server.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            with conn:
                try:
                    while True:
                        request = recv_frame(conn)
                        if request.get("op") == "ping":
                            send_frame(
                                conn,
                                {
                                    "ok": True,
                                    "protocol": PROTOCOL_VERSION,
                                    "mode": "inline",
                                    "workers": 1,
                                    "switches": kernel_switches(),
                                },
                            )
                        else:
                            return  # drop mid-request: RunnerLost on the peer
                except (ConnectionError, ProtocolError, OSError):
                    continue

    def __enter__(self) -> "_FlakyRunner":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._server.close()
        self._thread.join(timeout=5.0)


# ---------------------------------------------------------------------- fleets
class TestLocalRunnerFleet:
    def test_subprocess_round_trip(self):
        """Spawn one genuine ``python -m repro runner`` subprocess, parse its
        announce line, ping it, and shut it down cleanly."""
        with LocalRunnerFleet(1) as fleet:
            assert len(fleet.addresses) == 1
            client = RunnerClient(fleet.addresses[0], connect_timeout=10.0)
            try:
                info = client.ping(timeout=10.0)
            finally:
                client.close()
            assert info["ok"] is True
            assert info["mode"] == "inline"
            process = fleet.processes[0]
        assert process.poll() is not None  # close() took the runner down

    def test_fleet_count_validated(self):
        with pytest.raises(ValidationError):
            LocalRunnerFleet(0)
