"""Shared-memory export/attach of compiled zoo topologies and routes.

The in-process tests exercise the codecs directly; the daemon test is the
real end-to-end check: spawn-started workers inherit none of this
process's caches, so a zoo campaign on the daemon only works — and only
stays bit-identical — if the whole compiled graph and its route tables
cross through shared memory.
"""

import numpy as np
import pytest

from repro import api
from repro.campaign import Campaign, CampaignEntry, run_campaign
from repro.routing.compile import (
    _GRAPH_ROUTES,
    clear_route_caches,
    compile_graph_routes,
)
from repro.routing.shm import (
    SharedGraphRoutes,
    attach_graph_route_tables,
    export_graph_route_tables,
    install_graph_route_tables,
)
from repro.service.daemon import PersistentPoolBackend, WorkerDaemon
from repro.sim.config import SimulationConfig
from repro.topology.compile import clear_compile_caches
from repro.topology.shm import (
    SharedCompiledGraph,
    attach_graphs,
    export_graphs,
    install_graphs,
)
from repro.topology.zoo import TopologySpec, compile_graph
from repro.utils.validation import ValidationError

SPEC = TopologySpec("torus", {"rows": 3, "cols": 3})


@pytest.fixture(autouse=True)
def _fresh_compile_caches():
    clear_compile_caches()
    clear_route_caches()
    yield
    clear_compile_caches()
    clear_route_caches()


class TestGraphExport:
    def test_attached_graph_matches_the_compiled_arrays(self):
        compiled = compile_graph(SPEC)
        arena, manifest = export_graphs((SPEC,))
        try:
            view_arena, (shared,) = attach_graphs(manifest)
            assert isinstance(shared, SharedCompiledGraph)
            assert shared.token == SPEC.token
            assert shared.num_nodes == compiled.num_nodes
            assert shared.num_switches == compiled.num_switches
            assert shared.num_channels == compiled.num_channels
            for attr in ("kind_codes", "is_node_channel", "source_ids", "target_ids"):
                np.testing.assert_array_equal(
                    getattr(shared, attr), getattr(compiled, attr)
                )
            with pytest.raises(ValidationError):
                shared.channels
            view_arena.close()
        finally:
            arena.destroy()

    def test_duplicate_specs_export_once(self):
        arena, manifest = export_graphs((SPEC, TopologySpec("torus", {"rows": 3, "cols": 3})))
        try:
            assert len(manifest["graphs"]) == 1
        finally:
            arena.destroy()

    def test_install_fills_cache_misses_only(self):
        local = compile_graph(SPEC)
        arena, manifest = export_graphs((SPEC,))
        try:
            # Already compiled locally: the install must not shadow it.
            view = install_graphs(manifest)
            assert compile_graph(SPEC) is local
            view.close()
            # Cleared cache: the install fills the miss with the shared view.
            clear_compile_caches()
            view = install_graphs(manifest)
            installed = compile_graph(SPEC)
            assert isinstance(installed, SharedCompiledGraph)
            view.close()
        finally:
            arena.destroy()


class TestGraphRouteExport:
    def test_attached_tables_match_the_compiled_routes(self):
        shape = compile_graph_routes(SPEC)
        shape.ensure_complete()
        arena, manifest = export_graph_route_tables((SPEC,))
        try:
            view_arena, (shared,) = attach_graph_route_tables(manifest)
            assert isinstance(shared, SharedGraphRoutes)
            assert shared.num_nodes == shape.num_nodes
            pairs = shape.num_nodes * shape.num_nodes
            for pair in range(pairs):
                assert shared.full[pair] == shape.full[pair]
                assert bool(shared.full_has_switch[pair]) == shape.full_has_switch[pair]
            view_arena.close()
        finally:
            arena.destroy()

    def test_install_fills_cache_misses_only(self):
        local = compile_graph_routes(SPEC)
        arena, manifest = export_graph_route_tables((SPEC,))
        try:
            view = install_graph_route_tables(manifest)
            assert compile_graph_routes(SPEC) is local
            view.close()
            clear_route_caches()
            view = install_graph_route_tables(manifest)
            assert isinstance(_GRAPH_ROUTES[SPEC.identity], SharedGraphRoutes)
            view.close()
        finally:
            arena.destroy()


class TestZooDaemon:
    def test_zoo_campaign_on_daemon_is_bit_identical(self):
        sim = SimulationConfig(
            measured_messages=300, warmup_messages=30, drain_messages=30, seed=3
        )
        scenario = api.scenario("zoo/torus", points=2, sim=sim)
        campaign = Campaign(
            entries=(CampaignEntry(scenario=scenario, engines=("sim",)),),
            name="zoo",
        )
        sequential = run_campaign(campaign, parallel=False, store=None)
        with WorkerDaemon(2) as daemon:
            parallel = run_campaign(
                campaign,
                parallel=True,
                max_workers=daemon.max_workers,
                backend=PersistentPoolBackend(daemon),
                store=None,
            )
            # The zoo export produced segments (graph + route arenas).
            assert len(daemon.segment_names()) == 2
            assert daemon.tasks_dispatched > 0
        expected = [record.latency for record in sequential.runsets[0].records]
        actual = [record.latency for record in parallel.runsets[0].records]
        assert actual == expected
