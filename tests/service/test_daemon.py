"""Tests of the persistent worker daemon and its executor backend.

The daemon's workers are *spawn*-started (the serving front-end submits
from threads, and forking a multithreaded process deadlocks), so workers
inherit none of this process's compiled caches — every table they read
arrives through the shared-memory export.  That makes the bit-identity
assertions here a real end-to-end check of the shm path, not a formality.
"""

import json

import pytest

from repro import api
from repro.campaign import (
    Campaign,
    CampaignEntry,
    RetryPolicy,
    run_campaign,
)
from repro.model.parameters import MessageSpec
from repro.service.daemon import PersistentPoolBackend, WorkerDaemon
from repro.sim.config import SimulationConfig
from repro.store import ResultStore, jsonable_record
from repro.topology.multicluster import MultiClusterSpec
from repro.topology.shm import _untrack
from repro.utils.validation import ValidationError


def segment_exists(name: str) -> bool:
    """Probe a segment by name without letting the tracker adopt it."""
    from multiprocessing import shared_memory

    try:
        probe = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    _untrack(probe)
    probe.close()
    return True

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
WIDE = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1), name="wide")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=3)


def scenario_for(system, *, traffic=(4e-4, 8e-4)) -> api.Scenario:
    return api.Scenario(
        system=system,
        message=MessageSpec(32, 256),
        offered_traffic=traffic,
        sim=FAST,
        name=system.name,
    )


def sim_campaign(*, traffic=(4e-4, 8e-4)) -> Campaign:
    return Campaign(
        entries=(
            CampaignEntry(scenario=scenario_for(TINY, traffic=traffic), engines=("sim",)),
            CampaignEntry(scenario=scenario_for(WIDE, traffic=traffic), engines=("sim",)),
        ),
        name="two",
    )


def strip_wall_clock(obj):
    if isinstance(obj, dict):
        return {k: strip_wall_clock(v) for k, v in obj.items() if k != "wall_clock_seconds"}
    if isinstance(obj, list):
        return [strip_wall_clock(v) for v in obj]
    return obj


def canonical(result) -> str:
    return json.dumps(
        [
            [strip_wall_clock(jsonable_record(record)) for record in runset.records]
            for runset in result.runsets
        ],
        sort_keys=True,
    )


def inject_fault(monkeypatch, tmp_path, kind, task_id):
    marker = tmp_path / "fault-marker"
    monkeypatch.setenv(
        "REPRO_CAMPAIGN_FAULT",
        json.dumps({"kind": kind, "task": task_id, "marker": str(marker)}),
    )
    return marker


@pytest.fixture(scope="module")
def daemon():
    """One warm daemon shared by the healthy-path tests (worker spawn is the
    expensive part; fault tests build their own so the injection env var is
    present when *their* workers spawn)."""
    with WorkerDaemon(2) as shared:
        yield shared


def run_on(daemon, campaign, **kwargs):
    kwargs.setdefault("store", None)
    return run_campaign(
        campaign,
        parallel=True,
        max_workers=daemon.max_workers,
        backend=PersistentPoolBackend(daemon),
        **kwargs,
    )


class TestDaemonExecution:
    def test_records_bit_identical_to_sequential(self, daemon):
        """The acceptance criterion: daemon-served records match a clean
        sequential run bit for bit (wall clock aside)."""
        campaign = sim_campaign()
        reference = run_campaign(campaign, store=None)
        served = run_on(daemon, campaign)
        assert not served.failures
        assert canonical(served) == canonical(reference)

    def test_exported_segments_back_the_campaign(self, daemon):
        run_on(daemon, sim_campaign())
        names = daemon.segment_names()
        assert names  # trees + routes crossed into shared memory
        assert all(name.startswith("repro_shm") for name in names)
        assert all(segment_exists(name) for name in names)

    def test_dispatch_counter_counts_submissions(self, daemon):
        before = daemon.tasks_dispatched
        result = run_on(daemon, sim_campaign(traffic=(5e-4,)))
        assert result.cache_misses == 2
        assert daemon.tasks_dispatched == before + 2

    def test_warm_store_requests_bypass_the_workers(self, daemon, tmp_path):
        campaign = sim_campaign(traffic=(6e-4,))
        store = ResultStore(tmp_path / "store")
        cold = run_on(daemon, campaign, store=store)
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        dispatched = daemon.tasks_dispatched
        warm = run_on(daemon, campaign, store=store)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        # The invariant the service's warm path rests on: a fully cached
        # campaign never submits anything to a worker.
        assert daemon.tasks_dispatched == dispatched
        assert canonical(warm) == canonical(cold)

    def test_second_campaign_reuses_the_pool(self, daemon):
        generation = daemon.pool_generation()
        run_on(daemon, sim_campaign(traffic=(7e-4,)))
        assert daemon.pool_generation() == generation  # no pool churn

    def test_stats_surface(self, daemon):
        stats = daemon.stats()
        assert stats["max_workers"] == 2
        assert stats["shared_memory"] is True
        assert stats["closed"] is False
        assert stats["tasks_dispatched"] >= 0
        assert isinstance(stats["worker_pids"], list)
        assert isinstance(stats["shared_memory_segments"], list)
        json.dumps(stats)  # the /health body must be JSON-able


class TestDaemonFaults:
    def test_crash_mid_campaign_requeues_and_restarts_the_pool(
        self, tmp_path, monkeypatch
    ):
        campaign = sim_campaign()
        reference = run_campaign(campaign, store=None)
        marker = inject_fault(monkeypatch, tmp_path, "crash", "tiny:sim:0")
        with WorkerDaemon(2) as daemon:
            recovered = run_on(
                daemon, campaign, retry=RetryPolicy(max_attempts=3)
            )
            assert marker.exists()
            assert daemon.restarts >= 1  # the broken pool was retired in place
            assert daemon.pool_generation() >= 2
        assert recovered.task_retries >= 1
        assert not recovered.failures
        assert canonical(recovered) == canonical(reference)

    def test_collateral_casualty_of_a_crash_is_not_charged(
        self, tmp_path, monkeypatch
    ):
        """Worker-pid tagging at work: with *no* retry budget, the task whose
        worker died is the only failure — the innocent task that broke with
        the same pool re-queues uncharged and completes."""
        campaign = sim_campaign(traffic=(4e-4,))  # two tasks, one per entry
        inject_fault(monkeypatch, tmp_path, "crash", "tiny:sim:0")
        with WorkerDaemon(1) as daemon:  # one worker: serial, deterministic
            result = run_on(
                daemon,
                campaign,
                retry=RetryPolicy(max_attempts=1),
                strict=False,
            )
        assert [failure.task.task_id for failure in result.failures] == ["tiny:sim:0"]
        assert result.task_retries == 0  # the free re-queue is not a retry
        assert len(result.runset("wide").records) == 1  # casualty completed
        assert len(result.runset("tiny").records) == 0

    def test_hung_worker_is_killed_and_the_campaign_recovers(
        self, tmp_path, monkeypatch
    ):
        campaign = sim_campaign(traffic=(4e-4,))
        reference = run_campaign(campaign, store=None)
        marker = inject_fault(monkeypatch, tmp_path, "hang", "wide:sim:0")
        with WorkerDaemon(2) as daemon:
            recovered = run_on(
                daemon,
                campaign,
                retry=RetryPolicy(max_attempts=2, timeout_seconds=2.0),
            )
            assert marker.exists()
            assert daemon.restarts >= 1  # the timeout kill broke the pool
        assert recovered.task_retries >= 1
        assert not recovered.failures
        assert canonical(recovered) == canonical(reference)


class TestDaemonLifecycle:
    def test_shutdown_unlinks_every_shm_segment(self):
        with WorkerDaemon(2) as daemon:
            run_on(daemon, sim_campaign(traffic=(4e-4,)))
            names = daemon.segment_names()
            assert names and all(segment_exists(name) for name in names)
        # Context exit is shutdown(): nothing may survive in /dev/shm.
        assert daemon.segment_names() == ()
        assert all(not segment_exists(name) for name in names)

    def test_shutdown_is_idempotent_and_closes_for_good(self):
        daemon = WorkerDaemon(1).start()
        daemon.shutdown()
        daemon.shutdown()
        assert daemon.stats()["closed"] is True
        with pytest.raises(ValidationError, match="shut down"):
            daemon.submit(
                api.AnalyticalEngine(),
                scenario_for(TINY, traffic=(4e-4,)),
                4e-4,
                "tiny:model:0",
                None,
                named_engine=True,
            )

    def test_shared_memory_opt_out_exports_nothing(self):
        daemon = WorkerDaemon(2, use_shared_memory=False)
        try:
            backend = PersistentPoolBackend(daemon)
            backend.prepare_entry(
                api.SimulationEngine(), scenario_for(TINY, traffic=(4e-4,))
            )
            assert daemon.segment_names() == ()
            assert daemon.stats()["shared_memory"] is False
        finally:
            daemon.shutdown()

    def test_worker_count_floor(self):
        daemon = WorkerDaemon(0)
        try:
            assert daemon.max_workers == 1
        finally:
            daemon.shutdown()
