"""Tests of the asyncio SSE front-end (``repro-multicluster serve``).

The server under test runs in a background thread on an ephemeral port and
is exercised through real ``http.client`` connections — the same byte
stream a curl-driven CI job sees.  Model-only campaigns keep most tests off
the worker pool entirely (inexpensive engines run inline in the serving
executor thread); the one cold/warm simulation test at the end is the
end-to-end acceptance path through spawn workers and shared memory.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro import __version__, api
from repro.campaign import (
    Campaign,
    CampaignEntry,
    CampaignProgress,
    TaskCompleted,
    run_campaign,
)
from repro.model.parameters import MessageSpec
from repro.service import CampaignServer, WorkerDaemon
from repro.service.server import event_name, event_payload
from repro.sim.config import SimulationConfig
from repro.store import ResultStore
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.serialization import to_jsonable
from repro.utils.validation import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
WIDE = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1), name="wide")
FAST = SimulationConfig(measured_messages=300, warmup_messages=30, drain_messages=30, seed=3)


def scenario_for(system, *, traffic=(4e-4, 8e-4)) -> api.Scenario:
    return api.Scenario(
        system=system,
        message=MessageSpec(32, 256),
        offered_traffic=traffic,
        sim=FAST,
        name=system.name,
    )


def model_plan(*systems, traffic=(4e-4, 8e-4)) -> Campaign:
    return Campaign(
        entries=tuple(
            CampaignEntry(scenario=scenario_for(system, traffic=traffic), engines=("model",))
            for system in systems
        ),
        name="served",
    )


def strip_wall_clock(obj):
    if isinstance(obj, dict):
        return {k: strip_wall_clock(v) for k, v in obj.items() if k != "wall_clock_seconds"}
    if isinstance(obj, list):
        return [strip_wall_clock(v) for v in obj]
    return obj


class ServerHandle:
    """A CampaignServer running on its own event-loop thread."""

    def __init__(self, server: CampaignServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)

    def __enter__(self) -> "ServerHandle":
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(timeout=30)
        return self

    def __exit__(self, *exc_info) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()
        self.server.daemon.shutdown()

    @property
    def port(self) -> int:
        return self.server.port

    def request(self, method: str, path: str, body=None):
        """One full HTTP exchange; returns (status, headers, body bytes)."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=300)
        try:
            headers = {"Content-Type": "application/json"} if body is not None else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()  # Connection: close — reads to EOF
            return response.status, dict(response.getheaders()), payload
        finally:
            conn.close()

    def post_plan(self, campaign: Campaign):
        """POST a plan and parse the SSE stream into (name, payload) pairs."""
        status, headers, body = self.request(
            "POST", "/campaigns", json.dumps(campaign.to_dict())
        )
        assert status == 200
        assert headers["Content-Type"] == "text/event-stream"
        events = []
        for frame in body.decode("utf-8").strip().split("\n\n"):
            name = None
            data = []
            for line in frame.split("\n"):
                if line.startswith("event: "):
                    name = line[len("event: "):]
                elif line.startswith("data: "):
                    data.append(line[len("data: "):])
            events.append((name, json.loads("\n".join(data))))
        return events


@pytest.fixture
def handle():
    """A store-less model-only server: no workers ever spawn, so the fixture
    is cheap enough for per-test isolation of the served/active counters."""
    server = CampaignServer(WorkerDaemon(2), store=None)
    with ServerHandle(server) as running:
        yield running


class TestEventCodec:
    def test_event_names_cover_the_stream_vocabulary(self):
        progress = CampaignProgress(0, 4, 0, 0.0)
        assert event_name(progress) == "progress"
        assert event_payload(progress)["total"] == 4

    def test_completed_payload_carries_the_task_id(self):
        result = run_campaign(model_plan(TINY, traffic=(4e-4,)), store=None)
        record = result.runsets[0].records[0]
        from repro.campaign import CampaignExecutor

        task = CampaignExecutor(model_plan(TINY, traffic=(4e-4,)), store=None).tasks()[0]
        event = TaskCompleted(
            task=task, record=record, from_cache=False, done=1, total=1,
            elapsed_seconds=0.1,
        )
        payload = event_payload(event)
        assert event_name(event) == "completed"
        assert payload["task"]["task_id"] == "tiny:model:0"
        assert payload["record"]["lambda_g"] == pytest.approx(4e-4)


class TestHttpSurface:
    def test_health_reports_daemon_and_service_state(self, handle):
        status, headers, body = handle.request("GET", "/health")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["max_workers"] == 2
        assert health["campaigns_served"] == 0
        assert health["active_campaigns"] == 0
        assert health["store"] is None and health["store_backend"] is None

    def test_unknown_route_is_404_with_the_route_list(self, handle):
        status, _, body = handle.request("GET", "/nope")
        assert status == 404
        payload = json.loads(body)
        assert "/nope" in payload["error"]
        assert "POST /campaigns" in payload["routes"]

    def test_malformed_json_plan_is_400(self, handle):
        status, _, body = handle.request("POST", "/campaigns", "{not json")
        assert status == 400
        assert "error" in json.loads(body)

    def test_invalid_plan_is_400_not_a_crash(self, handle):
        status, _, body = handle.request("POST", "/campaigns", json.dumps({"x": 1}))
        assert status == 400
        assert "entries" in json.loads(body)["error"]

    def test_rejected_plan_does_not_count_as_served(self, handle):
        handle.request("POST", "/campaigns", "{not json")
        assert json.loads(handle.request("GET", "/health")[2])["campaigns_served"] == 0


class TestCampaignStreaming:
    def test_stream_opens_with_progress_and_closes_with_the_result(self, handle):
        campaign = model_plan(TINY, WIDE)
        events = handle.post_plan(campaign)
        names = [name for name, _ in events]
        assert names[0] == "progress" and events[0][1]["done"] == 0
        assert names[-1] == "result"
        assert names.count("completed") == campaign.total_tasks
        task_ids = {payload["task"]["task_id"] for name, payload in events if name == "completed"}
        assert task_ids == {"tiny:model:0", "tiny:model:1", "wide:model:0", "wide:model:1"}

    def test_result_payload_matches_a_direct_run(self, handle):
        campaign = model_plan(TINY, WIDE)
        expected = run_campaign(campaign, store=None)
        events = handle.post_plan(campaign)
        result = dict(events)["result"]
        assert result["name"] == "served"
        assert result["labels"] == ["tiny", "wide"]
        assert result["execution"]["tasks"] == 4
        assert result["execution"]["cache_misses"] == 4
        assert result["execution"]["parallel"] is True
        assert result["execution"]["workers"] == 2
        assert result["execution"]["failures"] == []
        served = strip_wall_clock(result["runsets"])
        direct = strip_wall_clock(
            {label: to_jsonable(runset) for label, runset in expected}
        )
        assert served == direct

    def test_campaign_counters_track_the_stream(self, handle):
        handle.post_plan(model_plan(TINY, traffic=(4e-4,)))
        health = json.loads(handle.request("GET", "/health")[2])
        assert health["campaigns_served"] == 1
        assert health["active_campaigns"] == 0

    def test_concurrent_clients_each_get_a_complete_stream(self, handle):
        """Two clients multiplexed onto one daemon at the same time: each SSE
        stream must be complete and carry only its own campaign's tasks."""
        plans = {"tiny": model_plan(TINY), "wide": model_plan(WIDE)}
        streams = {}
        errors = []

        def client(key):
            try:
                streams[key] = handle.post_plan(plans[key])
            except Exception as error:  # noqa: BLE001 - surfaced via the list
                errors.append((key, error))

        threads = [threading.Thread(target=client, args=(key,)) for key in plans]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        for key, events in streams.items():
            names = [name for name, _ in events]
            assert names[-1] == "result"
            completed = [p for name, p in events if name == "completed"]
            assert len(completed) == plans[key].total_tasks
            assert all(p["task"]["task_id"].startswith(f"{key}:") for p in completed)
        health = json.loads(handle.request("GET", "/health")[2])
        assert health["campaigns_served"] == 2
        assert health["active_campaigns"] == 0


class TestServedSimulationCampaigns:
    def test_cold_then_warm_requests_round_trip_the_store(self, tmp_path):
        """The serving acceptance path: a cold POST simulates on the daemon's
        spawn workers, a warm re-POST answers entirely from the SQLite-backed
        store — identical records, no new worker dispatch."""
        campaign = Campaign(
            entries=(
                CampaignEntry(scenario=scenario_for(TINY, traffic=(4e-4,)), engines=("sim",)),
                CampaignEntry(scenario=scenario_for(WIDE, traffic=(4e-4,)), engines=("sim",)),
            ),
            name="cold-warm",
        )
        store = ResultStore(tmp_path / "store", backend="sqlite")
        server = CampaignServer(WorkerDaemon(2), store=store)
        with ServerHandle(server) as handle:
            cold = dict(handle.post_plan(campaign))["result"]
            assert cold["execution"]["cache_misses"] == 2
            assert cold["execution"]["cache_hits"] == 0
            assert cold["execution"]["tasks_dispatched"] == 2
            assert cold["execution"]["store_backend"] == "sqlite"

            warm = dict(handle.post_plan(campaign))["result"]
            assert warm["execution"]["cache_hits"] == 2
            assert warm["execution"]["cache_misses"] == 0
            # Warm requests bypass the workers: nothing new was dispatched.
            assert warm["execution"]["tasks_dispatched"] == 2
            # Cached records are the cold run's bytes, wall clock included.
            assert warm["runsets"] == cold["runsets"]

            # And the daemon-served records match a clean sequential run.
            direct = run_campaign(campaign, store=None)
            assert strip_wall_clock(cold["runsets"]) == strip_wall_clock(
                {label: to_jsonable(runset) for label, runset in direct}
            )


class TestServerConstruction:
    def test_store_argument_validated(self):
        with pytest.raises(ValidationError, match="store"):
            CampaignServer(WorkerDaemon(1), store=123)

    def test_default_daemon_built_from_max_workers(self):
        server = CampaignServer(store=None, max_workers=3)
        try:
            assert server.daemon.max_workers == 3
        finally:
            server.daemon.shutdown()
