"""Tests of the m-port n-tree topology (Eq. 1-2 and its structure)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    ChannelKind,
    FatTreeNode,
    FatTreeSwitch,
    MPortNTree,
    num_nodes_formula,
    num_switches_formula,
)
from repro.utils import ValidationError

# (m, n) combinations small enough for exhaustive checks but covering the
# degenerate n=1 case and both paper switch arities.
SMALL_TREES = [(2, 1), (2, 2), (2, 3), (4, 1), (4, 2), (4, 3), (8, 1), (8, 2), (6, 2)]


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_formula_counts_match_class_counts(m, n):
    tree = MPortNTree(m, n)
    assert tree.num_nodes == num_nodes_formula(m, n)
    assert tree.num_switches == num_switches_formula(m, n)


def test_paper_sizes():
    # The paper's Table 1 building blocks.
    assert num_nodes_formula(8, 1) == 8
    assert num_nodes_formula(8, 2) == 32
    assert num_nodes_formula(8, 3) == 128
    assert num_nodes_formula(4, 3) == 16
    assert num_nodes_formula(4, 4) == 32
    assert num_nodes_formula(4, 5) == 64
    # Eq. 2 examples.
    assert num_switches_formula(8, 3) == 5 * 16
    assert num_switches_formula(4, 5) == 9 * 16


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_switch_level_counts(m, n):
    tree = MPortNTree(m, n)
    per_level = [sum(1 for _ in tree.switches_at_level(level)) for level in range(n)]
    assert per_level == [tree.switches_per_level(level) for level in range(n)]
    assert sum(per_level) == tree.num_switches
    # Root level has half as many switches as the other levels (unless n=1).
    if n > 1:
        assert per_level[-1] * 2 == per_level[0]


class TestValidation:
    def test_odd_port_count_rejected(self):
        with pytest.raises(ValidationError):
            MPortNTree(5, 2)

    def test_zero_levels_rejected(self):
        with pytest.raises(ValidationError):
            MPortNTree(4, 0)

    def test_node_index_out_of_range(self):
        tree = MPortNTree(4, 2)
        with pytest.raises(ValidationError):
            tree.node_address(tree.num_nodes)
        with pytest.raises(ValidationError):
            tree.node_address(-1)

    def test_bad_node_address_rejected(self):
        tree = MPortNTree(4, 2)
        with pytest.raises(ValidationError):
            tree.node_index((0,))  # too short
        with pytest.raises(ValidationError):
            tree.node_index((4, 0))  # first digit out of range
        with pytest.raises(ValidationError):
            tree.node_index((0, 2))  # later digit out of range

    def test_bad_switch_address_rejected(self):
        tree = MPortNTree(4, 3)
        with pytest.raises(ValidationError):
            tree.switch(3, (0, 0))  # level out of range
        with pytest.raises(ValidationError):
            tree.switch(0, (0,))  # wrong length
        with pytest.raises(ValidationError):
            tree.switch(2, (2, 0))  # root digit out of range
        # Level-0 switches may use the extended first digit.
        assert tree.switch(0, (3, 1)) == FatTreeSwitch(0, (3, 1))

    def test_level_out_of_range(self):
        tree = MPortNTree(4, 2)
        with pytest.raises(ValidationError):
            list(tree.switches_at_level(2))


class TestAddressing:
    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_node_address_round_trip(self, m, n):
        tree = MPortNTree(m, n)
        for index in range(tree.num_nodes):
            assert tree.node_index(tree.node_address(index)) == index

    def test_node_addresses_are_unique_and_valid(self):
        tree = MPortNTree(4, 3)
        addresses = {tree.node_address(i) for i in range(tree.num_nodes)}
        assert len(addresses) == tree.num_nodes
        for address in addresses:
            assert 0 <= address[0] < tree.m
            assert all(0 <= digit < tree.k for digit in address[1:])

    def test_explicit_small_tree_addresses(self):
        tree = MPortNTree(4, 2)  # k=2, 8 nodes
        assert tree.node_address(0) == (0, 0)
        assert tree.node_address(1) == (0, 1)
        assert tree.node_address(2) == (1, 0)
        assert tree.node_address(7) == (3, 1)


class TestConnectivity:
    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_every_node_has_a_leaf_switch_serving_it(self, m, n):
        tree = MPortNTree(m, n)
        for node in tree.nodes():
            leaf = tree.leaf_switch_of(node)
            assert leaf.level == 0
            assert node in tree.nodes_of_leaf_switch(leaf)
            assert tree.is_ancestor(leaf, node)

    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_leaf_switches_partition_the_nodes(self, m, n):
        tree = MPortNTree(m, n)
        seen = []
        for leaf in tree.switches_at_level(0):
            seen.extend(node.index for node in tree.nodes_of_leaf_switch(leaf))
        assert sorted(seen) == list(range(tree.num_nodes))

    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_up_down_consistency(self, m, n):
        tree = MPortNTree(m, n)
        for level in range(n - 1):
            for switch in tree.switches_at_level(level):
                for upper in tree.up_switches(switch):
                    assert switch in tree.down_switches(upper)

    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_port_budget_respected(self, m, n):
        tree = MPortNTree(m, n)
        for switch in tree.switches():
            if switch.level == 0:
                down = len(tree.nodes_of_leaf_switch(switch))
            else:
                down = len(tree.down_switches(switch))
            up = len(tree.up_switches(switch))
            assert down + up <= m
            if switch.level == tree.root_level:
                assert up == 0
                assert down == m or (n == 1 and down == m)
            else:
                assert up == m // 2
                assert down == m // 2

    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_channel_count_matches_formula(self, m, n):
        tree = MPortNTree(m, n)
        channels = list(tree.channels())
        assert len(channels) == tree.num_channels
        assert len(channels) == 2 * tree.num_links
        assert tree.num_links == n * tree.num_nodes

    def test_channel_kinds(self):
        tree = MPortNTree(4, 2)
        kinds = [channel.kind for channel in tree.channels()]
        assert kinds.count(ChannelKind.INJECTION) == tree.num_nodes
        assert kinds.count(ChannelKind.EJECTION) == tree.num_nodes
        assert kinds.count(ChannelKind.UP) == kinds.count(ChannelKind.DOWN)

    def test_channel_reversal(self):
        tree = MPortNTree(4, 2)
        for channel in tree.channels():
            reverse = channel.reversed()
            assert reverse.source == channel.target
            assert reverse.target == channel.source
            assert reverse.reversed() == channel

    def test_node_channel_kind_flag(self):
        assert ChannelKind.INJECTION.is_node_channel
        assert ChannelKind.EJECTION.is_node_channel
        assert not ChannelKind.UP.is_node_channel
        assert not ChannelKind.DOWN.is_node_channel

    def test_parent_toward_and_child_toward(self):
        tree = MPortNTree(4, 3)
        node = tree.node(13)
        leaf = tree.leaf_switch_of(node)
        parent = tree.parent_toward(leaf, 1)
        assert parent.level == 1
        assert leaf in tree.down_switches(parent)
        child = tree.child_toward(parent, node)
        assert child == leaf

    def test_parent_toward_invalid_digit(self):
        tree = MPortNTree(4, 2)
        leaf = tree.leaf_switch_of(0)
        with pytest.raises(ValidationError):
            tree.parent_toward(leaf, tree.k)

    def test_parent_of_root_rejected(self):
        tree = MPortNTree(4, 2)
        root = next(tree.switches_at_level(tree.root_level))
        with pytest.raises(ValidationError):
            tree.parent_toward(root, 0)

    def test_child_of_leaf_rejected(self):
        tree = MPortNTree(4, 2)
        leaf = tree.leaf_switch_of(0)
        with pytest.raises(ValidationError):
            tree.child_toward(leaf, 0)

    def test_nodes_of_non_leaf_switch_rejected(self):
        tree = MPortNTree(4, 2)
        root = next(tree.switches_at_level(1))
        with pytest.raises(ValidationError):
            tree.nodes_of_leaf_switch(root)


class TestDistances:
    def test_same_node_distance_zero(self):
        tree = MPortNTree(4, 2)
        assert tree.nca_distance(3, 3) == 0
        assert tree.distance(3, 3) == 0

    def test_same_leaf_switch_distance(self):
        tree = MPortNTree(4, 2)
        # Nodes 0 and 1 share leaf switch (0,): 2 links apart.
        assert tree.distance(0, 1) == 2

    def test_cross_tree_distance_is_diameter(self):
        tree = MPortNTree(4, 3)
        assert tree.distance(0, tree.num_nodes - 1) == 2 * tree.n

    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_distance_symmetry(self, m, n):
        tree = MPortNTree(m, n)
        nodes = list(range(0, tree.num_nodes, max(1, tree.num_nodes // 8)))
        for a in nodes:
            for b in nodes:
                assert tree.distance(a, b) == tree.distance(b, a)

    @pytest.mark.parametrize("m,n", SMALL_TREES)
    def test_distance_range(self, m, n):
        tree = MPortNTree(m, n)
        for a in range(min(tree.num_nodes, 16)):
            for b in range(min(tree.num_nodes, 16)):
                distance = tree.distance(a, b)
                if a == b:
                    assert distance == 0
                else:
                    assert 2 <= distance <= 2 * n
                    assert distance % 2 == 0

    def test_n1_tree_all_pairs_distance_two(self):
        tree = MPortNTree(8, 1)
        for a in range(tree.num_nodes):
            for b in range(tree.num_nodes):
                if a != b:
                    assert tree.distance(a, b) == 2

    @given(
        m=st.sampled_from([2, 4, 6, 8]),
        n=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_nca_is_common_ancestor(self, m, n, data):
        tree = MPortNTree(m, n)
        a = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        b = data.draw(st.integers(min_value=0, max_value=tree.num_nodes - 1))
        j = tree.nca_distance(a, b)
        if j == 0:
            assert a == b
            return
        # There must exist a level-(j-1) switch that is an ancestor of both
        # nodes, and no lower-level switch may be a common ancestor.
        common_levels = [
            switch.level
            for switch in tree.switches()
            if tree.is_ancestor(switch, a) and tree.is_ancestor(switch, b)
        ]
        assert min(common_levels) == j - 1


class TestDunder:
    def test_equality_is_structural(self):
        assert MPortNTree(4, 2) == MPortNTree(4, 2)
        assert MPortNTree(4, 2) != MPortNTree(4, 3)
        assert hash(MPortNTree(4, 2)) == hash(MPortNTree(4, 2))

    def test_equality_with_other_types(self):
        assert MPortNTree(4, 2) != "tree"

    def test_node_and_switch_ordering(self):
        assert FatTreeNode(1) < FatTreeNode(2)
        assert FatTreeSwitch(0, (0,)) < FatTreeSwitch(1, (0,))

    def test_shared_tree_cache(self):
        from repro.topology.fat_tree import shared_tree

        assert shared_tree(4, 2) is shared_tree(4, 2)
