"""Tests of derived topology properties (distances, bisection, counts)."""

import pytest

from repro.topology import (
    MPortNTree,
    MultiClusterSpec,
    MultiClusterSystem,
    bisection_channels,
    channel_count,
    diameter,
    distance_histogram,
    link_count,
    mean_internode_distance,
)
from repro.topology.properties import is_full_bisection, multicluster_summary
from repro.utils import ValidationError

SMALL_TREES = [(2, 1), (2, 2), (4, 1), (4, 2), (4, 3), (8, 1), (8, 2), (6, 2)]


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_link_and_channel_counts(m, n):
    tree = MPortNTree(m, n)
    assert link_count(tree) == n * tree.num_nodes
    assert channel_count(tree) == 2 * link_count(tree)


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_diameter(m, n):
    tree = MPortNTree(m, n)
    assert diameter(tree) == 2 * n
    # The diameter is attained by some pair.
    exhaustive = distance_histogram(tree, exhaustive=True)
    assert max(exhaustive) == 2 * n


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_distance_histogram_closed_form_matches_enumeration(m, n):
    tree = MPortNTree(m, n)
    assert distance_histogram(tree) == distance_histogram(tree, exhaustive=True)


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_histogram_counts_all_ordered_pairs(m, n):
    tree = MPortNTree(m, n)
    total_pairs = sum(distance_histogram(tree).values())
    assert total_pairs == tree.num_nodes * (tree.num_nodes - 1)


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_mean_distance_matches_enumeration(m, n):
    tree = MPortNTree(m, n)
    histogram = distance_histogram(tree, exhaustive=True)
    total_pairs = sum(histogram.values())
    brute_force = sum(d * count for d, count in histogram.items()) / total_pairs
    assert mean_internode_distance(tree) == pytest.approx(brute_force)


def test_mean_distance_needs_two_nodes():
    # Every valid m-port n-tree has at least 2 nodes, so trigger the guard
    # through a synthetic subclass that pretends to be smaller.
    tree = MPortNTree(2, 1)
    assert tree.num_nodes == 2
    assert mean_internode_distance(tree) == pytest.approx(2.0)


@pytest.mark.parametrize("m,n", SMALL_TREES)
def test_full_bisection_bandwidth(m, n):
    tree = MPortNTree(m, n)
    assert bisection_channels(tree) == tree.num_nodes // 2
    assert is_full_bisection(tree)


def test_mean_distance_grows_with_tree_height():
    assert mean_internode_distance(MPortNTree(4, 3)) > mean_internode_distance(MPortNTree(4, 2))


def test_multicluster_summary_fields():
    spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 1, 1), name="tiny")
    system = MultiClusterSystem(spec)
    summary = multicluster_summary(system)
    assert summary["name"] == "tiny"
    assert summary["clusters"] == 4
    assert summary["total_nodes"] == system.total_nodes
    assert summary["heterogeneous"] is True
    assert summary["icn2_height"] == 1
