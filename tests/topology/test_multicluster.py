"""Tests of the heterogeneous multi-cluster system construction."""

import pytest

from repro.topology import ClusterSpec, MultiClusterSpec, MultiClusterSystem
from repro.utils import ValidationError


def table1_large() -> MultiClusterSpec:
    """Table 1, first organisation: N=1120, C=32, m=8."""
    return MultiClusterSpec.from_groups(
        m=8,
        groups=[ClusterSpec(n=1, count=12), ClusterSpec(n=2, count=16), ClusterSpec(n=3, count=4)],
        name="N=1120",
    )


def table1_small() -> MultiClusterSpec:
    """Table 1, second organisation: N=544, C=16, m=4."""
    return MultiClusterSpec.from_groups(
        m=4,
        groups=[ClusterSpec(n=3, count=8), ClusterSpec(n=4, count=3), ClusterSpec(n=5, count=5)],
        name="N=544",
    )


class TestClusterSpec:
    def test_heights_expansion(self):
        assert ClusterSpec(n=2, count=3).heights() == [2, 2, 2]

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValidationError):
            ClusterSpec(n=0, count=1)
        with pytest.raises(ValidationError):
            ClusterSpec(n=1, count=0)


class TestMultiClusterSpec:
    def test_table1_large_matches_paper(self):
        spec = table1_large()
        assert spec.num_clusters == 32
        assert spec.total_nodes == 1120
        assert spec.cluster_sizes[:12] == (8,) * 12
        assert spec.cluster_sizes[12:28] == (32,) * 16
        assert spec.cluster_sizes[28:] == (128,) * 4
        assert spec.icn2_height == 2  # C = 32 = 2 * 4^2
        assert not spec.is_homogeneous

    def test_table1_small_matches_paper(self):
        spec = table1_small()
        assert spec.num_clusters == 16
        assert spec.total_nodes == 544
        assert spec.cluster_sizes[:8] == (16,) * 8
        assert spec.cluster_sizes[8:11] == (32,) * 3
        assert spec.cluster_sizes[11:] == (64,) * 5
        assert spec.icn2_height == 3  # C = 16 = 2 * 2^3
        assert not spec.is_homogeneous

    def test_homogeneous_flag(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(2, 2, 2, 2))
        assert spec.is_homogeneous

    def test_invalid_cluster_count_rejected(self):
        # C = 3 cannot be the node count of a 4-port tree.
        with pytest.raises(ValidationError):
            MultiClusterSpec(m=4, cluster_heights=(1, 1, 1))
        # C = 6 is not 2 * 2^n_c either.
        with pytest.raises(ValidationError):
            MultiClusterSpec(m=4, cluster_heights=(1,) * 6)

    def test_single_cluster_rejected(self):
        with pytest.raises(ValidationError):
            MultiClusterSpec(m=4, cluster_heights=(2,))

    def test_empty_heights_rejected(self):
        with pytest.raises(ValidationError):
            MultiClusterSpec(m=4, cluster_heights=())

    def test_odd_arity_rejected(self):
        with pytest.raises(ValidationError):
            MultiClusterSpec(m=3, cluster_heights=(1, 1))

    def test_bad_height_rejected(self):
        with pytest.raises(ValidationError):
            MultiClusterSpec(m=4, cluster_heights=(1, 0, 1, 1))

    def test_cluster_size_bounds_checked(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1))
        with pytest.raises(ValidationError):
            spec.cluster_size(4)

    def test_describe_mentions_groups(self):
        description = table1_large().describe()
        assert "C=32" in description
        assert "n=1" in description and "n=3" in description

    def test_from_groups_equals_explicit(self):
        explicit = MultiClusterSpec(m=4, cluster_heights=(2, 2, 3, 3))
        grouped = MultiClusterSpec.from_groups(
            m=4, groups=[ClusterSpec(2, 2), ClusterSpec(3, 2)]
        )
        assert explicit.cluster_heights == grouped.cluster_heights


class TestMultiClusterSystem:
    def test_small_system_construction(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 1, 2, 1))
        system = MultiClusterSystem(spec)
        assert system.num_clusters == 4
        assert system.total_nodes == 4 + 4 + 8 + 4
        assert system.cluster_sizes == (4, 4, 8, 4)
        assert system.icn2.num_nodes == 4
        assert len(system.concentrators) == 4

    def test_cluster_networks_have_cluster_size(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1))
        system = MultiClusterSystem(spec)
        for cluster in system.clusters:
            assert cluster.icn1.num_nodes == cluster.num_nodes
            assert cluster.ecn1.num_nodes == cluster.num_nodes

    def test_global_index_round_trip(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 1, 1))
        system = MultiClusterSystem(spec)
        seen = set()
        for cluster_index, node in system.nodes():
            global_index = system.global_index(cluster_index, node.index)
            assert system.locate(global_index) == (cluster_index, node.index)
            seen.add(global_index)
        assert seen == set(range(system.total_nodes))

    def test_global_index_bounds(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1))
        system = MultiClusterSystem(spec)
        with pytest.raises(ValidationError):
            system.global_index(0, 4)
        with pytest.raises(ValidationError):
            system.global_index(4, 0)
        with pytest.raises(ValidationError):
            system.locate(system.total_nodes)

    def test_cluster_of_and_same_cluster(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 1, 1))
        system = MultiClusterSystem(spec)
        assert system.cluster_of(0) == 0
        assert system.cluster_of(4) == 1
        assert system.same_cluster(4, 5)
        assert not system.same_cluster(0, 4)

    def test_concentrators_sit_on_icn2_nodes(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1))
        system = MultiClusterSystem(spec)
        for concentrator in system.concentrators:
            assert concentrator.icn2_node.index == concentrator.cluster_index
            assert system.concentrator(concentrator.cluster_index) is concentrator

    def test_total_switches_adds_all_networks(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 1, 1, 1))
        system = MultiClusterSystem(spec)
        expected = sum(c.icn1.num_switches + c.ecn1.num_switches for c in system.clusters)
        expected += system.icn2.num_switches
        assert system.total_switches == expected

    def test_table1_systems_build(self):
        for spec in (table1_large(), table1_small()):
            system = MultiClusterSystem(spec)
            assert system.total_nodes == spec.total_nodes
            assert system.icn2.num_nodes == spec.num_clusters
