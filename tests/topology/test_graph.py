"""Tests of the networkx exports (structure cross-checks)."""

import networkx as nx
import pytest

from repro.topology import (
    MPortNTree,
    MultiClusterSpec,
    MultiClusterSystem,
    multicluster_to_networkx,
    tree_to_networkx,
)


@pytest.mark.parametrize("m,n", [(2, 2), (4, 1), (4, 2), (4, 3), (8, 2)])
def test_tree_graph_node_and_edge_counts(m, n):
    tree = MPortNTree(m, n)
    graph = tree_to_networkx(tree)
    assert graph.number_of_nodes() == tree.num_nodes + tree.num_switches
    assert graph.number_of_edges() == tree.num_links


@pytest.mark.parametrize("m,n", [(2, 2), (4, 2), (4, 3), (8, 2)])
def test_tree_graph_is_connected(m, n):
    tree = MPortNTree(m, n)
    graph = tree_to_networkx(tree)
    assert nx.is_connected(graph)


def test_tree_graph_shortest_paths_match_nca_distance():
    tree = MPortNTree(4, 3)
    graph = tree_to_networkx(tree)
    label = tree.name
    # Sample a handful of pairs; shortest path in the graph equals 2*j.
    pairs = [(0, 1), (0, 5), (0, 15), (3, 12), (8, 9)]
    for a, b in pairs:
        expected = tree.distance(a, b)
        actual = nx.shortest_path_length(graph, (label, "node", a), (label, "node", b))
        assert actual == expected


def test_tree_graph_directed_doubles_edges():
    tree = MPortNTree(4, 2)
    graph = tree_to_networkx(tree, directed=True)
    assert graph.is_directed()
    assert graph.number_of_edges() == tree.num_channels


def test_tree_graph_node_attributes():
    tree = MPortNTree(4, 2)
    graph = tree_to_networkx(tree, prefix="t")
    kinds = nx.get_node_attributes(graph, "kind")
    assert sum(1 for kind in kinds.values() if kind == "node") == tree.num_nodes
    assert sum(1 for kind in kinds.values() if kind == "switch") == tree.num_switches
    levels = {
        data["level"]
        for _, data in graph.nodes(data=True)
        if data["kind"] == "switch"
    }
    assert levels == set(range(tree.n))


def test_degree_sequence_respects_port_budget():
    tree = MPortNTree(4, 3)
    graph = tree_to_networkx(tree)
    for key, data in graph.nodes(data=True):
        if data["kind"] == "switch":
            assert graph.degree(key) <= tree.m
        else:
            assert graph.degree(key) == 1


class TestMultiClusterGraph:
    def setup_method(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(1, 2, 1, 1))
        self.system = MultiClusterSystem(spec)

    def test_graph_is_connected(self):
        graph = multicluster_to_networkx(self.system)
        assert nx.is_connected(graph)

    def test_concentrators_are_marked(self):
        graph = multicluster_to_networkx(self.system)
        concentrators = [
            key for key, data in graph.nodes(data=True) if data.get("kind") == "concentrator"
        ]
        assert len(concentrators) == self.system.num_clusters

    def test_without_icn1_is_still_connected(self):
        graph = multicluster_to_networkx(self.system, include_icn1=False)
        assert nx.is_connected(graph)

    def test_same_host_edges_present_with_icn1(self):
        graph = multicluster_to_networkx(self.system, include_icn1=True)
        same_host = [
            (a, b) for a, b, data in graph.edges(data=True) if data.get("kind") == "same-host"
        ]
        assert len(same_host) == self.system.total_nodes
