"""Tests of the topology compilation pass (dense ids + flat metadata)."""

import numpy as np
import pytest

from repro.topology import (
    ChannelKind,
    MPortNTree,
    MultiClusterSpec,
    Topology,
    compile_system,
    compile_tree,
)
from repro.topology.compile import KIND_CODES, CompiledSystem
from repro.topology.fat_tree import FatTreeNode
from repro.utils import ValidationError

HETERO = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")


class TestTopologyProtocol:
    def test_m_port_n_tree_satisfies_the_protocol(self):
        assert isinstance(MPortNTree(4, 2), Topology)


class TestCompiledTree:
    @pytest.mark.parametrize("m,n", [(4, 1), (4, 2), (6, 2), (4, 3), (8, 2)])
    def test_channel_ids_are_a_dense_bijection(self, m, n):
        tree = MPortNTree(m, n)
        compiled = compile_tree(m, n)
        assert compiled.num_channels == tree.num_channels
        assert sorted(compiled.channel_ids.values()) == list(range(tree.num_channels))
        for cid, channel in enumerate(compiled.channels):
            assert compiled.index_of(channel) == cid
            assert compiled.channel_at(cid) == channel

    def test_metadata_arrays_match_the_channel_objects(self):
        compiled = compile_tree(4, 2)
        for cid, channel in enumerate(compiled.channels):
            assert compiled.kind_codes[cid] == KIND_CODES[channel.kind]
            assert compiled.is_node_channel[cid] == channel.kind.is_node_channel

    def test_endpoint_ids_distinguish_nodes_and_switches(self):
        compiled = compile_tree(4, 2)
        num_nodes = compiled.num_nodes
        for cid, channel in enumerate(compiled.channels):
            source_id = int(compiled.source_ids[cid])
            if channel.kind == ChannelKind.INJECTION:
                assert isinstance(channel.source, FatTreeNode)
                assert source_id == channel.source.index < num_nodes
            else:
                assert source_id >= num_nodes or channel.kind == ChannelKind.EJECTION
        assert compiled.source_ids.dtype == np.int32

    def test_compile_tree_is_cached_per_shape(self):
        assert compile_tree(4, 2) is compile_tree(4, 2)

    def test_foreign_channel_rejected(self):
        compiled = compile_tree(4, 2)
        other = compile_tree(4, 3)
        with pytest.raises(ValidationError):
            compiled.index_of(other.channels[-1])

    def test_channel_id_out_of_range_rejected(self):
        compiled = compile_tree(4, 2)
        with pytest.raises(ValidationError):
            compiled.channel_at(compiled.num_channels)


class TestCompiledSystem:
    @pytest.fixture(scope="class")
    def core(self) -> CompiledSystem:
        return compile_system(HETERO)

    def test_slot_space_covers_every_network_plus_relays(self, core):
        expected = (
            2 * sum(tree.num_channels for tree in core.icn1_trees)
            + core.icn2_tree.num_channels
            + 2 * HETERO.num_clusters
        )
        assert core.total_slots == expected
        assert len(core.is_node_channel_list) == core.total_slots
        assert len(core.pool_index_list) == core.total_slots

    def test_blocks_are_disjoint_and_ordered(self, core):
        offsets = [*core.icn1_offsets, *core.ecn1_offsets, core.icn2_offset]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)
        assert core.concentrator_base == core.icn2_offset + core.icn2_tree.num_channels
        assert core.dispatcher_base == core.concentrator_base + HETERO.num_clusters

    def test_pool_index_groups_each_block(self, core):
        C = HETERO.num_clusters
        for cluster in range(C):
            start = core.icn1_offsets[cluster]
            assert core.pool_index_list[start] == cluster
            start = core.ecn1_offsets[cluster]
            assert core.pool_index_list[start] == C + cluster
        assert core.pool_index_list[core.icn2_offset] == 2 * C
        assert core.pool_index_list[core.concentrator_slot(0)] == 2 * C + 1
        assert core.pool_labels[2 * C] == "ICN2"
        # Every slot's pool index must be addressable in structures sized by
        # num_pools — relay slots included.
        assert max(core.pool_index_list) < core.num_pools

    def test_relay_slots_are_switch_class(self, core):
        times = core.header_times(t_cn=0.3, t_cs=0.5)
        for cluster in range(HETERO.num_clusters):
            assert times[core.concentrator_slot(cluster)] == 0.5
            assert times[core.dispatcher_slot(cluster)] == 0.5

    def test_header_times_follow_the_node_channel_flag(self, core):
        times = core.header_times(t_cn=0.3, t_cs=0.5)
        for slot, is_node in enumerate(core.is_node_channel_list):
            assert times[slot] == (0.3 if is_node else 0.5)

    def test_compile_system_is_cached_per_spec(self):
        assert compile_system(HETERO) is compile_system(HETERO)

    def test_same_shape_clusters_share_one_compiled_tree(self, core):
        assert core.icn1_trees[0] is core.icn1_trees[3]  # both n=1
        assert core.icn1_trees[1] is core.icn1_trees[2]  # both n=2
        assert core.ecn1_trees[0] is core.icn1_trees[0]
