"""Unit tests for the topology zoo: families, specs, registry, caches."""

import numpy as np
import pytest

from repro.topology.compile import KIND_CODES, clear_compile_caches, compile_system
from repro.topology.fat_tree import ChannelKind
from repro.topology.zoo import (
    CompiledGraph,
    CompiledZooSystem,
    FanoutTree,
    KAryFatTree,
    Torus2D,
    TopologySpec,
    build_topology,
    compile_graph,
    compile_zoo_system,
    register_topology,
    zoo_kinds,
)
from repro.topology.zoo.compile import clear_zoo_compile_caches
from repro.utils.validation import ValidationError


# --------------------------------------------------------------------------- #
# Families
# --------------------------------------------------------------------------- #
class TestKAryFatTree:
    def test_k4_shape(self):
        topo = KAryFatTree(4)
        assert topo.num_nodes == 16
        assert topo.num_switches == 4 + 8 + 8
        # k^2/4 core-agg links per pod pair + (k/2)^2 edge-agg links per pod
        assert topo.num_links == 4 * 2 * 2 + 4 * 4
        topo.validate()

    def test_k_must_be_even(self):
        with pytest.raises(ValidationError):
            KAryFatTree(3)

    def test_hosts_attach_to_edge_switches(self):
        topo = KAryFatTree(4)
        depths = topo.switch_depths()
        for host in range(topo.num_nodes):
            assert depths[topo.host_switch(host)] == 2

    def test_cores_are_multi_root(self):
        """All (k/2)^2 cores sit at depth 0 with no up channels."""
        topo = KAryFatTree(4)
        depths = topo.switch_depths()
        assert depths[: topo.num_cores] == (0,) * topo.num_cores
        children = {child for child, _ in topo.oriented_links()}
        for core in range(topo.num_cores):
            assert core not in children


class TestFanoutTree:
    def test_shape(self):
        topo = FanoutTree(depth=2, fanout=4)
        assert topo.num_switches == 1 + 4
        assert topo.num_nodes == 16
        assert topo.num_links == 4
        topo.validate()

    def test_depth_three(self):
        topo = FanoutTree(depth=3, fanout=2)
        assert topo.num_switches == 1 + 2 + 4
        assert topo.num_nodes == 8
        assert topo.switch_depths() == (0, 1, 1, 2, 2, 2, 2)
        topo.validate()

    def test_fanout_must_be_at_least_two(self):
        with pytest.raises(ValidationError):
            FanoutTree(depth=2, fanout=1)


class TestTorus2D:
    def test_shape(self):
        topo = Torus2D(4, 4)
        assert topo.num_switches == 16
        assert topo.num_nodes == 16
        assert topo.num_links == 32  # 2 links per switch (east + south)
        topo.validate()

    def test_bfs_depths_from_switch_zero(self):
        topo = Torus2D(3, 3)
        depths = topo.switch_depths()
        assert depths[0] == 0
        # Every non-root switch is 1 or 2 wrap-aware hops from (0, 0).
        assert set(depths) == {0, 1, 2}
        topo.validate()

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValidationError):
            Torus2D(2, 4)


def test_orientation_is_acyclic_and_rooted():
    """Every family's UP digraph descends the (depth, id) key strictly."""
    for topo in (KAryFatTree(4), FanoutTree(depth=2, fanout=4), Torus2D(4, 4)):
        depths = topo.switch_depths()
        for child, parent in topo.oriented_links():
            assert (depths[child], child) > (depths[parent], parent)


# --------------------------------------------------------------------------- #
# Specs and the registry
# --------------------------------------------------------------------------- #
class TestTopologySpec:
    def test_builtin_kinds_registered(self):
        assert {"fattree", "tree", "torus"} <= set(zoo_kinds())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            TopologySpec("mobius", {})

    def test_token_encodes_every_parameter(self):
        spec = TopologySpec("torus", {"rows": 4, "cols": 6})
        assert spec.token == "zoo-torus-cols6-rows4"

    def test_identity_distinguishes_parameter_collisions(self):
        a = TopologySpec("torus", {"rows": 4, "cols": 4})
        b = TopologySpec("torus", {"rows": 4, "cols": 6})
        assert a.identity != b.identity
        assert a.token != b.token

    def test_build_matches_direct_construction(self):
        spec = TopologySpec("fattree", {"k": 4})
        topo = build_topology(spec)
        assert isinstance(topo, KAryFatTree)
        assert topo.num_nodes == KAryFatTree(4).num_nodes

    def test_custom_family_registration(self):
        calls = []

        def builder(side: int):
            calls.append(side)
            return Torus2D(side, side)

        register_topology("square-torus", builder)
        try:
            spec = TopologySpec("square-torus", {"side": 3})
            assert build_topology(spec).num_nodes == 9
            assert calls == [3]
        finally:
            from repro.topology.zoo.spec import ZOO_BUILDERS

            ZOO_BUILDERS.pop("square-torus", None)
            clear_zoo_compile_caches()


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
class TestCompiledGraph:
    def test_channel_enumeration_matches_arrays(self):
        spec = TopologySpec("tree", {"depth": 2, "fanout": 4})
        graph = compile_graph(spec)
        topo = build_topology(spec)
        assert graph.num_channels == topo.num_channels
        for cid, channel in enumerate(graph.channels):
            assert graph.channel_ids[channel] == cid
            assert graph.kind_codes[cid] == KIND_CODES[channel.kind]
            assert bool(graph.is_node_channel[cid]) == channel.kind.is_node_channel

    def test_injection_ejection_pairs_lead(self):
        graph = compile_graph(TopologySpec("torus", {"rows": 3, "cols": 3}))
        for host in range(graph.num_nodes):
            assert graph.kind_codes[2 * host] == KIND_CODES[ChannelKind.INJECTION]
            assert graph.kind_codes[2 * host + 1] == KIND_CODES[ChannelKind.EJECTION]

    def test_compile_is_cached_by_identity(self):
        spec = TopologySpec("torus", {"rows": 3, "cols": 3})
        assert compile_graph(spec) is compile_graph(
            TopologySpec("torus", {"rows": 3, "cols": 3})
        )

    def test_colliding_sizes_never_share_arrays(self):
        """Same node count, different family: distinct compiled artifacts."""
        a = compile_graph(TopologySpec("fattree", {"k": 4}))  # 16 hosts
        b = compile_graph(TopologySpec("tree", {"depth": 2, "fanout": 4}))  # 16 hosts
        c = compile_graph(TopologySpec("torus", {"rows": 4, "cols": 4}))  # 16 hosts
        assert a.num_nodes == b.num_nodes == c.num_nodes == 16
        assert a is not b and b is not c and a is not c
        assert len({a.token, b.token, c.token}) == 3
        # fattree(4) and torus(4x4) even share a channel count (96); the
        # wiring arrays still must differ.
        assert a.num_channels == c.num_channels
        assert not np.array_equal(a.source_ids, c.source_ids)


class TestCompiledZooSystem:
    def test_single_cluster_facade(self):
        core = compile_zoo_system(TopologySpec("torus", {"rows": 4, "cols": 4}))
        assert core.system.num_clusters == 1
        assert core.system.total_nodes == 16
        assert core.system.cluster_sizes == (16,)
        assert core.system.locate(7) == (0, 7)
        assert core.system.global_index(0, 7) == 7
        assert core.system.same_cluster(0, 15)

    def test_relay_slots_exist_but_are_outside_graph(self):
        core = compile_zoo_system(TopologySpec("fattree", {"k": 4}))
        assert core.concentrator_base == core.graph.num_channels
        assert core.dispatcher_base == core.graph.num_channels + 1
        assert core.total_slots == core.graph.num_channels + 2
        assert core.num_pools == 4
        assert core.pool_index_list[-2:] == [3, 3]
        assert set(core.pool_index_list[: core.graph.num_channels]) == {0}

    def test_utilisation_labels_are_zoo_specific(self):
        core = compile_zoo_system(TopologySpec("tree", {"depth": 2, "fanout": 4}))
        assert core.utilisation_labels == ("network", "external", "crossing", "relays")

    def test_compile_system_dispatches_on_spec_type(self):
        spec = TopologySpec("torus", {"rows": 3, "cols": 3})
        core = compile_system(spec)
        assert isinstance(core, CompiledZooSystem)
        assert core is compile_zoo_system(spec)


def test_clear_compile_caches_clears_zoo_too():
    spec = TopologySpec("torus", {"rows": 3, "cols": 3})
    before = compile_graph(spec)
    clear_compile_caches()
    after = compile_graph(spec)
    assert before is not after
    assert isinstance(after, CompiledGraph)
