"""Tests of the traffic patterns (destination distributions)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import MultiClusterSpec, MultiClusterSystem
from repro.utils import ValidationError
from repro.workloads import (
    ClusterLocalTraffic,
    HotspotTraffic,
    PermutationTraffic,
    TrafficPattern,
    UniformTraffic,
)


@pytest.fixture(scope="module")
def system() -> MultiClusterSystem:
    return MultiClusterSystem(MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1)))


def draw_many(pattern, system, source_cluster, source_node, count=4000, seed=1):
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(count):
        sample = pattern.sample_destination(rng, system, source_cluster, source_node)
        TrafficPattern.validate_sample(system, source_cluster, source_node, sample)
        samples.append(sample)
    return samples


class TestUniformTraffic:
    def test_never_returns_the_source(self, system):
        samples = draw_many(UniformTraffic(), system, 1, 3, count=2000)
        assert all(not (s.cluster == 1 and s.node == 3) for s in samples)

    def test_all_other_nodes_are_reachable(self, system):
        samples = draw_many(UniformTraffic(), system, 0, 0, count=6000)
        seen = {(s.cluster, s.node) for s in samples}
        expected = {
            (cluster_index, node.index)
            for cluster_index, node in system.nodes()
            if not (cluster_index == 0 and node.index == 0)
        }
        assert seen == expected

    def test_cluster_shares_match_cluster_sizes(self, system):
        samples = draw_many(UniformTraffic(), system, 0, 0, count=12000)
        counts = np.bincount([s.cluster for s in samples], minlength=4)
        frequencies = counts / counts.sum()
        expected = np.array([3, 8, 8, 4]) / 23  # cluster 0 loses the source node
        assert np.allclose(frequencies, expected, atol=0.02)

    def test_describe(self):
        assert UniformTraffic().describe() == "uniform"


class TestHotspotTraffic:
    def test_zero_fraction_behaves_like_uniform(self, system):
        samples = draw_many(HotspotTraffic(hot_cluster=2, fraction=0.0), system, 0, 0)
        hot_share = sum(1 for s in samples if s.cluster == 2) / len(samples)
        assert hot_share == pytest.approx(8 / 23, abs=0.03)

    def test_hot_cluster_receives_the_extra_share(self, system):
        samples = draw_many(HotspotTraffic(hot_cluster=2, fraction=0.5), system, 0, 0)
        hot_share = sum(1 for s in samples if s.cluster == 2) / len(samples)
        expected = 0.5 + 0.5 * 8 / 23
        assert hot_share == pytest.approx(expected, abs=0.03)

    def test_hot_node_mode_targets_single_node(self, system):
        pattern = HotspotTraffic(hot_cluster=1, fraction=1.0, hot_node=5)
        samples = draw_many(pattern, system, 0, 0, count=500)
        assert all(s.cluster == 1 and s.node == 5 for s in samples)

    def test_hot_node_never_sends_to_itself(self, system):
        pattern = HotspotTraffic(hot_cluster=1, fraction=1.0, hot_node=5)
        samples = draw_many(pattern, system, 1, 5, count=500)
        assert all(not (s.cluster == 1 and s.node == 5) for s in samples)

    def test_source_inside_hot_cluster_excluded(self, system):
        pattern = HotspotTraffic(hot_cluster=1, fraction=1.0)
        samples = draw_many(pattern, system, 1, 2, count=2000)
        assert all(s.cluster == 1 for s in samples)
        assert all(s.node != 2 for s in samples)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValidationError):
            HotspotTraffic(hot_cluster=0, fraction=1.5)

    def test_invalid_hot_node_rejected(self, system):
        pattern = HotspotTraffic(hot_cluster=0, fraction=1.0, hot_node=99)
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            pattern.sample_destination(rng, system, 1, 0)

    def test_describe_mentions_target(self):
        assert "cluster 2" in HotspotTraffic(2, 0.3).describe()
        assert "node 7" in HotspotTraffic(2, 0.3, hot_node=7).describe()


class TestClusterLocalTraffic:
    def test_fraction_one_keeps_traffic_inside(self, system):
        samples = draw_many(ClusterLocalTraffic(1.0), system, 1, 0, count=1000)
        assert all(s.cluster == 1 for s in samples)

    def test_fraction_zero_sends_everything_outside(self, system):
        samples = draw_many(ClusterLocalTraffic(0.0), system, 1, 0, count=1000)
        assert all(s.cluster != 1 for s in samples)

    def test_intermediate_fraction_is_respected(self, system):
        samples = draw_many(ClusterLocalTraffic(0.7), system, 2, 3, count=8000)
        local_share = sum(1 for s in samples if s.cluster == 2) / len(samples)
        assert local_share == pytest.approx(0.7, abs=0.03)

    def test_remote_destinations_cover_other_clusters(self, system):
        samples = draw_many(ClusterLocalTraffic(0.0), system, 0, 0, count=4000)
        assert {s.cluster for s in samples} == {1, 2, 3}

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValidationError):
            ClusterLocalTraffic(-0.2)

    def test_describe(self):
        assert "0.25" in ClusterLocalTraffic(0.25).describe()


class TestPermutationTraffic:
    def test_mapping_is_a_derangement(self, system):
        pattern = PermutationTraffic(seed=3)
        mapping = dict(pattern.mapping(system))
        assert sorted(mapping.keys()) == list(range(system.total_nodes))
        assert sorted(mapping.values()) == list(range(system.total_nodes))
        assert all(source != dest for source, dest in mapping.items())

    def test_samples_follow_the_fixed_mapping(self, system):
        pattern = PermutationTraffic(seed=3)
        rng = np.random.default_rng(0)
        sample_a = pattern.sample_destination(rng, system, 0, 1)
        sample_b = pattern.sample_destination(rng, system, 0, 1)
        assert sample_a == sample_b
        partner = pattern.partner_of(system, system.global_index(0, 1))
        assert system.locate(partner) == (sample_a.cluster, sample_a.node)

    def test_same_seed_same_permutation(self, system):
        assert PermutationTraffic(seed=7).mapping(system) == PermutationTraffic(seed=7).mapping(
            system
        )

    def test_different_seeds_differ(self, system):
        assert PermutationTraffic(seed=1).mapping(system) != PermutationTraffic(seed=2).mapping(
            system
        )

    def test_describe(self):
        assert "seed=5" in PermutationTraffic(seed=5).describe()


class TestValidateSample:
    def test_rejects_source_as_destination(self, system):
        from repro.workloads.base import DestinationSample

        with pytest.raises(ValidationError):
            TrafficPattern.validate_sample(system, 0, 0, DestinationSample(0, 0))

    def test_rejects_out_of_range_node(self, system):
        from repro.workloads.base import DestinationSample

        with pytest.raises(ValidationError):
            TrafficPattern.validate_sample(system, 0, 0, DestinationSample(1, 99))


@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    source=st.tuples(st.integers(0, 3), st.integers(0, 3)),
)
@settings(max_examples=25, deadline=None)
def test_patterns_always_produce_valid_samples(fraction, source):
    system = MultiClusterSystem(MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1)))
    rng = np.random.default_rng(0)
    source_cluster, source_node = source
    patterns = [
        UniformTraffic(),
        HotspotTraffic(hot_cluster=2, fraction=fraction),
        ClusterLocalTraffic(fraction),
        PermutationTraffic(seed=0),
    ]
    for pattern in patterns:
        for _ in range(20):
            sample = pattern.sample_destination(rng, system, source_cluster, source_node)
            TrafficPattern.validate_sample(system, source_cluster, source_node, sample)
