"""Batched pre-drawing is bit-identical to sequential generator resumes.

:class:`~repro.workloads.batch.SourceBatcher` feeds the vectorized kernel
from the same pooled PCG64 snapshots the sequential simulator uses.  The
property pinned here is the whole foundation of that kernel's golden-seed
bit-identity: for any seed, rate, chunk size and pattern, the batcher's
arrival times, destinations and concentrator peer draws equal — bit for
bit — what the scalar draw sequence of ``_source_process`` /
``_build_journey`` produces from the same stream snapshots.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.wormhole import draw_peer
from repro.topology.multicluster import MultiClusterSpec, MultiClusterSystem
from repro.utils.rng import RandomStreams, clear_stream_pool
from repro.utils.validation import ValidationError
from repro.workloads.base import ArrivalProcess, TrafficPattern, DestinationSample
from repro.workloads.batch import SourceBatcher, initial_chunk
from repro.workloads.hotspot import HotspotTraffic
from repro.workloads.poisson import DeterministicArrivals, PoissonArrivals
from repro.workloads.uniform import UniformTraffic

#: Heterogeneous shape: cluster sizes differ, so entry-peer draw bounds vary.
SPEC = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="batch-test")
SYSTEM = MultiClusterSystem(SPEC)
CLUSTER_NODES = np.asarray([cluster.num_nodes for cluster in SYSTEM.clusters])


def _scalar_reference(pattern, arrivals, streams, cluster, node, count):
    """The exact draw sequence of the sequential simulator, per source."""
    arrival_rng = streams.get("arrivals", cluster, node)
    dest_rng = streams.get("destinations", cluster, node)
    peer_rng = streams.get("peers", cluster, node)
    now = 0.0
    records = []
    for _ in range(count):
        now = now + arrivals.next_interarrival(arrival_rng)
        sample = pattern.sample_destination(dest_rng, SYSTEM, cluster, node)
        if sample.cluster != cluster:
            exit_peer = draw_peer(peer_rng, int(CLUSTER_NODES[cluster]), node)
            entry_peer = draw_peer(
                peer_rng, int(CLUSTER_NODES[sample.cluster]), sample.node
            )
        else:
            exit_peer = entry_peer = -1
        records.append((now, sample.cluster, sample.node, exit_peer, entry_peer))
    return records


def _batched(pattern, arrivals, streams, cluster, node, count, chunk):
    batcher = SourceBatcher(
        SYSTEM,
        pattern,
        arrivals,
        streams.get("arrivals", cluster, node),
        streams.get("destinations", cluster, node),
        streams.get("peers", cluster, node),
        cluster,
        node,
        CLUSTER_NODES,
        chunk,
    )
    records = []
    for _ in range(count):
        cursor = batcher.cursor
        if batcher.dest_clusters is None:
            batcher.materialize()
        records.append(
            (
                batcher.times[cursor],
                batcher.dest_clusters[cursor],
                batcher.dest_nodes[cursor],
                batcher.exit_peers[cursor],
                batcher.entry_peers[cursor],
            )
        )
        cursor += 1
        if cursor >= batcher.limit:
            batcher.refill()
        batcher.cursor = cursor
    return records


def _patterns():
    return st.sampled_from(
        [UniformTraffic(), HotspotTraffic(hot_cluster=2, fraction=0.4)]
    )


class TestBatchedDrawsMatchSequentialResumes:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=1e-5, max_value=10.0),
        chunk=st.integers(min_value=1, max_value=23),
        count=st.integers(min_value=1, max_value=60),
        cluster=st.integers(min_value=0, max_value=3),
        pattern=_patterns(),
    )
    @settings(max_examples=60, deadline=None)
    def test_poisson_batches_are_bit_identical(
        self, seed, rate, chunk, count, cluster, pattern
    ):
        clear_stream_pool()
        node = seed % int(CLUSTER_NODES[cluster])
        arrivals = PoissonArrivals(rate)
        batched = _batched(
            pattern, arrivals, RandomStreams(seed, pooled=True), cluster, node, count, chunk
        )
        # A fresh pooled family restores every stream to its snapshot, so the
        # scalar reference replays the identical bit stream.
        reference = _scalar_reference(
            pattern, arrivals, RandomStreams(seed, pooled=True), cluster, node, count
        )
        assert batched == reference

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        chunk=st.integers(min_value=1, max_value=9),
        count=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_deterministic_arrivals_chain_identically(self, seed, chunk, count):
        clear_stream_pool()
        arrivals = DeterministicArrivals(3.7e-4)
        batched = _batched(
            UniformTraffic(), arrivals, RandomStreams(seed, pooled=True), 1, 2, count, chunk
        )
        reference = _scalar_reference(
            UniformTraffic(), arrivals, RandomStreams(seed, pooled=True), 1, 2, count
        )
        assert batched == reference

    def test_default_batch_hooks_cover_custom_subclasses(self):
        """Patterns/processes without array overrides batch via the scalar loop."""

        class EveryOtherNode(TrafficPattern):
            def sample_destination(self, rng, system, source_cluster, source_node):
                draw = int(rng.integers(0, system.total_nodes - 1))
                if draw >= system.global_index(source_cluster, source_node):
                    draw += 1
                return DestinationSample(*system.locate(draw))

        class Erlang2(ArrivalProcess):
            def next_interarrival(self, rng):
                return float(rng.exponential(0.5) + rng.exponential(0.5))

            @property
            def rate(self):
                return 1.0

        clear_stream_pool()
        batched = _batched(
            EveryOtherNode(), Erlang2(), RandomStreams(7, pooled=True), 0, 1, 25, 4
        )
        reference = _scalar_reference(
            EveryOtherNode(), Erlang2(), RandomStreams(7, pooled=True), 0, 1, 25
        )
        assert batched == reference


class TestBatcherUnit:
    def test_initial_chunk_scales_with_share(self):
        assert initial_chunk(100, 1000) == 1
        assert initial_chunk(100_000, 100) == 1000
        assert initial_chunk(10**9, 1) == 4096

    def test_single_node_peer_cluster_is_rejected(self):
        spec = MultiClusterSpec(m=2, cluster_heights=(1, 1), name="tiny")
        system = MultiClusterSystem(spec)
        sizes = np.asarray([cluster.num_nodes for cluster in system.clusters])
        clear_stream_pool()
        streams = RandomStreams(3, pooled=True)
        if int(sizes.min()) >= 2:
            pytest.skip("spec cannot express a single-node cluster")
        batcher = SourceBatcher(
            system,
            UniformTraffic(),
            PoissonArrivals(1.0),
            streams.get("arrivals", 0, 0),
            streams.get("destinations", 0, 0),
            streams.get("peers", 0, 0),
            0,
            0,
            sizes,
            8,
        )
        with pytest.raises(ValidationError):
            batcher.materialize()
            batcher.refill()
