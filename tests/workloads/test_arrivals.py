"""Tests of the arrival processes."""

import numpy as np
import pytest

from repro.utils import ValidationError
from repro.workloads import DeterministicArrivals, PoissonArrivals


class TestPoissonArrivals:
    def test_rate_property(self):
        assert PoissonArrivals(0.01).rate == 0.01

    def test_mean_interarrival_matches_rate(self):
        process = PoissonArrivals(0.02)
        rng = np.random.default_rng(0)
        samples = [process.next_interarrival(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(50.0, rel=0.05)

    def test_interarrivals_are_memoryless_like(self):
        """Coefficient of variation of an exponential distribution is 1."""
        process = PoissonArrivals(0.1)
        rng = np.random.default_rng(1)
        samples = np.array([process.next_interarrival(rng) for _ in range(20000)])
        assert np.std(samples) / np.mean(samples) == pytest.approx(1.0, abs=0.05)

    def test_reproducible_given_seeded_generator(self):
        process = PoissonArrivals(0.01)
        a = [process.next_interarrival(np.random.default_rng(7)) for _ in range(3)]
        b = [process.next_interarrival(np.random.default_rng(7)) for _ in range(3)]
        assert a == b

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(0.0)

    def test_describe(self):
        assert "0.01" in PoissonArrivals(0.01).describe()


class TestDeterministicArrivals:
    def test_constant_interarrival(self):
        process = DeterministicArrivals(0.25)
        rng = np.random.default_rng(0)
        assert process.next_interarrival(rng) == 4.0
        assert process.next_interarrival(rng) == 4.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValidationError):
            DeterministicArrivals(-1.0)
