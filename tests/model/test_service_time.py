"""Tests of the per-stage blocking/service-time recursion (Eq. 16-18, 28-29)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.service_time import (
    inter_stage_rates,
    intra_stage_rates,
    journey_latency,
    stage_service_times,
    stage_waiting_time,
    tail_drain_time,
)
from repro.utils import ValidationError

T_CS = 0.522   # paper values for Lm = 256
T_CN = 0.276
M = 32


class TestStageWaitingTime:
    def test_formula(self):
        # W = 0.5 * eta * S^2 (Eq. 16 with Eq. 17).
        assert stage_waiting_time(0.01, 10.0) == pytest.approx(0.5)

    def test_zero_rate_means_no_waiting(self):
        assert stage_waiting_time(0.0, 123.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            stage_waiting_time(-0.1, 1.0)


class TestStageServiceTimes:
    def test_final_stage_service_is_ejection_time(self):
        service, _ = stage_service_times([0.0, 0.0, 0.0], message_length=M, t_cs=T_CS, t_cn=T_CN)
        assert service[-1] == pytest.approx(M * T_CN)

    def test_unloaded_network_has_no_blocking(self):
        service, waiting = stage_service_times(
            [0.0] * 5, message_length=M, t_cs=T_CS, t_cn=T_CN
        )
        assert all(w == 0.0 for w in waiting)
        # All internal stages take exactly M * t_cs.
        assert all(s == pytest.approx(M * T_CS) for s in service[:-1])

    def test_single_stage_journey(self):
        # A 2-link journey (j=1) has one stage beyond injection: the ejection.
        service, waiting = stage_service_times([0.01], message_length=M, t_cs=T_CS, t_cn=T_CN)
        assert service == [pytest.approx(M * T_CN)]
        assert waiting[0] == pytest.approx(0.5 * 0.01 * (M * T_CN) ** 2)

    def test_service_time_grows_toward_the_source(self):
        service, _ = stage_service_times(
            [0.005] * 7, message_length=M, t_cs=T_CS, t_cn=T_CN
        )
        # Every internal stage accumulates the waits of all later stages, so
        # the sequence is non-increasing from stage 0 to the end.
        for earlier, later in zip(service[:-2], service[1:-1]):
            assert earlier >= later

    def test_latency_increases_with_channel_rate(self):
        low = journey_latency([1e-4] * 5, message_length=M, t_cs=T_CS, t_cn=T_CN)
        high = journey_latency([1e-2] * 5, message_length=M, t_cs=T_CS, t_cn=T_CN)
        assert high > low

    def test_latency_increases_with_message_length(self):
        short = journey_latency([1e-3] * 5, message_length=32, t_cs=T_CS, t_cn=T_CN)
        long = journey_latency([1e-3] * 5, message_length=64, t_cs=T_CS, t_cn=T_CN)
        assert long > short

    def test_empty_journey_rejected(self):
        with pytest.raises(ValidationError):
            stage_service_times([], message_length=M, t_cs=T_CS, t_cn=T_CN)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            stage_service_times([0.0], message_length=0, t_cs=T_CS, t_cn=T_CN)
        with pytest.raises(ValidationError):
            stage_service_times([0.0], message_length=M, t_cs=-1.0, t_cn=T_CN)
        with pytest.raises(ValidationError):
            stage_service_times([-0.1], message_length=M, t_cs=T_CS, t_cn=T_CN)

    @given(
        rates=st.lists(st.floats(min_value=0.0, max_value=5e-3), min_size=1, max_size=12),
        message_length=st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=80, deadline=None)
    def test_latency_at_least_unloaded_transfer_time(self, rates, message_length):
        latency = journey_latency(rates, message_length=message_length, t_cs=T_CS, t_cn=T_CN)
        if len(rates) == 1:
            floor = message_length * T_CN
        else:
            floor = message_length * T_CS
        assert latency >= floor - 1e-12

    @given(rate=st.floats(min_value=0.0, max_value=1e-2), stages=st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_rate(self, rate, stages):
        base = journey_latency([rate] * stages, message_length=M, t_cs=T_CS, t_cn=T_CN)
        bumped = journey_latency([rate * 1.5 + 1e-5] * stages, message_length=M, t_cs=T_CS, t_cn=T_CN)
        assert bumped >= base


class TestStageRateVectors:
    def test_intra_vector_length_is_2j_minus_1(self):
        assert len(intra_stage_rates(1, 0.1)) == 1
        assert len(intra_stage_rates(3, 0.1)) == 5

    def test_inter_vector_length_is_j_plus_2h_plus_l_minus_1(self):
        rates = inter_stage_rates(2, 3, 1, 0.1, 0.2)
        assert len(rates) == 2 + 2 * 1 + 3 - 1

    def test_inter_vector_segments(self):
        rates = inter_stage_rates(3, 2, 2, 0.1, 0.9)
        # j-1 = 2 ECN1 stages, 2h = 4 ICN2 stages, l = 2 ECN1 stages.
        assert rates[:2] == [0.1, 0.1]
        assert rates[2:6] == [0.9, 0.9, 0.9, 0.9]
        assert rates[6:] == [0.1, 0.1]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            intra_stage_rates(0, 0.1)
        with pytest.raises(ValidationError):
            inter_stage_rates(1, 0, 1, 0.1, 0.1)
        with pytest.raises(ValidationError):
            inter_stage_rates(1, 1, 1, -0.1, 0.1)


class TestTailDrain:
    def test_formula(self):
        # (K-1) switch channels plus the final node channel (Eq. 24).
        assert tail_drain_time(5, t_cs=T_CS, t_cn=T_CN) == pytest.approx(4 * T_CS + T_CN)

    def test_single_stage(self):
        assert tail_drain_time(1, t_cs=T_CS, t_cn=T_CN) == pytest.approx(T_CN)

    def test_invalid_rejected(self):
        with pytest.raises(ValidationError):
            tail_drain_time(0, t_cs=T_CS, t_cn=T_CN)
