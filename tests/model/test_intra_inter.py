"""Tests of the intra-cluster (Eq. 3, 23-25) and inter-cluster (Eq. 26-34) components."""

import math

import pytest

from repro.model.inter import inter_cluster_latency, pair_latency
from repro.model.intra import intra_cluster_latency
from repro.model.parameters import MessageSpec, ModelParameters
from repro.model.service_time import tail_drain_time
from repro.utils import ValidationError


def params_at(spec, lambda_g, message=MessageSpec(32, 256)):
    return ModelParameters(spec=spec, message=message, lambda_g=lambda_g)


class TestIntraCluster:
    def test_zero_load_components(self, tiny_spec):
        params = params_at(tiny_spec, 0.0)
        result = intra_cluster_latency(params, 1)
        assert result.waiting_time == 0.0
        assert not result.saturated
        # Zero-load network latency equals M*t_cs for any multi-stage journey
        # weighted with M*t_cn for the single-stage (same-leaf) journeys.
        assert result.network_latency > 0
        assert result.total == pytest.approx(
            result.network_latency + result.tail_time
        )

    def test_single_switch_cluster_zero_load_latency(self, tiny_spec):
        # Cluster 0 has height 1: every internal journey is 2 links, so the
        # header time is M*t_cn and the tail drains through t_cn only.
        params = params_at(tiny_spec, 0.0)
        result = intra_cluster_latency(params, 0)
        assert result.network_latency == pytest.approx(32 * params.t_cn)
        assert result.tail_time == pytest.approx(params.t_cn)

    def test_latency_monotone_in_traffic(self, tiny_spec):
        low = intra_cluster_latency(params_at(tiny_spec, 1e-4), 1)
        high = intra_cluster_latency(params_at(tiny_spec, 2e-3), 1)
        assert high.total >= low.total
        assert high.utilisation > low.utilisation

    def test_saturation_far_beyond_capacity(self, tiny_spec):
        result = intra_cluster_latency(params_at(tiny_spec, 1.0), 1)
        assert result.saturated
        assert math.isinf(result.total)

    def test_larger_messages_have_larger_latency(self, tiny_spec):
        small = intra_cluster_latency(params_at(tiny_spec, 1e-4, MessageSpec(32, 256)), 1)
        large = intra_cluster_latency(params_at(tiny_spec, 1e-4, MessageSpec(64, 256)), 1)
        assert large.total > small.total

    def test_invalid_cluster_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            intra_cluster_latency(params_at(tiny_spec, 0.0), 9)

    def test_rate_overrides_change_the_result(self, tiny_spec):
        params = params_at(tiny_spec, 1e-3)
        default = intra_cluster_latency(params, 1)
        doubled = intra_cluster_latency(
            params,
            1,
            arrival_rate=2 * default.utilisation / default.network_latency,
        )
        assert doubled.waiting_time > default.waiting_time


class TestPairLatency:
    def test_zero_load_structure(self, tiny_spec):
        params = params_at(tiny_spec, 0.0)
        pair = pair_latency(params, 0, 1)
        assert pair.waiting_time == 0.0
        assert pair.concentrator_waiting == 0.0
        assert not pair.saturated
        # The inter-cluster journey is longer than any intra-cluster one.
        intra = intra_cluster_latency(params, 0)
        assert pair.network_latency + pair.tail_time > intra.network_latency + intra.tail_time

    def test_tail_time_matches_expected_journey_lengths(self, tiny_spec):
        # For height-1 source and destination clusters (j = l = 1) and the
        # tiny system's ICN2 (n_c = 1, so h = 1), every journey has
        # K = 1 + 2 + 1 - 1 = 3 stages.
        params = params_at(tiny_spec, 0.0)
        pair = pair_latency(params, 0, 3)
        assert pair.tail_time == pytest.approx(
            tail_drain_time(3, t_cs=params.t_cs, t_cn=params.t_cn)
        )

    def test_symmetry_for_equal_heights(self, tiny_spec):
        params = params_at(tiny_spec, 1e-4)
        forward = pair_latency(params, 1, 2)
        backward = pair_latency(params, 2, 1)
        assert forward.network_latency == pytest.approx(backward.network_latency)
        assert forward.total == pytest.approx(backward.total)

    def test_same_cluster_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            pair_latency(params_at(tiny_spec, 0.0), 1, 1)

    def test_monotone_in_traffic(self, tiny_spec):
        low = pair_latency(params_at(tiny_spec, 1e-4), 0, 1)
        high = pair_latency(params_at(tiny_spec, 1e-3), 0, 1)
        assert high.total >= low.total

    def test_saturation_reported(self, tiny_spec):
        pair = pair_latency(params_at(tiny_spec, 1.0), 0, 1)
        assert pair.saturated
        assert math.isinf(pair.total)

    def test_table1_pairs_have_reasonable_zero_load_latency(self, table1_large_spec):
        params = params_at(table1_large_spec, 0.0)
        pair = pair_latency(params, 0, 31)
        # At zero load the header sees exactly the bare serialisation time.
        assert pair.network_latency == pytest.approx(32 * 0.522)
        assert pair.network_latency + pair.tail_time < 30.0


class TestInterCluster:
    def test_average_over_partners(self, tiny_spec):
        params = params_at(tiny_spec, 1e-4)
        result = inter_cluster_latency(params, 0)
        pairs = [pair_latency(params, 0, v) for v in (1, 2, 3)]
        expected_network = sum(p.network_latency for p in pairs) / 3
        expected_waiting = sum(p.waiting_time for p in pairs) / 3
        assert result.network_latency == pytest.approx(expected_network)
        assert result.waiting_time == pytest.approx(expected_waiting)
        assert result.network_total == pytest.approx(
            result.waiting_time + result.network_latency + result.tail_time
        )

    def test_concentrator_waiting_is_average_of_pair_values(self, tiny_spec):
        params = params_at(tiny_spec, 1e-4)
        result = inter_cluster_latency(params, 0)
        pairs = [pair_latency(params, 0, v) for v in (1, 2, 3)]
        expected = sum(p.concentrator_waiting for p in pairs) / 3
        assert result.concentrator_waiting == pytest.approx(expected)

    def test_total_includes_concentrators(self, tiny_spec):
        params = params_at(tiny_spec, 1e-4)
        result = inter_cluster_latency(params, 0)
        assert result.total == pytest.approx(
            result.network_total + result.concentrator_waiting
        )

    def test_saturation_flag_propagates(self, tiny_spec):
        result = inter_cluster_latency(params_at(tiny_spec, 1.0), 0)
        assert result.saturated
        assert math.isinf(result.total)

    def test_zero_load_has_no_waiting(self, table1_small_spec):
        result = inter_cluster_latency(params_at(table1_small_spec, 0.0), 0)
        assert result.waiting_time == 0.0
        assert result.concentrator_waiting == 0.0

    def test_invalid_cluster_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            inter_cluster_latency(params_at(tiny_spec, 0.0), 7)
