"""Tests of the baseline models (single cluster, equal-size approximation)."""

import math

import numpy as np
import pytest

from repro.model import (
    EqualSizeApproximationModel,
    MessageSpec,
    MultiClusterLatencyModel,
    SingleClusterModel,
)
from repro.topology.multicluster import MultiClusterSpec
from repro.utils import ValidationError


class TestSingleClusterModel:
    def test_zero_load_latency_matches_unblocked_transfer(self):
        model = SingleClusterModel(8, 1, MessageSpec(32, 256))
        prediction = model.evaluate(0.0)
        # Single-switch cluster: header takes M*t_cn, tail drains in t_cn.
        assert prediction.network_latency == pytest.approx(32 * 0.276)
        assert prediction.tail_time == pytest.approx(0.276)
        assert prediction.waiting_time == 0.0
        assert prediction.mean_latency == pytest.approx(33 * 0.276)

    def test_latency_monotone_in_traffic(self):
        model = SingleClusterModel(8, 2)
        low = model.mean_latency(1e-4)
        high = model.mean_latency(1e-3)
        assert high > low

    def test_saturates_at_high_load(self):
        model = SingleClusterModel(8, 2)
        assert math.isinf(model.mean_latency(1.0))

    def test_latency_curve_shape(self):
        model = SingleClusterModel(4, 3)
        curve = model.latency_curve(np.linspace(0, 2e-3, 5))
        finite = curve[np.isfinite(curve)]
        assert (np.diff(finite) >= 0).all()

    def test_taller_tree_has_higher_latency(self):
        shallow = SingleClusterModel(4, 2)
        tall = SingleClusterModel(4, 4)
        assert tall.mean_latency(1e-4) > shallow.mean_latency(1e-4)

    def test_num_nodes(self):
        assert SingleClusterModel(8, 3).num_nodes == 128

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            SingleClusterModel(5, 2)
        with pytest.raises(ValidationError):
            SingleClusterModel(4, 0)
        with pytest.raises(ValidationError):
            SingleClusterModel(4, 2).mean_latency(-1.0)


class TestEqualSizeApproximation:
    def test_preserves_cluster_count_and_arity(self, table1_large_spec):
        approx = EqualSizeApproximationModel(table1_large_spec)
        assert approx.spec.num_clusters == table1_large_spec.num_clusters
        assert approx.spec.m == table1_large_spec.m
        assert approx.spec.is_homogeneous

    def test_chooses_height_closest_to_mean_size(self, table1_large_spec):
        # Mean cluster size of the N=1120 organisation is 35 nodes; the
        # closest representable size with m=8 is 32 (height 2).
        approx = EqualSizeApproximationModel(table1_large_spec)
        assert approx.equivalent_height == 2
        assert approx.node_count_error == 32 * 32 - 1120

    def test_exact_for_already_homogeneous_spec(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(2, 2, 2, 2))
        approx = EqualSizeApproximationModel(spec)
        assert approx.equivalent_height == 2
        assert approx.node_count_error == 0
        exact = MultiClusterLatencyModel(spec)
        assert approx.mean_latency(1e-4) == pytest.approx(exact.mean_latency(1e-4))

    def test_approximation_differs_for_heterogeneous_system(self, table1_large_spec):
        exact = MultiClusterLatencyModel(table1_large_spec)
        approx = EqualSizeApproximationModel(table1_large_spec)
        lambda_g = 1e-4
        error = approx.heterogeneity_error(exact, lambda_g)
        assert not math.isnan(error)
        assert abs(error) > 0.001  # the ablation shows a visible difference

    def test_heterogeneity_error_nan_when_saturated(self, table1_large_spec):
        exact = MultiClusterLatencyModel(table1_large_spec)
        approx = EqualSizeApproximationModel(table1_large_spec)
        assert math.isnan(approx.heterogeneity_error(exact, 1.0))

    def test_latency_curve_available(self, table1_small_spec):
        approx = EqualSizeApproximationModel(table1_small_spec)
        curve = approx.latency_curve([0.0, 1e-4])
        assert np.isfinite(curve).all()
