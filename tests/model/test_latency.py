"""Tests of the full latency model (Eq. 35-36) and its predictions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import MessageSpec, MultiClusterLatencyModel
from repro.model.parameters import PAPER_MESSAGE_SPECS
from repro.topology.multicluster import MultiClusterSpec
from repro.utils import ValidationError


class TestEvaluate:
    def test_prediction_structure(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        prediction = model.evaluate(1e-4)
        assert len(prediction.clusters) == tiny_spec.num_clusters
        assert sum(prediction.weights) == pytest.approx(1.0)
        assert prediction.lambda_g == 1e-4
        assert not prediction.saturated

    def test_weights_follow_cluster_sizes(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        prediction = model.evaluate(0.0)
        expected = tuple(size / tiny_spec.total_nodes for size in tiny_spec.cluster_sizes)
        assert prediction.weights == pytest.approx(expected)

    def test_mean_is_weighted_average_of_cluster_means(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        prediction = model.evaluate(2e-4)
        manual = sum(
            weight * cluster.mean
            for weight, cluster in zip(prediction.weights, prediction.clusters)
        )
        assert prediction.mean_latency == pytest.approx(manual)

    def test_equal_height_clusters_share_predictions(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        prediction = model.evaluate(1e-4)
        # Clusters 0 and 3 have the same height, as do 1 and 2.
        assert prediction.cluster_mean(0) == pytest.approx(prediction.cluster_mean(3))
        assert prediction.cluster_mean(1) == pytest.approx(prediction.cluster_mean(2))

    def test_cluster_mean_accessor(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        prediction = model.evaluate(1e-4)
        assert prediction.cluster_mean(1) == prediction.clusters[1].mean

    def test_breakdown_sums_to_mean(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        breakdown = model.evaluate(2e-4).breakdown()
        component_sum = sum(value for key, value in breakdown.items() if key != "mean_latency")
        assert component_sum == pytest.approx(breakdown["mean_latency"])

    def test_breakdown_when_saturated(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        breakdown = model.evaluate(1.0).breakdown()
        assert math.isinf(breakdown["mean_latency"])

    def test_negative_traffic_rejected(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        with pytest.raises(ValidationError):
            model.evaluate(-1e-3)


class TestCurves:
    def test_zero_load_latency_positive_and_finite(self, table1_large_spec, table1_small_spec):
        for spec in (table1_large_spec, table1_small_spec):
            model = MultiClusterLatencyModel(spec)
            assert 0 < model.zero_load_latency < 100

    def test_latency_curve_is_monotone_before_saturation(self, table1_small_spec):
        model = MultiClusterLatencyModel(table1_small_spec, MessageSpec(32, 256))
        lambdas = np.linspace(0.0, 3e-4, 7)
        curve = model.latency_curve(lambdas)
        finite = curve[np.isfinite(curve)]
        assert (np.diff(finite) >= -1e-9).all()

    def test_curve_saturates_eventually(self, table1_small_spec):
        model = MultiClusterLatencyModel(table1_small_spec, MessageSpec(32, 256))
        curve = model.latency_curve([0.0, 1e-3, 1e-2])
        assert math.isinf(curve[-1])

    def test_larger_flits_increase_latency_and_hasten_saturation(self, table1_large_spec):
        small = MultiClusterLatencyModel(table1_large_spec, MessageSpec(32, 256))
        large = MultiClusterLatencyModel(table1_large_spec, MessageSpec(32, 512))
        assert large.zero_load_latency > small.zero_load_latency
        # At a load the small-flit system still handles, the large-flit one
        # is either saturated or strictly slower.
        load = 2e-4
        small_latency = small.mean_latency(load)
        large_latency = large.mean_latency(load)
        assert math.isinf(large_latency) or large_latency > small_latency

    def test_longer_messages_increase_latency(self, table1_small_spec):
        short = MultiClusterLatencyModel(table1_small_spec, MessageSpec(32, 256))
        long = MultiClusterLatencyModel(table1_small_spec, MessageSpec(64, 256))
        assert long.zero_load_latency > short.zero_load_latency

    def test_all_four_paper_message_specs_evaluate(self, table1_large_spec):
        for message in PAPER_MESSAGE_SPECS:
            model = MultiClusterLatencyModel(table1_large_spec, message)
            assert np.isfinite(model.zero_load_latency)

    def test_larger_system_saturates_before_smaller_system(
        self, table1_large_spec, table1_small_spec
    ):
        """The N=1120 organisation saturates at lower offered traffic than N=544."""
        from repro.model import saturation_point

        message = MessageSpec(32, 256)
        large = MultiClusterLatencyModel(table1_large_spec, message)
        small = MultiClusterLatencyModel(table1_small_spec, message)
        assert saturation_point(large, upper_bound=1e-3) < saturation_point(
            small, upper_bound=2e-3
        )


class TestClusterHeterogeneityEffects:
    def test_small_clusters_see_higher_external_share(self, table1_large_spec):
        model = MultiClusterLatencyModel(table1_large_spec)
        prediction = model.evaluate(5e-5)
        small = prediction.clusters[0]      # N_i = 8
        large = prediction.clusters[31]     # N_i = 128
        assert small.outgoing_probability > large.outgoing_probability

    def test_homogeneous_system_has_identical_cluster_means(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(2, 2, 2, 2))
        model = MultiClusterLatencyModel(spec)
        prediction = model.evaluate(1e-4)
        means = [cluster.mean for cluster in prediction.clusters]
        assert max(means) == pytest.approx(min(means))


@given(lambda_g=st.floats(min_value=0.0, max_value=5e-4))
@settings(max_examples=25, deadline=None)
def test_latency_never_below_zero_load(tiny_spec, lambda_g):
    model = MultiClusterLatencyModel(tiny_spec)
    latency = model.mean_latency(lambda_g)
    assert math.isinf(latency) or latency >= model.zero_load_latency - 1e-9
