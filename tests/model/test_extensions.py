"""Tests of the future-work extensions (processor heterogeneity, hot-spot traffic)."""

import math

import numpy as np
import pytest

from repro.model import (
    HotspotTrafficModel,
    MessageSpec,
    MultiClusterLatencyModel,
    ProcessorHeterogeneityModel,
)
from repro.utils import ValidationError


class TestProcessorHeterogeneity:
    def test_uniform_powers_reduce_to_baseline(self, tiny_spec):
        baseline = MultiClusterLatencyModel(tiny_spec)
        extended = ProcessorHeterogeneityModel(tiny_spec, [1.0, 1.0, 1.0, 1.0])
        for lambda_g in (0.0, 1e-4, 5e-4):
            assert extended.mean_latency(lambda_g) == pytest.approx(
                baseline.mean_latency(lambda_g), rel=1e-9
            )

    def test_scaling_all_powers_changes_nothing(self, tiny_spec):
        a = ProcessorHeterogeneityModel(tiny_spec, [1.0, 2.0, 1.0, 0.5])
        b = ProcessorHeterogeneityModel(tiny_spec, [10.0, 20.0, 10.0, 5.0])
        assert a.mean_latency(3e-4) == pytest.approx(b.mean_latency(3e-4))

    def test_weights_are_node_weighted_normalised(self, tiny_spec):
        model = ProcessorHeterogeneityModel(tiny_spec, [1.0, 2.0, 1.0, 0.5])
        sizes = np.array(tiny_spec.cluster_sizes, dtype=float)
        weighted_mean = float((sizes * np.array(model.weights)).sum() / sizes.sum())
        assert weighted_mean == pytest.approx(1.0)

    def test_fast_clusters_increase_latency_over_uniform(self, tiny_spec):
        """Concentrating generation on the big clusters loads their networks more."""
        baseline = MultiClusterLatencyModel(tiny_spec)
        skewed = ProcessorHeterogeneityModel(tiny_spec, [0.5, 3.0, 3.0, 0.5])
        lambda_g = 8e-4
        assert skewed.mean_latency(lambda_g) > baseline.mean_latency(lambda_g)

    def test_saturation_reported_as_infinite(self, tiny_spec):
        model = ProcessorHeterogeneityModel(tiny_spec, [1.0, 1.0, 1.0, 1.0])
        assert math.isinf(model.mean_latency(1.0))

    def test_latency_curve_monotone(self, tiny_spec):
        model = ProcessorHeterogeneityModel(tiny_spec, [1.0, 2.0, 1.0, 0.5])
        curve = model.latency_curve(np.linspace(0, 1e-3, 5))
        finite = curve[np.isfinite(curve)]
        assert (np.diff(finite) >= -1e-9).all()

    def test_wrong_length_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            ProcessorHeterogeneityModel(tiny_spec, [1.0, 2.0])

    def test_non_positive_power_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            ProcessorHeterogeneityModel(tiny_spec, [1.0, 0.0, 1.0, 1.0])


class TestHotspotTraffic:
    def test_destination_distribution_sums_to_one(self, tiny_spec):
        model = HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=0.2)
        for cluster in range(tiny_spec.num_clusters):
            assert model.destination_distribution(cluster).sum() == pytest.approx(1.0)

    def test_zero_fraction_matches_uniform_distribution(self, tiny_spec):
        model = HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=0.0)
        distribution = model.destination_distribution(0)
        total = tiny_spec.total_nodes
        expected = [
            (tiny_spec.cluster_size(v) - (1 if v == 0 else 0)) / (total - 1)
            for v in range(tiny_spec.num_clusters)
        ]
        assert distribution == pytest.approx(expected)

    def test_hot_cluster_receives_more_traffic(self, tiny_spec):
        model = HotspotTrafficModel(tiny_spec, hot_cluster=2, hotspot_fraction=0.4)
        uniform = HotspotTrafficModel(tiny_spec, hot_cluster=2, hotspot_fraction=0.0)
        lambda_g = 1e-4
        assert model.incoming_flow(2, lambda_g) > uniform.incoming_flow(2, lambda_g)

    def test_hotspot_increases_latency(self, tiny_spec):
        """Directing traffic at one cluster must not make the system faster."""
        lambda_g = 6e-4
        uniform = HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=0.0)
        hot = HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=0.5)
        uniform_latency = uniform.mean_latency(lambda_g)
        hot_latency = hot.mean_latency(lambda_g)
        assert math.isinf(hot_latency) or hot_latency > uniform_latency

    def test_hotspot_saturates_earlier(self, tiny_spec):
        uniform = HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=0.0)
        hot = HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=0.6)
        lambdas = np.linspace(0, 4e-3, 12)
        uniform_curve = uniform.latency_curve(lambdas)
        hot_curve = hot.latency_curve(lambdas)
        assert np.isinf(hot_curve).sum() >= np.isinf(uniform_curve).sum()

    def test_evaluate_reports_per_cluster_means(self, tiny_spec):
        model = HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=0.3)
        prediction = model.evaluate(1e-4)
        assert len(prediction.cluster_means) == tiny_spec.num_clusters
        assert prediction.mean_latency > 0
        assert not prediction.saturated

    def test_invalid_parameters_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            HotspotTrafficModel(tiny_spec, hot_cluster=9, hotspot_fraction=0.2)
        with pytest.raises(ValidationError):
            HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=1.0)
        with pytest.raises(ValidationError):
            HotspotTrafficModel(tiny_spec, hot_cluster=1, hotspot_fraction=-0.1)
