"""Tests of saturation-point location and utilisation diagnostics."""

import math

import pytest

from repro.model import (
    MessageSpec,
    MultiClusterLatencyModel,
    saturation_point,
    utilisation_summary,
)
from repro.model.saturation import bottleneck
from repro.utils import ValidationError


class TestSaturationPoint:
    def test_model_is_stable_just_below_and_saturated_just_above(self, table1_small_spec):
        model = MultiClusterLatencyModel(table1_small_spec, MessageSpec(32, 256))
        point = saturation_point(model, upper_bound=1e-3)
        assert math.isfinite(model.mean_latency(point * 0.98))
        assert math.isinf(model.mean_latency(point * 1.02))

    def test_upper_bound_grows_automatically(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        # Deliberately tiny initial bound: the bracketing loop must extend it.
        point = saturation_point(model, upper_bound=1e-6)
        assert point > 1e-6
        assert math.isinf(model.mean_latency(point * 1.05))

    def test_doubling_message_length_halves_the_saturation_point(self, table1_small_spec):
        short = MultiClusterLatencyModel(table1_small_spec, MessageSpec(32, 256))
        long = MultiClusterLatencyModel(table1_small_spec, MessageSpec(64, 256))
        ratio = saturation_point(long, upper_bound=1e-3) / saturation_point(
            short, upper_bound=1e-3
        )
        assert ratio == pytest.approx(0.5, rel=0.15)

    def test_doubling_flit_size_roughly_halves_the_saturation_point(self, table1_small_spec):
        small = MultiClusterLatencyModel(table1_small_spec, MessageSpec(32, 256))
        large = MultiClusterLatencyModel(table1_small_spec, MessageSpec(32, 512))
        ratio = saturation_point(large, upper_bound=1e-3) / saturation_point(
            small, upper_bound=1e-3
        )
        assert ratio == pytest.approx(0.5, rel=0.2)

    def test_invalid_arguments_rejected(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        with pytest.raises(ValidationError):
            saturation_point(model, upper_bound=0.0)
        with pytest.raises(ValidationError):
            saturation_point(model, upper_bound=1e-3, tolerance=0.0)


class TestUtilisationDiagnostics:
    def test_summary_covers_every_cluster(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        summary = utilisation_summary(model, 1e-4)
        assert len(summary) == 2 * tiny_spec.num_clusters
        assert all(value >= 0 for value in summary.values())

    def test_utilisations_grow_with_load(self, tiny_spec):
        model = MultiClusterLatencyModel(tiny_spec)
        low = utilisation_summary(model, 1e-5)
        high = utilisation_summary(model, 1e-3)
        assert max(high.values()) > max(low.values())

    def test_bottleneck_is_an_ecn1_queue_for_table1(self, table1_large_spec):
        """In the paper's organisations the external path saturates first."""
        model = MultiClusterLatencyModel(table1_large_spec, MessageSpec(32, 256))
        name = bottleneck(model, 1e-4)
        assert "ecn1" in name
