"""Shared fixtures for the analytical-model tests."""

import pytest

from repro.model.parameters import MessageSpec, ModelParameters
from repro.topology.multicluster import ClusterSpec, MultiClusterSpec


@pytest.fixture(scope="session")
def tiny_spec() -> MultiClusterSpec:
    """A 4-cluster heterogeneous system small enough for exhaustive checks."""
    return MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")


@pytest.fixture(scope="session")
def table1_large_spec() -> MultiClusterSpec:
    """Table 1, first organisation (N=1120, C=32, m=8)."""
    return MultiClusterSpec.from_groups(
        m=8,
        groups=[ClusterSpec(1, 12), ClusterSpec(2, 16), ClusterSpec(3, 4)],
        name="N=1120",
    )


@pytest.fixture(scope="session")
def table1_small_spec() -> MultiClusterSpec:
    """Table 1, second organisation (N=544, C=16, m=4)."""
    return MultiClusterSpec.from_groups(
        m=4,
        groups=[ClusterSpec(3, 8), ClusterSpec(4, 3), ClusterSpec(5, 5)],
        name="N=544",
    )


@pytest.fixture(scope="session")
def tiny_params(tiny_spec) -> ModelParameters:
    """Parameters for the tiny system at a moderate offered traffic."""
    return ModelParameters(
        spec=tiny_spec, message=MessageSpec(32, 256), lambda_g=5e-4
    )
