"""Tests of the traffic decomposition (Eq. 5-7, 10-13)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.probabilities import average_message_distance
from repro.model.traffic import (
    channel_rates,
    ecn1_channel_rate,
    ecn1_pair_rate,
    icn1_channel_rate,
    icn1_rate,
    icn2_channel_rate,
    icn2_pair_rate,
    network_rates,
    outgoing_probability,
)
from repro.topology.multicluster import MultiClusterSpec
from repro.utils import ValidationError


class TestOutgoingProbability:
    def test_explicit_value(self, tiny_spec):
        # tiny: sizes (4, 8, 8, 4), N = 24.
        assert outgoing_probability(tiny_spec, 0) == pytest.approx(20 / 23)
        assert outgoing_probability(tiny_spec, 1) == pytest.approx(16 / 23)

    def test_larger_clusters_have_lower_outgoing_probability(self, table1_large_spec):
        p_small = outgoing_probability(table1_large_spec, 0)    # N_i = 8
        p_large = outgoing_probability(table1_large_spec, 31)   # N_i = 128
        assert p_small > p_large

    def test_range(self, table1_small_spec):
        for cluster in range(table1_small_spec.num_clusters):
            assert 0.0 < outgoing_probability(table1_small_spec, cluster) < 1.0

    def test_bad_cluster_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            outgoing_probability(tiny_spec, 4)

    def test_homogeneous_case_matches_closed_form(self):
        spec = MultiClusterSpec(m=4, cluster_heights=(2, 2, 2, 2))
        # P_o = (N - N_i)/(N - 1) with N = 32, N_i = 8.
        assert outgoing_probability(spec, 2) == pytest.approx(24 / 31)


class TestAggregateRates:
    def test_icn1_rate_eq5(self, tiny_spec):
        lambda_g = 1e-3
        expected = 8 * (1 - outgoing_probability(tiny_spec, 1)) * lambda_g
        assert icn1_rate(tiny_spec, 1, lambda_g) == pytest.approx(expected)

    def test_ecn1_pair_rate_eq6_is_symmetric(self, tiny_spec):
        lambda_g = 1e-3
        assert ecn1_pair_rate(tiny_spec, 0, 1, lambda_g) == pytest.approx(
            ecn1_pair_rate(tiny_spec, 1, 0, lambda_g)
        )

    def test_icn2_pair_rate_eq7_is_symmetric(self, tiny_spec):
        lambda_g = 1e-3
        assert icn2_pair_rate(tiny_spec, 0, 2, lambda_g) == pytest.approx(
            icn2_pair_rate(tiny_spec, 2, 0, lambda_g)
        )

    def test_equal_size_pair_icn2_rate_equals_cluster_external_rate(self, tiny_spec):
        # For N_i = N_v the pair ICN2 rate reduces to N_i * P_o * lambda_g.
        lambda_g = 1e-3
        expected = 8 * outgoing_probability(tiny_spec, 1) * lambda_g
        assert icn2_pair_rate(tiny_spec, 1, 2, lambda_g) == pytest.approx(expected)

    def test_rates_scale_linearly_with_traffic(self, tiny_spec):
        assert icn1_rate(tiny_spec, 0, 2e-3) == pytest.approx(2 * icn1_rate(tiny_spec, 0, 1e-3))
        assert ecn1_pair_rate(tiny_spec, 0, 1, 2e-3) == pytest.approx(
            2 * ecn1_pair_rate(tiny_spec, 0, 1, 1e-3)
        )

    def test_zero_traffic_means_zero_rates(self, tiny_spec):
        assert icn1_rate(tiny_spec, 0, 0.0) == 0.0
        assert ecn1_pair_rate(tiny_spec, 0, 1, 0.0) == 0.0
        assert icn2_pair_rate(tiny_spec, 0, 1, 0.0) == 0.0

    def test_same_cluster_pair_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            ecn1_pair_rate(tiny_spec, 1, 1, 1e-3)
        with pytest.raises(ValidationError):
            icn2_pair_rate(tiny_spec, 2, 2, 1e-3)

    def test_negative_traffic_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            icn1_rate(tiny_spec, 0, -1e-3)

    def test_total_traffic_conservation(self, table1_small_spec):
        """Internal plus external generation adds up to N * lambda_g."""
        spec = table1_small_spec
        lambda_g = 1e-4
        internal = sum(
            icn1_rate(spec, i, lambda_g) for i in range(spec.num_clusters)
        )
        external = sum(
            spec.cluster_size(i) * outgoing_probability(spec, i) * lambda_g
            for i in range(spec.num_clusters)
        )
        assert internal + external == pytest.approx(spec.total_nodes * lambda_g)


class TestChannelRates:
    def test_icn1_channel_rate_eq10(self, tiny_spec):
        lambda_g = 1e-3
        height = tiny_spec.cluster_heights[1]
        expected = (
            average_message_distance(4, height)
            * icn1_rate(tiny_spec, 1, lambda_g)
            / (4 * height * tiny_spec.cluster_size(1))
        )
        assert icn1_channel_rate(tiny_spec, 1, lambda_g) == pytest.approx(expected)

    def test_ecn1_channel_rate_eq11(self, tiny_spec):
        lambda_g = 1e-3
        height = tiny_spec.cluster_heights[0]
        expected = (
            average_message_distance(4, height)
            * ecn1_pair_rate(tiny_spec, 0, 1, lambda_g)
            / (4 * height * tiny_spec.cluster_size(0))
        )
        assert ecn1_channel_rate(tiny_spec, 0, 1, lambda_g) == pytest.approx(expected)

    def test_icn2_channel_rate_eq12(self, tiny_spec):
        lambda_g = 1e-3
        expected = (
            average_message_distance(4, tiny_spec.icn2_height)
            * icn2_pair_rate(tiny_spec, 0, 1, lambda_g)
            / (4 * tiny_spec.icn2_height)
        )
        assert icn2_channel_rate(tiny_spec, 0, 1, lambda_g) == pytest.approx(expected)

    def test_channel_rates_bundle_matches_scalars(self, tiny_spec):
        lambda_g = 2e-3
        bundle = channel_rates(tiny_spec, 0, 2, lambda_g)
        assert bundle.icn1 == pytest.approx(icn1_channel_rate(tiny_spec, 0, lambda_g))
        assert bundle.ecn1 == pytest.approx(ecn1_channel_rate(tiny_spec, 0, 2, lambda_g))
        assert bundle.icn2 == pytest.approx(icn2_channel_rate(tiny_spec, 0, 2, lambda_g))

    def test_network_rates_bundle_matches_scalars(self, tiny_spec):
        lambda_g = 2e-3
        bundle = network_rates(tiny_spec, 0, 2, lambda_g)
        assert bundle.icn1 == pytest.approx(icn1_rate(tiny_spec, 0, lambda_g))
        assert bundle.ecn1 == pytest.approx(ecn1_pair_rate(tiny_spec, 0, 2, lambda_g))
        assert bundle.icn2 == pytest.approx(icn2_pair_rate(tiny_spec, 0, 2, lambda_g))

    @given(lambda_g=st.floats(min_value=0.0, max_value=1e-2))
    @settings(max_examples=30, deadline=None)
    def test_channel_rates_are_non_negative(self, tiny_spec, lambda_g):
        bundle = channel_rates(tiny_spec, 0, 1, lambda_g)
        assert bundle.icn1 >= 0 and bundle.ecn1 >= 0 and bundle.icn2 >= 0
