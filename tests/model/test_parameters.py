"""Tests of the parameter containers (timing, message geometry, bundles)."""

import pytest
from hypothesis import given, strategies as st

from repro.model.parameters import (
    MessageSpec,
    ModelParameters,
    PAPER_MESSAGE_SPECS,
    PAPER_TIMING,
    TimingParameters,
)
from repro.utils import ValidationError


class TestTimingParameters:
    def test_paper_defaults(self):
        assert PAPER_TIMING.alpha_net == 0.02
        assert PAPER_TIMING.alpha_sw == 0.01
        assert PAPER_TIMING.bandwidth == 500.0
        assert PAPER_TIMING.beta_net == pytest.approx(0.002)

    def test_link_timing_matches_eq_14_15(self):
        timing = PAPER_TIMING.link_timing(256)
        assert timing.t_cn == pytest.approx(0.02 + 0.5 * 256 * 0.002)
        assert timing.t_cs == pytest.approx(0.01 + 256 * 0.002)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            TimingParameters(alpha_net=0.0)
        with pytest.raises(ValidationError):
            TimingParameters(bandwidth=-1.0)


class TestMessageSpec:
    def test_total_bytes(self):
        assert MessageSpec(32, 256).total_bytes == 8192

    def test_describe_mentions_both_dimensions(self):
        text = MessageSpec(64, 512).describe()
        assert "M=64" in text and "Lm=512" in text

    def test_paper_specs_cover_the_four_figure_curves(self):
        combos = {(spec.length_flits, spec.flit_bytes) for spec in PAPER_MESSAGE_SPECS}
        assert combos == {(32, 256), (32, 512), (64, 256), (64, 512)}

    def test_invalid_rejected(self):
        with pytest.raises(ValidationError):
            MessageSpec(0, 256)
        with pytest.raises(ValidationError):
            MessageSpec(32, -1)


class TestModelParameters:
    def test_properties_derive_from_components(self, tiny_spec):
        params = ModelParameters(spec=tiny_spec, message=MessageSpec(32, 256))
        assert params.t_cn == pytest.approx(0.276)
        assert params.t_cs == pytest.approx(0.522)
        assert params.message_length == 32

    def test_negative_traffic_rejected(self, tiny_spec):
        with pytest.raises(ValidationError):
            ModelParameters(spec=tiny_spec, lambda_g=-1e-4)

    def test_with_traffic_returns_modified_copy(self, tiny_spec):
        params = ModelParameters(spec=tiny_spec, lambda_g=0.0)
        other = params.with_traffic(1e-3)
        assert other.lambda_g == 1e-3
        assert params.lambda_g == 0.0
        assert other.spec is params.spec

    def test_with_message_returns_modified_copy(self, tiny_spec):
        params = ModelParameters(spec=tiny_spec)
        other = params.with_message(MessageSpec(64, 512))
        assert other.message_length == 64
        assert params.message_length == 32

    def test_sweep_builds_one_bundle_per_rate(self, tiny_spec):
        params = ModelParameters(spec=tiny_spec)
        bundles = params.sweep([0.0, 1e-4, 2e-4])
        assert [bundle.lambda_g for bundle in bundles] == [0.0, 1e-4, 2e-4]

    @given(flit_bytes=st.sampled_from([64, 128, 256, 512, 1024]))
    def test_t_cs_exceeds_half_flit_time(self, tiny_spec, flit_bytes):
        params = ModelParameters(spec=tiny_spec, message=MessageSpec(32, flit_bytes))
        # Switch-switch channels transmit the full flit; node channels only
        # half of it (Eq. 14 vs 15), so t_cs > t_cn whenever Lm*beta > alpha
        # differences, which holds for every paper configuration.
        assert params.t_cs > params.t_cn - params.timing.alpha_net
