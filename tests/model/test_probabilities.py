"""Tests of the journey-length distribution (Eq. 4, 8, 9)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.probabilities import (
    average_ascending_links,
    average_message_distance,
    destinations_at_distance,
    link_probability,
    link_probability_vector,
)
from repro.topology import MPortNTree, distance_histogram, mean_internode_distance
from repro.utils import ValidationError

TREES = [(2, 1), (2, 3), (4, 1), (4, 2), (4, 3), (4, 5), (8, 1), (8, 2), (8, 3), (6, 2)]


@pytest.mark.parametrize("m,n", TREES)
def test_probabilities_sum_to_one(m, n):
    assert link_probability_vector(m, n).sum() == pytest.approx(1.0)


@pytest.mark.parametrize("m,n", TREES)
def test_probabilities_are_non_negative(m, n):
    assert (link_probability_vector(m, n) >= 0).all()


@pytest.mark.parametrize("m,n", [(4, 2), (4, 3), (8, 2), (2, 3), (6, 2)])
def test_probabilities_match_topology_enumeration(m, n):
    """Eq. 4 must agree with brute-force counting over the real topology."""
    tree = MPortNTree(m, n)
    histogram = distance_histogram(tree, exhaustive=True)
    total_pairs = tree.num_nodes * (tree.num_nodes - 1)
    for j in range(1, n + 1):
        expected = histogram.get(2 * j, 0) / total_pairs
        assert link_probability(m, n, j) == pytest.approx(expected)


def test_single_level_tree_always_crosses_two_links():
    assert link_probability(8, 1, 1) == pytest.approx(1.0)


def test_explicit_small_case():
    # m=4 (k=2), n=2, N=8: 1 destination at distance 2, 6 at distance 4.
    assert link_probability(4, 2, 1) == pytest.approx(1.0 / 7.0)
    assert link_probability(4, 2, 2) == pytest.approx(6.0 / 7.0)
    assert destinations_at_distance(4, 2, 1) == 1
    assert destinations_at_distance(4, 2, 2) == 6


def test_j_beyond_height_rejected():
    with pytest.raises(ValidationError):
        link_probability(4, 2, 3)
    with pytest.raises(ValidationError):
        destinations_at_distance(4, 2, 3)


def test_invalid_arity_rejected():
    with pytest.raises(ValidationError):
        link_probability(5, 2, 1)


@pytest.mark.parametrize("m,n", TREES)
def test_average_distance_matches_topology(m, n):
    """Eq. 8/9 must agree with the topology's mean inter-node distance."""
    tree = MPortNTree(m, n)
    assert average_message_distance(m, n) == pytest.approx(mean_internode_distance(tree))


@pytest.mark.parametrize("m,n", TREES)
def test_average_distance_bounds(m, n):
    d_avg = average_message_distance(m, n)
    assert 2.0 <= d_avg <= 2.0 * n


def test_average_distance_increases_with_height():
    assert average_message_distance(4, 3) > average_message_distance(4, 2)
    assert average_message_distance(8, 3) > average_message_distance(8, 2)


def test_average_ascending_links_is_half_the_distance():
    assert average_ascending_links(8, 3) == pytest.approx(average_message_distance(8, 3) / 2)


def test_vector_is_cached():
    assert link_probability_vector(8, 3) is link_probability_vector(8, 3)


@given(
    m=st.sampled_from([2, 4, 6, 8, 10]),
    n=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_destination_counts_total_to_n_minus_one(m, n):
    total_nodes = 2 * (m // 2) ** n
    counted = sum(destinations_at_distance(m, n, j) for j in range(1, n + 1))
    assert counted == total_nodes - 1


@given(
    m=st.sampled_from([4, 8, 16]),
    n=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_most_traffic_crosses_the_root_for_fat_trees(m, n):
    """With k >= 2 more than half the destinations are behind the root level."""
    vector = link_probability_vector(m, n)
    assert vector[-1] > 0.5
