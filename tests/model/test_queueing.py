"""Tests of the M/G/1 source queues and concentrator queues (Eq. 19-23, 30, 33)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.queueing import (
    QueueSaturated,
    concentrator_waiting_time,
    is_stable,
    mg1_waiting_time,
    saturation_arrival_rate,
    source_queue_waiting_time,
    utilisation,
)
from repro.utils import ValidationError


class TestMG1:
    def test_zero_arrivals_no_waiting(self):
        assert mg1_waiting_time(0.0, 10.0, 4.0) == 0.0

    def test_md1_special_case(self):
        # Deterministic service (variance 0) halves the M/M/1 waiting time.
        lam, service = 0.05, 10.0
        rho = lam * service
        expected = lam * service**2 / (2 * (1 - rho))
        assert mg1_waiting_time(lam, service, 0.0) == pytest.approx(expected)

    def test_mm1_special_case(self):
        # Exponential service (variance = mean^2) gives rho*x/(1-rho).
        lam, service = 0.04, 10.0
        rho = lam * service
        expected = rho * service / (1 - rho)
        assert mg1_waiting_time(lam, service, service**2) == pytest.approx(expected)

    def test_waiting_grows_with_variance(self):
        low = mg1_waiting_time(0.05, 10.0, 1.0)
        high = mg1_waiting_time(0.05, 10.0, 100.0)
        assert high > low

    def test_saturation_raises(self):
        with pytest.raises(QueueSaturated) as info:
            mg1_waiting_time(0.2, 10.0, 0.0, name="test queue")
        assert info.value.utilisation == pytest.approx(2.0)
        assert "test queue" in str(info.value)

    def test_exact_saturation_raises(self):
        with pytest.raises(QueueSaturated):
            mg1_waiting_time(0.1, 10.0, 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            mg1_waiting_time(-0.1, 10.0, 0.0)
        with pytest.raises(ValidationError):
            mg1_waiting_time(0.1, 0.0, 0.0)
        with pytest.raises(ValidationError):
            mg1_waiting_time(0.1, 10.0, -1.0)

    @given(
        lam=st.floats(min_value=0.0, max_value=0.09),
        service=st.floats(min_value=0.1, max_value=10.0),
        variance=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_waiting_is_non_negative_below_saturation(self, lam, service, variance):
        if lam * service >= 1.0:
            return
        assert mg1_waiting_time(lam, service, variance) >= 0.0


class TestSourceQueue:
    def test_variance_follows_draper_ghosh(self):
        # Eq. 22: sigma^2 = (S - M t_cn)^2.
        lam, network_latency, minimum = 0.01, 20.0, 8.832
        expected = mg1_waiting_time(lam, network_latency, (network_latency - minimum) ** 2)
        assert source_queue_waiting_time(lam, network_latency, minimum) == pytest.approx(expected)

    def test_no_waiting_at_zero_load(self):
        assert source_queue_waiting_time(0.0, 20.0, 8.832) == 0.0

    def test_saturation_propagates(self):
        with pytest.raises(QueueSaturated):
            source_queue_waiting_time(0.1, 20.0, 8.832)

    def test_waiting_increases_with_load(self):
        low = source_queue_waiting_time(0.001, 20.0, 8.832)
        high = source_queue_waiting_time(0.04, 20.0, 8.832)
        assert high > low


class TestConcentrator:
    def test_md1_form(self):
        # Eq. 33 is an M/D/1 wait with service M*t_cs.
        lam, service = 0.02, 16.7
        expected = lam * service**2 / (2 * (1 - lam * service))
        assert concentrator_waiting_time(lam, service) == pytest.approx(expected)

    def test_zero_load(self):
        assert concentrator_waiting_time(0.0, 16.7) == 0.0

    def test_saturation(self):
        with pytest.raises(QueueSaturated):
            concentrator_waiting_time(0.1, 16.7)

    def test_invalid_rejected(self):
        with pytest.raises(ValidationError):
            concentrator_waiting_time(0.1, 0.0)


class TestUtilisationHelpers:
    def test_utilisation(self):
        assert utilisation(0.02, 10.0) == pytest.approx(0.2)

    def test_is_stable(self):
        assert is_stable(0.05, 10.0)
        assert not is_stable(0.2, 10.0)

    def test_saturation_arrival_rate(self):
        assert saturation_arrival_rate(20.0) == pytest.approx(0.05)
        with pytest.raises(ValidationError):
            saturation_arrival_rate(0.0)
