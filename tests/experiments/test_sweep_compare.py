"""Tests of the sweep engine and the agreement metrics."""

import math

import numpy as np
import pytest

from repro.experiments.compare import (
    compare_model_and_simulation,
    curves_match_in_shape,
    saturation_shift,
)
from repro.experiments.sweep import latency_sweep
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.topology.multicluster import MultiClusterSpec
from repro.utils import ValidationError

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
FAST = SimulationConfig(measured_messages=800, warmup_messages=80, drain_messages=80, seed=2)


@pytest.fixture(scope="module")
def simulated_sweep():
    return latency_sweep(
        TINY,
        MessageSpec(32, 256),
        [2e-4, 6e-4, 1e-3],
        run_simulation=True,
        simulation_config=FAST,
    )


class TestLatencySweep:
    def test_model_only_sweep(self):
        sweep = latency_sweep(
            TINY, MessageSpec(32, 256), np.linspace(1e-4, 1e-3, 4), run_simulation=False
        )
        assert len(sweep.points) == 4
        assert not sweep.has_simulation
        assert np.isnan(sweep.simulation_curve).all()
        assert (np.diff(sweep.model_curve[np.isfinite(sweep.model_curve)]) >= 0).all()

    def test_sweep_with_simulation(self, simulated_sweep):
        assert simulated_sweep.has_simulation
        assert np.isfinite(simulated_sweep.simulation_curve).all()
        assert simulated_sweep.points[0].simulated.measured_messages == FAST.measured_messages

    def test_relative_error_defined_in_steady_state(self, simulated_sweep):
        errors = [p.relative_error for p in simulated_sweep.steady_state_points()]
        assert all(not math.isnan(e) for e in errors)
        assert simulated_sweep.max_steady_state_error() < 0.5

    def test_saturation_point_detection(self):
        sweep = latency_sweep(
            TINY, MessageSpec(32, 256), [1e-4, 2e-2, 5e-2], run_simulation=False
        )
        assert sweep.model_saturation_point() == pytest.approx(2e-2)

    def test_never_saturating_sweep_reports_inf(self):
        sweep = latency_sweep(TINY, MessageSpec(32, 256), [1e-5], run_simulation=False)
        assert sweep.model_saturation_point() == math.inf

    def test_invalid_traffic_rejected(self):
        with pytest.raises(ValidationError):
            latency_sweep(TINY, MessageSpec(32, 256), [], run_simulation=False)
        with pytest.raises(ValidationError):
            latency_sweep(TINY, MessageSpec(32, 256), [0.0], run_simulation=False)

    def test_describe_mentions_spec_and_message(self, simulated_sweep):
        text = simulated_sweep.describe()
        assert "tiny" in text and "M=32" in text


class TestAgreement:
    def test_agreement_report_fields(self, simulated_sweep):
        report = compare_model_and_simulation(simulated_sweep)
        assert report.compared_points >= 1
        assert report.mean_relative_error <= report.max_relative_error
        assert report.agrees_in_steady_state

    def test_agreement_requires_simulation(self):
        sweep = latency_sweep(TINY, MessageSpec(32, 256), [1e-4], run_simulation=False)
        with pytest.raises(ValidationError):
            compare_model_and_simulation(sweep)

    def test_saturation_shift(self, simulated_sweep):
        report = compare_model_and_simulation(simulated_sweep)
        shift = saturation_shift(report)
        # Either both saturation estimates are inside the sweep (finite ratio)
        # or at least one lies beyond it (nan).
        assert math.isnan(shift) or shift > 0

    def test_curves_match_in_shape(self, simulated_sweep):
        ok, reason = curves_match_in_shape(simulated_sweep, tolerance=0.5)
        assert ok, reason

    def test_shape_check_needs_two_steady_points(self):
        sweep = latency_sweep(TINY, MessageSpec(32, 256), [1e-2], run_simulation=False)
        ok, reason = curves_match_in_shape(sweep)
        assert not ok
        assert "steady-state" in reason
