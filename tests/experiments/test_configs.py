"""Tests of the experiment configurations (Table 1 and figure settings)."""

import numpy as np
import pytest

from repro.experiments.configs import (
    FIGURE_SPECS,
    FIGURE_TRAFFIC_RANGES,
    FigureSpec,
    figure_panels,
    paper_message_specs,
    paper_timing,
    table1_specs,
    table1_system,
)
from repro.utils import ValidationError


class TestTable1Configs:
    def test_large_organisation(self):
        spec = table1_system(1120)
        assert spec.total_nodes == 1120
        assert spec.num_clusters == 32
        assert spec.m == 8
        assert spec.cluster_heights == (1,) * 12 + (2,) * 16 + (3,) * 4

    def test_small_organisation(self):
        spec = table1_system(544)
        assert spec.total_nodes == 544
        assert spec.num_clusters == 16
        assert spec.m == 4
        assert spec.cluster_heights == (3,) * 8 + (4,) * 3 + (5,) * 5

    def test_unknown_size_rejected(self):
        with pytest.raises(ValidationError):
            table1_system(1000)

    def test_table1_specs_order(self):
        large, small = table1_specs()
        assert large.total_nodes == 1120
        assert small.total_nodes == 544

    def test_paper_timing_values(self):
        timing = paper_timing()
        assert timing.alpha_net == 0.02
        assert timing.alpha_sw == 0.01
        assert timing.bandwidth == 500.0

    def test_paper_message_specs(self):
        combos = {(m.length_flits, m.flit_bytes) for m in paper_message_specs()}
        assert combos == {(32, 256), (32, 512), (64, 256), (64, 512)}


class TestFigureSpecs:
    def test_four_panels_defined(self):
        assert set(FIGURE_SPECS) == {"fig3-M32", "fig3-M64", "fig4-M32", "fig4-M64"}

    def test_panel_traffic_ranges_match_the_paper_axes(self):
        assert FIGURE_TRAFFIC_RANGES[(1120, 32)] == pytest.approx(5e-4)
        assert FIGURE_TRAFFIC_RANGES[(1120, 64)] == pytest.approx(2.5e-4)
        assert FIGURE_TRAFFIC_RANGES[(544, 32)] == pytest.approx(1e-3)
        assert FIGURE_TRAFFIC_RANGES[(544, 64)] == pytest.approx(5e-4)

    def test_offered_traffic_grid_excludes_zero(self):
        panel = FIGURE_SPECS["fig3-M32"]
        grid = panel.offered_traffic(5)
        assert len(grid) == 5
        assert grid[0] > 0
        assert grid[-1] == pytest.approx(panel.max_traffic)
        assert np.all(np.diff(grid) > 0)

    def test_message_specs_per_panel(self):
        panel = FIGURE_SPECS["fig4-M64"]
        specs = panel.message_specs()
        assert [spec.length_flits for spec in specs] == [64, 64]
        assert [spec.flit_bytes for spec in specs] == [256, 512]

    def test_figure_panels_lookup(self):
        assert {panel.message_length for panel in figure_panels("fig3")} == {32, 64}
        with pytest.raises(ValidationError):
            figure_panels("fig9")

    def test_panel_system_matches_figure(self):
        assert FIGURE_SPECS["fig3-M32"].system.total_nodes == 1120
        assert FIGURE_SPECS["fig4-M32"].system.total_nodes == 544

    def test_describe(self):
        assert "N=1120" in FIGURE_SPECS["fig3-M32"].describe()
