"""Tests of the machine-readable simulator benchmark harness."""

import pytest

from repro.experiments.bench import (
    BENCH_SCENARIOS,
    attach_baseline,
    bench_to_text,
    load_baseline,
    run_bench,
    write_bench,
)
from repro.utils import ValidationError


@pytest.fixture(scope="module")
def smoke_payload():
    """One tiny measured run, shared by the read-only assertions."""
    return run_bench(("heterogeneous",), points=2, smoke=True)


class TestRunBench:
    def test_payload_schema(self, smoke_payload):
        assert smoke_payload["schema"] == 1
        assert smoke_payload["smoke"] is True
        assert smoke_payload["points"] == 2
        assert set(smoke_payload["scenarios"]) == {"heterogeneous"}

    def test_smoke_budget_is_tiny_but_counted(self, smoke_payload):
        entry = smoke_payload["scenarios"]["heterogeneous"]
        assert entry["measured_messages"] == 2 * 200
        assert entry["wall_clock_seconds"] > 0
        # messages_per_second is computed from the unrounded wall clock, so
        # the stored (rounded) fields reproduce it only approximately.
        assert entry["messages_per_second"] == pytest.approx(
            entry["measured_messages"] / entry["wall_clock_seconds"], rel=0.05
        )

    def test_default_scenario_set_is_the_fixed_one(self):
        assert BENCH_SCENARIOS == ("fig3", "fig4", "heterogeneous")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError):
            run_bench(("no-such-scenario",), points=1, smoke=True)


class TestBaselineAttachment:
    def test_speedup_ratios(self, smoke_payload):
        baseline = {
            "scenarios": {
                "heterogeneous": {
                    "messages_per_second": smoke_payload["scenarios"]["heterogeneous"][
                        "messages_per_second"
                    ]
                    / 2.0
                }
            }
        }
        merged = attach_baseline(dict(smoke_payload), baseline, label="half-speed")
        assert merged["speedup"]["heterogeneous"] == pytest.approx(2.0, abs=0.01)
        assert merged["baseline"]["label"] == "half-speed"

    def test_missing_scenarios_are_skipped(self, smoke_payload):
        merged = attach_baseline(dict(smoke_payload), {"scenarios": {}}, label="empty")
        assert merged["speedup"] == {}

    def test_round_trip_through_disk(self, smoke_payload, tmp_path):
        path = write_bench(smoke_payload, tmp_path / "bench.json")
        loaded = load_baseline(path)
        assert loaded["scenarios"] == smoke_payload["scenarios"]

    def test_non_object_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValidationError):
            load_baseline(path)


class TestBenchText:
    def test_text_mentions_smoke_and_scenarios(self, smoke_payload):
        text = bench_to_text(smoke_payload)
        assert "smoke" in text
        assert "heterogeneous" in text

    def test_text_reports_speedup_when_compared(self, smoke_payload):
        merged = attach_baseline(
            dict(smoke_payload),
            {"scenarios": {"heterogeneous": {"messages_per_second": 1.0}}},
            label="tiny",
        )
        assert "x vs tiny" in bench_to_text(merged)
