"""Tests of the machine-readable simulator benchmark harness."""

import pytest

from repro.experiments.bench import (
    BENCH_SCENARIOS,
    attach_baseline,
    bench_to_text,
    load_baseline,
    run_bench,
    write_bench,
)
from repro.utils import ValidationError


@pytest.fixture(scope="module")
def smoke_payload():
    """One tiny measured run, shared by the read-only assertions."""
    return run_bench(("heterogeneous",), points=2, smoke=True)


class TestRunBench:
    def test_payload_schema(self, smoke_payload):
        assert smoke_payload["schema"] == 1
        assert smoke_payload["smoke"] is True
        assert smoke_payload["points"] == 2
        assert set(smoke_payload["scenarios"]) == {"heterogeneous"}

    def test_smoke_budget_is_tiny_but_counted(self, smoke_payload):
        entry = smoke_payload["scenarios"]["heterogeneous"]
        assert entry["measured_messages"] == 2 * 200
        assert entry["wall_clock_seconds"] > 0
        # messages_per_second is computed from the unrounded wall clock, so
        # the stored (rounded) fields reproduce it only approximately.
        assert entry["messages_per_second"] == pytest.approx(
            entry["measured_messages"] / entry["wall_clock_seconds"], rel=0.05
        )

    def test_scenario_entries_report_events_and_timing_split(self, smoke_payload):
        from repro.sim.simulator import DEFAULT_KERNEL

        entry = smoke_payload["scenarios"]["heterogeneous"]
        assert entry["kernel"] == DEFAULT_KERNEL
        assert entry["events_processed"] > entry["measured_messages"]
        assert entry["events_per_second"] > 0
        # The split: run (event loop) + collect (state construction and
        # statistics) make up the sweep's elapsed time; setup is separate.
        assert entry["run_seconds"] == entry["wall_clock_seconds"]
        assert entry["collect_seconds"] >= 0
        assert entry["run_seconds"] + entry["collect_seconds"] == pytest.approx(
            entry["elapsed_seconds"], abs=0.01
        )
        assert entry["setup_seconds"] >= 0

    def test_kernel_rungs_compare_dispatch_and_vectorized(self, smoke_payload):
        from repro.experiments.bench import BENCH_KERNELS

        rungs = smoke_payload["kernels"]
        assert [rung["kernel"] for rung in rungs] == list(BENCH_KERNELS)
        dispatch, vectorized = rungs
        assert dispatch["scenario"] == vectorized["scenario"] == "heterogeneous"
        # Matched budget: same operating point, same measured messages.
        assert dispatch["lambda_g"] == vectorized["lambda_g"]
        assert dispatch["measured_messages"] == vectorized["measured_messages"]
        assert dispatch["speedup"] == pytest.approx(1.0)
        assert vectorized["speedup"] == pytest.approx(
            dispatch["wall_clock_seconds"] / vectorized["wall_clock_seconds"],
            rel=0.05,
        )
        for rung in rungs:
            assert rung["events_per_second"] > 0
            assert rung["wall_clock_seconds"] > 0

    def test_default_scenario_set_is_the_fixed_one(self):
        assert BENCH_SCENARIOS == ("fig3", "fig4", "heterogeneous")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError):
            run_bench(("no-such-scenario",), points=1, smoke=True)


class TestBaselineAttachment:
    def test_speedup_ratios(self, smoke_payload):
        baseline = {
            "scenarios": {
                "heterogeneous": {
                    "messages_per_second": smoke_payload["scenarios"]["heterogeneous"][
                        "messages_per_second"
                    ]
                    / 2.0
                }
            }
        }
        merged = attach_baseline(dict(smoke_payload), baseline, label="half-speed")
        assert merged["speedup"]["heterogeneous"] == pytest.approx(2.0, abs=0.01)
        assert merged["baseline"]["label"] == "half-speed"

    def test_missing_scenarios_are_skipped(self, smoke_payload):
        merged = attach_baseline(dict(smoke_payload), {"scenarios": {}}, label="empty")
        assert merged["speedup"] == {}

    def test_round_trip_through_disk(self, smoke_payload, tmp_path):
        path = write_bench(smoke_payload, tmp_path / "bench.json")
        loaded = load_baseline(path)
        assert loaded["scenarios"] == smoke_payload["scenarios"]

    def test_non_object_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValidationError):
            load_baseline(path)


class TestBenchText:
    def test_text_mentions_smoke_and_scenarios(self, smoke_payload):
        text = bench_to_text(smoke_payload)
        assert "smoke" in text
        assert "heterogeneous" in text

    def test_text_reports_speedup_when_compared(self, smoke_payload):
        merged = attach_baseline(
            dict(smoke_payload),
            {"scenarios": {"heterogeneous": {"messages_per_second": 1.0}}},
            label="tiny",
        )
        assert "x vs tiny" in bench_to_text(merged)


class TestParallelBench:
    def test_parallel_payload_records_workers_and_matches_sequential(self):
        sequential = run_bench(("heterogeneous",), points=2, smoke=True)
        parallel = run_bench(
            ("heterogeneous",), points=2, smoke=True, parallel=True, workers=2
        )
        assert parallel["parallel"] is True
        assert parallel["workers"] == 2
        assert parallel["fan_out"] == "scenario"
        assert sequential["parallel"] is False
        assert sequential["workers"] == 1
        assert "scaling" not in sequential
        # The per-scenario trajectory entries are always measured
        # sequentially so messages/sec stays comparable across PRs; the
        # shared-pool fan-out is recorded in the scaling curve instead.
        seq_entry = sequential["scenarios"]["heterogeneous"]
        par_entry = parallel["scenarios"]["heterogeneous"]
        assert par_entry["workers"] == 1
        assert seq_entry["workers"] == 1
        assert par_entry["measured_messages"] == seq_entry["measured_messages"]
        assert par_entry["elapsed_seconds"] > 0
        assert seq_entry["elapsed_seconds"] > 0

    def test_parallel_payload_records_speedup_vs_workers_curve(self):
        payload = run_bench(
            ("heterogeneous",), points=2, smoke=True, parallel=True, workers=2
        )
        curve = payload["scaling"]
        cold = [rung for rung in curve if rung["mode"] == "cold"]
        daemon = [rung for rung in curve if rung["mode"] == "daemon"]
        distributed = [rung for rung in curve if rung["mode"] == "distributed"]
        assert [rung["workers"] for rung in cold] == [1, 2]
        # One warm-daemon rung at the top worker count, then one distributed
        # rung over >= 2 loopback runners, close the curve.
        assert [rung["workers"] for rung in daemon] == [2]
        assert daemon[0]["warmup_seconds"] > 0
        assert [rung["runners"] for rung in distributed] == [2]
        assert distributed[0]["warmup_seconds"] > 0
        total = payload["scenarios"]["heterogeneous"]["measured_messages"]
        for rung in curve:
            # Bit-identical executions at every rung: same messages measured.
            assert rung["measured_messages"] == total
            assert rung["elapsed_seconds"] > 0
            assert rung["messages_per_second"] > 0
            assert rung["speedup"] > 0
        assert curve[0]["speedup"] == pytest.approx(1.0)
        # Cold rungs compare against the sequential baseline; the daemon
        # rung compares warm-service vs the cold rung at the same width and
        # carries the sequential ratio separately.
        assert cold[1]["speedup"] == pytest.approx(
            curve[0]["elapsed_seconds"] / cold[1]["elapsed_seconds"], abs=0.01
        )
        assert daemon[0]["speedup"] == pytest.approx(
            cold[1]["elapsed_seconds"] / daemon[0]["elapsed_seconds"], abs=0.01
        )
        assert daemon[0]["speedup_vs_sequential"] == pytest.approx(
            curve[0]["elapsed_seconds"] / daemon[0]["elapsed_seconds"], abs=0.01
        )

    def test_scenario_fan_out_shares_one_pool_across_scenarios(self):
        payload = run_bench(
            ("heterogeneous", "hotspot"), points=1, smoke=True, parallel=True, workers=2
        )
        # Two one-point scenarios: only scenario-level fan-out can use two
        # workers at all (point-level fan-out would cap at one task each).
        assert payload["workers"] == 2
        assert payload["fan_out"] == "scenario"
        assert [(rung["workers"], rung["mode"]) for rung in payload["scaling"]] == [
            (1, "cold"),
            (2, "cold"),
            (2, "daemon"),
            (2, "distributed"),
        ]
        total = sum(
            entry["measured_messages"] for entry in payload["scenarios"].values()
        )
        assert payload["scaling"][-1]["measured_messages"] == total

    def test_parallel_text_mentions_workers_and_curve(self):
        payload = run_bench(
            ("heterogeneous",), points=2, smoke=True, parallel=True, workers=2
        )
        text = bench_to_text(payload)
        assert "2 workers" in text
        assert "scenario fan-out" in text
        assert "1 worker" in text
        assert "daemon" in text

    def test_worker_ladder_doubles_to_the_effective_count(self):
        from repro.experiments.bench import _worker_ladder

        assert _worker_ladder(1) == [1]
        assert _worker_ladder(2) == [1, 2]
        assert _worker_ladder(4) == [1, 2, 4]
        assert _worker_ladder(6) == [1, 2, 4, 6]


class TestDiffBenchScript:
    """The CI regression gate over BENCH_simulator.json payloads."""

    @staticmethod
    def _diff():
        import importlib.util
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "benchmarks" / "diff_bench.py"
        spec = importlib.util.spec_from_file_location("diff_bench", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_within_tolerance_passes(self):
        diff_bench = self._diff()
        committed = {"scenarios": {"fig3": {"messages_per_second": 100.0}}}
        fresh = {"scenarios": {"fig3": {"messages_per_second": 80.0}}}
        assert diff_bench.diff_payloads(fresh, committed, 0.30) == []

    def test_regression_beyond_tolerance_reported(self):
        diff_bench = self._diff()
        committed = {"scenarios": {"fig3": {"messages_per_second": 100.0}}}
        fresh = {"scenarios": {"fig3": {"messages_per_second": 60.0}}}
        regressions = diff_bench.diff_payloads(fresh, committed, 0.30)
        assert len(regressions) == 1
        assert "fig3" in regressions[0]

    def test_missing_scenario_reported(self):
        diff_bench = self._diff()
        committed = {"scenarios": {"fig4": {"messages_per_second": 10.0}}}
        regressions = diff_bench.diff_payloads({"scenarios": {}}, committed, 0.30)
        assert regressions == ["fig4: missing from the fresh payload"]

    def test_kernel_gate_passes_at_speedup(self):
        diff_bench = self._diff()
        fresh = {
            "scenarios": {"fig3": {}},
            "kernels": [
                {"scenario": "fig3", "kernel": "dispatch", "speedup": 1.0},
                {"scenario": "fig3", "kernel": "vectorized", "speedup": 2.1},
            ],
        }
        assert diff_bench.check_kernel_gate(fresh) == []

    def test_kernel_gate_fails_below_minimum(self):
        diff_bench = self._diff()
        fresh = {
            "scenarios": {"fig3": {}},
            "kernels": [
                {"scenario": "fig3", "kernel": "dispatch", "speedup": 1.0},
                {"scenario": "fig3", "kernel": "vectorized", "speedup": 1.2},
            ],
        }
        failures = diff_bench.check_kernel_gate(fresh)
        assert len(failures) == 1 and "1.20x" in failures[0]

    def test_kernel_gate_fails_when_rung_is_missing(self):
        diff_bench = self._diff()
        fresh = {"scenarios": {"fig3": {}}, "kernels": []}
        assert diff_bench.check_kernel_gate(fresh) == [
            "fig3: fresh payload has no vectorized kernel rung"
        ]

    def test_kernel_gate_skips_payloads_not_covering_the_scenario(self):
        diff_bench = self._diff()
        assert diff_bench.check_kernel_gate({"scenarios": {"fig4": {}}}) == []

    def test_cli_entry_point_round_trips(self, tmp_path):
        diff_bench = self._diff()
        import json

        committed = tmp_path / "committed.json"
        fresh = tmp_path / "fresh.json"
        kernels = [
            {"scenario": "fig3", "kernel": "dispatch", "speedup": 1.0},
            {"scenario": "fig3", "kernel": "vectorized", "speedup": 2.0},
        ]
        committed.write_text(
            json.dumps({"scenarios": {"fig3": {"messages_per_second": 100.0}}})
        )
        fresh.write_text(
            json.dumps(
                {
                    "scenarios": {"fig3": {"messages_per_second": 95.0}},
                    "kernels": kernels,
                }
            )
        )
        assert (
            diff_bench.main(
                ["--fresh", str(fresh), "--committed", str(committed)]
            )
            == 0
        )
        fresh.write_text(
            json.dumps({"scenarios": {"fig3": {"messages_per_second": 10.0}}})
        )
        assert (
            diff_bench.main(
                ["--fresh", str(fresh), "--committed", str(committed)]
            )
            == 1
        )

    def test_mismatched_budgets_refused(self):
        diff_bench = self._diff()
        import pytest as _pytest

        fresh = {"budget": "quick", "points": 2, "smoke": True, "scenarios": {}}
        committed = {"budget": "default", "points": 3, "smoke": False, "scenarios": {}}
        with _pytest.raises(SystemExit, match="not comparable"):
            diff_bench.check_comparable(fresh, committed)
