"""Tests of the machine-readable simulator benchmark harness."""

import pytest

from repro.experiments.bench import (
    BENCH_SCENARIOS,
    attach_baseline,
    bench_to_text,
    load_baseline,
    run_bench,
    write_bench,
)
from repro.utils import ValidationError


@pytest.fixture(scope="module")
def smoke_payload():
    """One tiny measured run, shared by the read-only assertions."""
    return run_bench(("heterogeneous",), points=2, smoke=True)


class TestRunBench:
    def test_payload_schema(self, smoke_payload):
        assert smoke_payload["schema"] == 1
        assert smoke_payload["smoke"] is True
        assert smoke_payload["points"] == 2
        assert set(smoke_payload["scenarios"]) == {"heterogeneous"}

    def test_smoke_budget_is_tiny_but_counted(self, smoke_payload):
        entry = smoke_payload["scenarios"]["heterogeneous"]
        assert entry["measured_messages"] == 2 * 200
        assert entry["wall_clock_seconds"] > 0
        # messages_per_second is computed from the unrounded wall clock, so
        # the stored (rounded) fields reproduce it only approximately.
        assert entry["messages_per_second"] == pytest.approx(
            entry["measured_messages"] / entry["wall_clock_seconds"], rel=0.05
        )

    def test_default_scenario_set_is_the_fixed_one(self):
        assert BENCH_SCENARIOS == ("fig3", "fig4", "heterogeneous")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError):
            run_bench(("no-such-scenario",), points=1, smoke=True)


class TestBaselineAttachment:
    def test_speedup_ratios(self, smoke_payload):
        baseline = {
            "scenarios": {
                "heterogeneous": {
                    "messages_per_second": smoke_payload["scenarios"]["heterogeneous"][
                        "messages_per_second"
                    ]
                    / 2.0
                }
            }
        }
        merged = attach_baseline(dict(smoke_payload), baseline, label="half-speed")
        assert merged["speedup"]["heterogeneous"] == pytest.approx(2.0, abs=0.01)
        assert merged["baseline"]["label"] == "half-speed"

    def test_missing_scenarios_are_skipped(self, smoke_payload):
        merged = attach_baseline(dict(smoke_payload), {"scenarios": {}}, label="empty")
        assert merged["speedup"] == {}

    def test_round_trip_through_disk(self, smoke_payload, tmp_path):
        path = write_bench(smoke_payload, tmp_path / "bench.json")
        loaded = load_baseline(path)
        assert loaded["scenarios"] == smoke_payload["scenarios"]

    def test_non_object_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValidationError):
            load_baseline(path)


class TestBenchText:
    def test_text_mentions_smoke_and_scenarios(self, smoke_payload):
        text = bench_to_text(smoke_payload)
        assert "smoke" in text
        assert "heterogeneous" in text

    def test_text_reports_speedup_when_compared(self, smoke_payload):
        merged = attach_baseline(
            dict(smoke_payload),
            {"scenarios": {"heterogeneous": {"messages_per_second": 1.0}}},
            label="tiny",
        )
        assert "x vs tiny" in bench_to_text(merged)


class TestParallelBench:
    def test_parallel_payload_records_workers_and_matches_sequential(self):
        sequential = run_bench(("heterogeneous",), points=2, smoke=True)
        parallel = run_bench(
            ("heterogeneous",), points=2, smoke=True, parallel=True, workers=2
        )
        assert parallel["parallel"] is True
        assert parallel["workers"] == 2
        assert sequential["parallel"] is False
        assert sequential["workers"] == 1
        seq_entry = sequential["scenarios"]["heterogeneous"]
        par_entry = parallel["scenarios"]["heterogeneous"]
        assert par_entry["workers"] == 2
        assert seq_entry["workers"] == 1
        # Parallel sweeps are bit-identical: same messages measured, and the
        # elapsed end-to-end time is recorded alongside the summed wall.
        assert par_entry["measured_messages"] == seq_entry["measured_messages"]
        assert par_entry["elapsed_seconds"] > 0
        assert seq_entry["elapsed_seconds"] > 0

    def test_parallel_text_mentions_workers(self):
        payload = run_bench(
            ("heterogeneous",), points=2, smoke=True, parallel=True, workers=2
        )
        assert "2 workers" in bench_to_text(payload)


class TestDiffBenchScript:
    """The CI regression gate over BENCH_simulator.json payloads."""

    @staticmethod
    def _diff():
        import importlib.util
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "benchmarks" / "diff_bench.py"
        spec = importlib.util.spec_from_file_location("diff_bench", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_within_tolerance_passes(self):
        diff_bench = self._diff()
        committed = {"scenarios": {"fig3": {"messages_per_second": 100.0}}}
        fresh = {"scenarios": {"fig3": {"messages_per_second": 80.0}}}
        assert diff_bench.diff_payloads(fresh, committed, 0.30) == []

    def test_regression_beyond_tolerance_reported(self):
        diff_bench = self._diff()
        committed = {"scenarios": {"fig3": {"messages_per_second": 100.0}}}
        fresh = {"scenarios": {"fig3": {"messages_per_second": 60.0}}}
        regressions = diff_bench.diff_payloads(fresh, committed, 0.30)
        assert len(regressions) == 1
        assert "fig3" in regressions[0]

    def test_missing_scenario_reported(self):
        diff_bench = self._diff()
        committed = {"scenarios": {"fig4": {"messages_per_second": 10.0}}}
        regressions = diff_bench.diff_payloads({"scenarios": {}}, committed, 0.30)
        assert regressions == ["fig4: missing from the fresh payload"]

    def test_cli_entry_point_round_trips(self, tmp_path):
        diff_bench = self._diff()
        import json

        committed = tmp_path / "committed.json"
        fresh = tmp_path / "fresh.json"
        committed.write_text(
            json.dumps({"scenarios": {"fig3": {"messages_per_second": 100.0}}})
        )
        fresh.write_text(
            json.dumps({"scenarios": {"fig3": {"messages_per_second": 95.0}}})
        )
        assert (
            diff_bench.main(
                ["--fresh", str(fresh), "--committed", str(committed)]
            )
            == 0
        )
        fresh.write_text(
            json.dumps({"scenarios": {"fig3": {"messages_per_second": 10.0}}})
        )
        assert (
            diff_bench.main(
                ["--fresh", str(fresh), "--committed", str(committed)]
            )
            == 1
        )

    def test_mismatched_budgets_refused(self):
        diff_bench = self._diff()
        import pytest as _pytest

        fresh = {"budget": "quick", "points": 2, "smoke": True, "scenarios": {}}
        committed = {"budget": "default", "points": 3, "smoke": False, "scenarios": {}}
        with _pytest.raises(SystemExit, match="not comparable"):
            diff_bench.check_comparable(fresh, committed)
