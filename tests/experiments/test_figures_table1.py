"""Tests of the figure and Table 1 reproduction helpers (model-only runs)."""

import numpy as np
import pytest

from repro.experiments.figures import expected_message_specs, run_figure, run_panel
from repro.experiments.configs import FIGURE_SPECS
from repro.experiments.table1 import table1_row, table1_rows
from repro.experiments.configs import table1_system
from repro.utils import ValidationError


class TestRunFigure:
    @pytest.fixture(scope="class")
    def fig4(self):
        # Model-only with few points: fast enough for unit tests.
        return run_figure("fig4", num_points=4, run_simulation=False)

    def test_all_four_series_present(self, fig4):
        assert set(fig4.sweeps.keys()) == {(32, 256), (32, 512), (64, 256), (64, 512)}
        assert fig4.panels == (32, 64)

    def test_series_lookup(self, fig4):
        sweep = fig4.sweep(32, 256)
        assert len(sweep.points) == 4
        with pytest.raises(ValidationError):
            fig4.sweep(32, 128)

    def test_series_labels(self, fig4):
        labels = fig4.series_labels()
        assert "M=32 Lm=256" in labels and "M=64 Lm=512" in labels

    def test_larger_flits_saturate_earlier(self, fig4):
        small = fig4.sweep(32, 256).model_saturation_point()
        large = fig4.sweep(32, 512).model_saturation_point()
        assert large < small

    def test_longer_messages_saturate_earlier(self, fig4):
        short = fig4.sweep(32, 256).model_saturation_point()
        long = fig4.sweep(64, 256).model_saturation_point()
        assert long < short

    def test_run_panel_returns_one_sweep_per_flit_size(self):
        panel = FIGURE_SPECS["fig4-M32"]
        sweeps = run_panel(panel, num_points=3, run_simulation=False)
        assert set(sweeps.keys()) == {(32, 256), (32, 512)}

    def test_expected_message_specs(self):
        specs = expected_message_specs("fig3")
        assert len(specs) == 4

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValidationError):
            run_figure("fig7", run_simulation=False)

    def test_fig3_saturates_before_fig4(self):
        """The larger N=1120 system saturates at lower offered traffic."""
        fig3 = run_figure("fig3", num_points=4, run_simulation=False)
        fig4 = run_figure("fig4", num_points=4, run_simulation=False)
        assert fig3.sweep(32, 256).model_saturation_point() < fig4.sweep(
            32, 256
        ).model_saturation_point()


class TestTable1:
    def test_rows_match_the_paper(self):
        rows = table1_rows()
        assert [row.total_nodes for row in rows] == [1120, 544]
        assert [row.num_clusters for row in rows] == [32, 16]
        assert [row.switch_ports for row in rows] == [8, 4]
        assert rows[0].icn2_height == 2
        assert rows[1].icn2_height == 3

    def test_organisation_strings(self):
        rows = table1_rows()
        assert "ni=1 i in [0,11]" in rows[0].organisation
        assert "ni=5 i in [11,15]" in rows[1].organisation

    def test_cluster_sizes_sum_to_total(self):
        for row in table1_rows():
            assert sum(row.cluster_sizes) == row.total_nodes

    def test_as_cells_order(self):
        row = table1_row(table1_system(544))
        cells = row.as_cells()
        assert cells[:3] == (544, 16, 4)

    def test_switch_counts_are_positive(self):
        for row in table1_rows():
            assert row.total_switches > 0
