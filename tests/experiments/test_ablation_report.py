"""Tests of the ablations and the report rendering."""

import math

import numpy as np
import pytest

from repro.experiments.ablation import (
    heterogeneity_ablation,
    traffic_pattern_ablation,
    variance_ablation,
)
from repro.experiments.compare import compare_model_and_simulation
from repro.experiments.figures import run_figure
from repro.experiments.report import (
    ablation_to_table,
    agreement_to_text,
    experiments_markdown,
    figure_to_table,
    save_figure_csvs,
    save_sweep_csv,
    sweep_to_table,
    table1_to_table,
)
from repro.experiments.sweep import latency_sweep
from repro.experiments.table1 import table1_rows
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.topology.multicluster import MultiClusterSpec
from repro.utils import ValidationError
from repro.workloads import ClusterLocalTraffic

TINY = MultiClusterSpec(m=4, cluster_heights=(1, 2, 2, 1), name="tiny")
TRAFFIC = [2e-4, 5e-4, 8e-4]


class TestHeterogeneityAblation:
    def test_structure(self, table1_large_spec=None):
        result = heterogeneity_ablation(TINY, MessageSpec(32, 256), TRAFFIC)
        assert len(result.points) == 3
        assert "heterogeneity" in result.name
        assert not math.isnan(result.max_relative_difference())

    def test_equal_size_approximation_differs_for_heterogeneous_spec(self):
        result = heterogeneity_ablation(TINY, MessageSpec(32, 256), TRAFFIC)
        assert result.max_relative_difference() > 0.001

    def test_invalid_traffic_rejected(self):
        with pytest.raises(ValidationError):
            heterogeneity_ablation(TINY, MessageSpec(32, 256), [])
        with pytest.raises(ValidationError):
            heterogeneity_ablation(TINY, MessageSpec(32, 256), [0.0])


class TestVarianceAblation:
    def test_zero_variance_never_increases_latency(self):
        result = variance_ablation(TINY, MessageSpec(32, 256), TRAFFIC)
        for point in result.points:
            if math.isfinite(point.reference) and math.isfinite(point.variant):
                assert point.variant <= point.reference + 1e-9

    def test_difference_grows_with_load(self):
        result = variance_ablation(TINY, MessageSpec(32, 256), [1e-4, 1e-3])
        differences = [abs(p.relative_difference) for p in result.points]
        assert differences[1] >= differences[0]


class TestTrafficPatternAblation:
    def test_runs_each_pattern(self):
        config = SimulationConfig(
            measured_messages=400, warmup_messages=40, drain_messages=40, seed=4
        )
        results = traffic_pattern_ablation(
            TINY,
            MessageSpec(16, 256),
            [3e-4],
            {"uniform": None, "local": ClusterLocalTraffic(0.9)},
            simulation_config=config,
        )
        assert set(results) == {"uniform", "local"}
        # Local traffic avoids the ECN1/ICN2 path, so it is faster than the
        # uniform-model reference; uniform simulation tracks the reference.
        local_point = results["local"].points[0]
        assert local_point.variant < local_point.reference


class TestReportRendering:
    @pytest.fixture(scope="class")
    def fig4_model_only(self):
        return run_figure("fig4", num_points=3, run_simulation=False)

    def test_sweep_table_contains_all_points(self):
        sweep = latency_sweep(TINY, MessageSpec(32, 256), TRAFFIC, run_simulation=False)
        table = sweep_to_table(sweep)
        assert len(table) == len(TRAFFIC)
        assert "tiny" in table.title

    def test_saturated_points_are_labelled(self):
        sweep = latency_sweep(TINY, MessageSpec(32, 256), [1e-2], run_simulation=False)
        text = sweep_to_table(sweep).to_text()
        assert "saturated" in text

    def test_figure_to_table_produces_four_tables(self, fig4_model_only):
        tables = figure_to_table(fig4_model_only)
        assert len(tables) == 4

    def test_table1_rendering(self):
        text = table1_to_table(table1_rows()).to_text()
        assert "1120" in text and "544" in text

    def test_ablation_rendering(self):
        result = variance_ablation(TINY, MessageSpec(32, 256), TRAFFIC)
        text = ablation_to_table(result).to_text()
        assert "Draper-Ghosh" in text

    def test_agreement_text(self):
        config = SimulationConfig(
            measured_messages=400, warmup_messages=40, drain_messages=40, seed=5
        )
        sweep = latency_sweep(
            TINY, MessageSpec(16, 256), [3e-4], simulation_config=config
        )
        text = agreement_to_text(compare_model_and_simulation(sweep))
        assert "relative error" in text

    def test_csv_outputs(self, tmp_path, fig4_model_only):
        sweep = latency_sweep(TINY, MessageSpec(32, 256), TRAFFIC, run_simulation=False)
        path = save_sweep_csv(sweep, tmp_path / "sweep.csv")
        assert path.exists()
        paths = save_figure_csvs(fig4_model_only, tmp_path / "fig4")
        assert len(paths) == 4
        assert all(p.exists() for p in paths)

    def test_experiments_markdown_contains_sections(self, fig4_model_only):
        markdown = experiments_markdown(
            table1=table1_rows(),
            figures={"Figure 4 (N=544)": fig4_model_only},
            ablations=[variance_ablation(TINY, MessageSpec(32, 256), TRAFFIC)],
            notes="shape only",
        )
        assert "# Experiments" in markdown
        assert "Table 1" in markdown
        assert "Figure 4" in markdown
        assert "Ablations" in markdown
        assert "shape only" in markdown
