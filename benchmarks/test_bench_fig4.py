"""Benchmark: regenerate Fig. 4 (N=544) — latency versus offered traffic.

Same structure as the Fig. 3 benchmark, for the smaller Table 1 organisation,
plus the cross-figure comparison the paper's axis ranges imply: the N=544
system sustains roughly twice the per-node offered traffic of the N=1120
system before saturating.
"""

import math

import pytest

from benchmarks.conftest import bench_points, bench_simulation_config
from repro.experiments.compare import compare_model_and_simulation, curves_match_in_shape
from repro.experiments.configs import FIGURE_SPECS, table1_system
from repro.experiments.report import agreement_to_text, sweep_to_table
from repro.experiments.sweep import latency_sweep
from repro.model import MultiClusterLatencyModel, saturation_point
from repro.model.parameters import MessageSpec

PANELS = [
    pytest.param("fig4-M32", 256, id="M32-Lm256"),
    pytest.param("fig4-M32", 512, id="M32-Lm512"),
    pytest.param("fig4-M64", 256, id="M64-Lm256"),
    pytest.param("fig4-M64", 512, id="M64-Lm512"),
]


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("panel_name,flit_bytes", PANELS)
def test_fig4_series(benchmark, panel_name, flit_bytes):
    panel = FIGURE_SPECS[panel_name]
    message = MessageSpec(panel.message_length, flit_bytes)
    offered = panel.offered_traffic(bench_points())

    def run():
        return latency_sweep(
            panel.system,
            message,
            offered,
            run_simulation=True,
            simulation_config=bench_simulation_config(),
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(sweep_to_table(sweep).to_text())
    report = compare_model_and_simulation(sweep)
    print(agreement_to_text(report))

    # Shape assertions (paper findings), not absolute numbers.  The Lm=512
    # curves saturate within the first half of the figure's traffic axis, so
    # they may contribute a single steady-state point at the bench grid.
    if len(sweep.steady_state_points()) >= 2:
        ok, reason = curves_match_in_shape(sweep, tolerance=0.35)
        assert ok, reason
    assert report.compared_points >= 1
    assert report.max_relative_error < 0.35
    finite_sim = [
        point.simulated.mean_latency
        for point in sweep.points
        if point.simulated is not None and math.isfinite(point.simulated.mean_latency)
    ]
    assert finite_sim[-1] > finite_sim[0], "latency must rise with offered traffic"


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("message_length,flit_bytes", [(32, 256), (64, 512)], ids=["M32-Lm256", "M64-Lm512"])
def test_fig4_system_sustains_more_traffic_than_fig3(benchmark, message_length, flit_bytes):
    """Cross-figure shape check: N=544 saturates later than N=1120 (roughly 2x)."""
    message = MessageSpec(message_length, flit_bytes)

    def run():
        small = MultiClusterLatencyModel(table1_system(544), message)
        large = MultiClusterLatencyModel(table1_system(1120), message)
        return (
            saturation_point(small, upper_bound=2e-3),
            saturation_point(large, upper_bound=1e-3),
        )

    small_saturation, large_saturation = benchmark(run)
    print(f"\nsaturation N=544: {small_saturation:.3g}  N=1120: {large_saturation:.3g}")
    ratio = small_saturation / large_saturation
    assert 1.2 < ratio < 3.0, f"expected roughly 2x headroom, got {ratio:.2f}"
