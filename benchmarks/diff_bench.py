#!/usr/bin/env python
"""Diff a fresh ``BENCH_simulator.json`` against the committed artifact.

The benchmarks smoke job regenerates the perf artifact on every push; this
script fails the job when any scenario's ``messages_per_second`` fell more
than the tolerated fraction below the committed trajectory point, so a
kernel regression cannot land silently.  It additionally gates the
vectorized kernel itself: the fresh payload's ``kernels`` rungs (matched
budget, interleaved reps) must show ``kernel="vectorized"`` beating the FSM
dispatch kernel by at least :data:`KERNEL_GATE_MIN` on
:data:`KERNEL_GATE_SCENARIO` — the rung pair is measured on the same
machine seconds apart, so the ratio is robust where absolutes are not.

Smoke payloads run a few hundred messages on whatever runner CI hands out,
so the default tolerance is deliberately wide (30%): it catches "the hot
path got slower by a constant factor", not micro-noise.  Run locally as::

    PYTHONPATH=src python benchmarks/diff_bench.py \
        --fresh BENCH_fresh.json --committed BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.30

#: The kernel rung the vectorized-speedup gate reads (the paper's 1120-node
#: fig3 organisation — the large-topology case the vectorized core exists
#: for) and the minimum speedup over the FSM dispatch kernel it demands.
KERNEL_GATE_SCENARIO = "fig3"
KERNEL_GATE_MIN = 1.5


def load_payload(path: Path) -> dict:
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or "scenarios" not in data:
        raise SystemExit(f"error: {path} is not a benchmark payload")
    return data


def check_comparable(fresh: dict, committed: dict) -> None:
    """Refuse to compare payloads measured under different methodologies.

    A smoke payload runs a few hundred messages, so fixed per-run setup
    dominates and its messages/sec is structurally below a full-budget
    run — comparing across budgets would always "regress".
    """
    for field in ("budget", "points", "smoke"):
        fresh_value, committed_value = fresh.get(field), committed.get(field)
        if fresh_value != committed_value:
            raise SystemExit(
                f"error: payloads are not comparable: {field}={fresh_value!r} in the "
                f"fresh payload vs {committed_value!r} in the committed artifact; "
                "regenerate the fresh payload at the committed budget"
            )


def diff_payloads(fresh: dict, committed: dict, tolerance: float) -> list[str]:
    """Human-readable regression lines (empty when everything is within bounds)."""
    regressions: list[str] = []
    for name, reference in committed["scenarios"].items():
        current = fresh["scenarios"].get(name)
        if current is None:
            regressions.append(f"{name}: missing from the fresh payload")
            continue
        before = reference.get("messages_per_second")
        after = current.get("messages_per_second")
        if not before or not after:
            continue
        floor = before * (1.0 - tolerance)
        if after < floor:
            regressions.append(
                f"{name}: {after:.1f} msg/s is {1 - after / before:.0%} below the "
                f"committed {before:.1f} msg/s (tolerance {tolerance:.0%})"
            )
    return regressions


def check_kernel_gate(
    fresh: dict,
    scenario: str = KERNEL_GATE_SCENARIO,
    minimum: float = KERNEL_GATE_MIN,
) -> list[str]:
    """The vectorized-kernel speedup gate over the fresh payload's rungs.

    Reads the ``kernels`` section ``run_bench`` always records: the FSM
    dispatch and vectorized kernels at matched budget.  Payloads that do not
    cover the gate scenario (e.g. a partial local run) are skipped; a
    payload that covers it but lacks the vectorized rung, or whose rung
    falls below the minimum, fails.
    """
    if scenario not in fresh.get("scenarios", {}):
        return []
    rungs = fresh.get("kernels") or []
    vectorized = next(
        (
            rung
            for rung in rungs
            if rung.get("scenario") == scenario and rung.get("kernel") == "vectorized"
        ),
        None,
    )
    if vectorized is None:
        return [f"{scenario}: fresh payload has no vectorized kernel rung"]
    speedup = vectorized.get("speedup") or 0.0
    if speedup < minimum:
        return [
            f"{scenario}: vectorized kernel is only {speedup:.2f}x the FSM "
            f"dispatch kernel (gate {minimum:.1f}x at matched budget)"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True, help="freshly generated payload")
    parser.add_argument(
        "--committed", type=Path, required=True, help="artifact committed in the repo"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional messages/sec drop before failing (default 0.30)",
    )
    args = parser.parse_args(argv)
    fresh = load_payload(args.fresh)
    committed = load_payload(args.committed)
    check_comparable(fresh, committed)
    regressions = diff_payloads(fresh, committed, args.tolerance)
    regressions += check_kernel_gate(fresh)
    for name, entry in fresh["scenarios"].items():
        reference = committed["scenarios"].get(name, {})
        before = reference.get("messages_per_second")
        ratio = f" ({entry['messages_per_second'] / before:.2f}x committed)" if before else ""
        print(f"{name:<14} {entry['messages_per_second']:>10.1f} msg/s{ratio}")
    for rung in fresh.get("kernels", []):
        if rung.get("kernel") != "vectorized":
            continue
        print(
            f"{rung['scenario']:<14} vectorized {rung['speedup']:>5.2f}x "
            f"vs dispatch at matched budget"
        )
    if regressions:
        print("\nbenchmark gate failures:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno messages/sec regression beyond tolerance; kernel gate holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
