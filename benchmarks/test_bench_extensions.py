"""Benchmark: the paper's future-work extensions, exercised end to end.

Covers the non-uniform (hot-spot) traffic extension — model and simulator —
and the processor-heterogeneity extension, on the N=544 Table 1 organisation.
"""

import math

import pytest

from benchmarks.conftest import bench_simulation_config
from repro.experiments.ablation import traffic_pattern_ablation
from repro.experiments.configs import table1_system
from repro.experiments.report import ablation_to_table
from repro.model import (
    HotspotTrafficModel,
    MessageSpec,
    MultiClusterLatencyModel,
    ProcessorHeterogeneityModel,
)
from repro.workloads import HotspotTraffic

MESSAGE = MessageSpec(32, 256)
SPEC = table1_system(544)
#: hot cluster: the last (largest, 64-node) cluster of the N=544 organisation
HOT_CLUSTER = 15


@pytest.mark.benchmark(group="extensions")
def test_hotspot_model_versus_uniform_model(benchmark):
    """Analytical extension: a 20% hot-spot lowers the saturation threshold."""

    def run():
        uniform = MultiClusterLatencyModel(SPEC, MESSAGE)
        hotspot = HotspotTrafficModel(SPEC, hot_cluster=HOT_CLUSTER, hotspot_fraction=0.2,
                                      message=MESSAGE)
        grid = [1e-4, 2e-4, 3e-4, 4e-4]
        return [(g, uniform.mean_latency(g), hotspot.mean_latency(g)) for g in grid]

    rows = benchmark(run)
    print()
    print("lambda_g   uniform   hotspot(20% -> cluster 15)")
    for lambda_g, uniform_latency, hotspot_latency in rows:
        print(f"{lambda_g:9.2g} {uniform_latency:9.1f} {hotspot_latency:9.1f}")

    for _, uniform_latency, hotspot_latency in rows:
        if math.isfinite(hotspot_latency) and math.isfinite(uniform_latency):
            assert hotspot_latency >= uniform_latency
    # The hot-spot curve saturates no later than the uniform one.
    uniform_saturated = [math.isinf(row[1]) for row in rows]
    hotspot_saturated = [math.isinf(row[2]) for row in rows]
    assert sum(hotspot_saturated) >= sum(uniform_saturated)


@pytest.mark.benchmark(group="extensions")
def test_hotspot_simulation_versus_uniform_model(benchmark):
    """Simulation under hot-spot traffic drifts above the uniform-traffic model."""
    offered = [2e-4]
    patterns = {
        "uniform": None,
        "hotspot-20%": HotspotTraffic(hot_cluster=HOT_CLUSTER, fraction=0.2),
    }

    def run():
        return traffic_pattern_ablation(
            SPEC,
            MESSAGE,
            offered,
            patterns,
            simulation_config=bench_simulation_config(),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for result in results.values():
        print(ablation_to_table(result).to_text())
        print()

    uniform_error = abs(results["uniform"].points[0].relative_difference)
    hotspot_error = abs(results["hotspot-20%"].points[0].relative_difference)
    # The uniform simulation tracks the model; the hot-spot one sits higher.
    assert uniform_error < 0.25
    assert results["hotspot-20%"].points[0].variant > results["uniform"].points[0].variant


@pytest.mark.benchmark(group="extensions")
def test_processor_heterogeneity_extension(benchmark):
    """Skewing generation toward the big clusters raises latency at equal mean load."""

    def run():
        uniform = MultiClusterLatencyModel(SPEC, MESSAGE)
        # The five 64-node clusters generate 3x the traffic of the others.
        powers = [1.0] * 11 + [3.0] * 5
        skewed = ProcessorHeterogeneityModel(SPEC, powers, message=MESSAGE)
        grid = [1e-4, 2e-4, 3e-4]
        return [(g, uniform.mean_latency(g), skewed.mean_latency(g)) for g in grid]

    rows = benchmark(run)
    print()
    print("lambda_g   uniform   fast-big-clusters")
    for lambda_g, uniform_latency, skewed_latency in rows:
        print(f"{lambda_g:9.2g} {uniform_latency:9.1f} {skewed_latency:9.1f}")

    for _, uniform_latency, skewed_latency in rows:
        assert math.isinf(skewed_latency) or skewed_latency > uniform_latency
