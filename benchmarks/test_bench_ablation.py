"""Benchmark: design-choice ablations from DESIGN.md.

Not part of the paper's evaluation, but they answer the questions its design
raises: how much does modelling cluster-size heterogeneity matter, and how
much does the Draper-Ghosh variance approximation contribute near saturation.
"""

import math

import numpy as np
import pytest

from repro.experiments.ablation import heterogeneity_ablation, variance_ablation
from repro.experiments.configs import table1_system
from repro.experiments.report import ablation_to_table
from repro.model import MultiClusterLatencyModel, saturation_point
from repro.model.parameters import MessageSpec

MESSAGE = MessageSpec(32, 256)


def _steady_state_grid(total_nodes: int, points: int = 6) -> np.ndarray:
    model = MultiClusterLatencyModel(table1_system(total_nodes), MESSAGE)
    upper = saturation_point(model, upper_bound=2e-3) * 0.9
    return np.linspace(0.0, upper, points + 1)[1:]


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("total_nodes", [1120, 544], ids=["N1120", "N544"])
def test_heterogeneity_ablation(benchmark, total_nodes):
    """Equal-cluster-size approximation versus the heterogeneity-aware model."""
    spec = table1_system(total_nodes)
    offered = _steady_state_grid(total_nodes)

    result = benchmark(lambda: heterogeneity_ablation(spec, MESSAGE, offered))
    print()
    print(ablation_to_table(result).to_text())

    # Ignoring the size mix visibly changes the prediction for both Table 1
    # organisations (they are strongly heterogeneous).
    assert result.max_relative_difference() > 0.01
    # And the difference is not an artefact of saturation: at least half of
    # the grid compares finite values.
    finite = [p for p in result.points if not math.isnan(p.relative_difference)]
    assert len(finite) >= len(result.points) // 2


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("total_nodes", [1120, 544], ids=["N1120", "N544"])
def test_variance_approximation_ablation(benchmark, total_nodes):
    """Draper-Ghosh service-time variance versus deterministic service."""
    spec = table1_system(total_nodes)
    offered = _steady_state_grid(total_nodes)

    result = benchmark(lambda: variance_ablation(spec, MESSAGE, offered))
    print()
    print(ablation_to_table(result).to_text())

    differences = [
        abs(p.relative_difference)
        for p in result.points
        if not math.isnan(p.relative_difference)
    ]
    # The variance term only matters as queues fill up: negligible at low
    # load, visible near saturation.
    assert differences[0] < 0.05
    assert differences[-1] > differences[0]
    # Zero variance can only lower the predicted latency.
    for point in result.points:
        if math.isfinite(point.reference) and math.isfinite(point.variant):
            assert point.variant <= point.reference + 1e-9
