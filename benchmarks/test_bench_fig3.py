"""Benchmark: regenerate Fig. 3 (N=1120) — latency versus offered traffic.

The paper's Fig. 3 has two panels (M = 32 and 64 flits), each with an
analysis and a simulation curve for flit sizes 256 and 512 bytes.  Each
benchmark below regenerates one series (model curve plus simulation points),
prints it, and asserts the qualitative findings of the paper:

* analysis tracks simulation in the steady-state region;
* latency rises (and eventually diverges) with offered traffic;
* larger flits (Lm=512) are uniformly slower and saturate earlier.
"""

import math

import pytest

from benchmarks.conftest import bench_points, bench_simulation_config
from repro.experiments.compare import compare_model_and_simulation, curves_match_in_shape
from repro.experiments.configs import FIGURE_SPECS
from repro.experiments.report import agreement_to_text, sweep_to_table
from repro.experiments.sweep import latency_sweep
from repro.model.parameters import MessageSpec

PANELS = [
    pytest.param("fig3-M32", 256, id="M32-Lm256"),
    pytest.param("fig3-M32", 512, id="M32-Lm512"),
    pytest.param("fig3-M64", 256, id="M64-Lm256"),
    pytest.param("fig3-M64", 512, id="M64-Lm512"),
]


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("panel_name,flit_bytes", PANELS)
def test_fig3_series(benchmark, panel_name, flit_bytes):
    panel = FIGURE_SPECS[panel_name]
    message = MessageSpec(panel.message_length, flit_bytes)
    offered = panel.offered_traffic(bench_points())

    def run():
        return latency_sweep(
            panel.system,
            message,
            offered,
            run_simulation=True,
            simulation_config=bench_simulation_config(),
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(sweep_to_table(sweep).to_text())
    report = compare_model_and_simulation(sweep)
    print(agreement_to_text(report))

    # Shape assertions (paper findings), not absolute numbers.  The Lm=512
    # curves saturate within the first half of the figure's traffic axis, so
    # they may contribute a single steady-state point at the bench grid.
    if len(sweep.steady_state_points()) >= 2:
        ok, reason = curves_match_in_shape(sweep, tolerance=0.35)
        assert ok, reason
    assert report.compared_points >= 1
    assert report.max_relative_error < 0.35
    finite_sim = [
        point.simulated.mean_latency
        for point in sweep.points
        if point.simulated is not None and math.isfinite(point.simulated.mean_latency)
    ]
    assert finite_sim[-1] > finite_sim[0], "latency must rise with offered traffic"


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("message_length", [32, 64], ids=["M32", "M64"])
def test_fig3_larger_flits_saturate_earlier(benchmark, message_length):
    """Within one panel the Lm=512 curve sits above and saturates before Lm=256."""
    panel = FIGURE_SPECS[f"fig3-M{message_length}"]
    offered = panel.offered_traffic(bench_points())

    def run():
        return {
            flit: latency_sweep(panel.system, MessageSpec(message_length, flit), offered,
                                run_simulation=False)
            for flit in (256, 512)
        }

    sweeps = benchmark(run)
    small, large = sweeps[256], sweeps[512]
    assert large.model_saturation_point() <= small.model_saturation_point()
    for point_small, point_large in zip(small.points, large.points):
        if math.isfinite(point_small.model_latency) and math.isfinite(point_large.model_latency):
            assert point_large.model_latency > point_small.model_latency
