"""Benchmark: raw performance of the library's building blocks.

Not a paper table — these benchmarks track the cost of the pieces users call
in tight loops (model evaluation for design-space sweeps, route computation,
simulator event throughput) so regressions show up in CI.
"""

import pytest

from benchmarks.conftest import bench_simulation_config
from repro.experiments.configs import table1_system
from repro.model import MessageSpec, MultiClusterLatencyModel
from repro.routing import UpDownRouter
from repro.sim import MultiClusterSimulator, SimulationConfig
from repro.topology import MPortNTree

MESSAGE = MessageSpec(32, 256)


@pytest.mark.benchmark(group="components")
@pytest.mark.parametrize("total_nodes", [1120, 544], ids=["N1120", "N544"])
def test_model_evaluation_speed(benchmark, total_nodes):
    """One analytical evaluation of a Table 1 organisation."""
    model = MultiClusterLatencyModel(table1_system(total_nodes), MESSAGE)
    latency = benchmark(model.mean_latency, 1e-4)
    assert latency > 0


@pytest.mark.benchmark(group="components")
def test_model_curve_speed(benchmark):
    """A ten-point design-space curve (what the exploration example runs in loops)."""
    model = MultiClusterLatencyModel(table1_system(544), MESSAGE)
    lambdas = [i * 5e-5 for i in range(1, 11)]
    curve = benchmark(model.latency_curve, lambdas)
    assert len(curve) == 10


@pytest.mark.benchmark(group="components")
def test_routing_speed(benchmark):
    """Route computation over a 128-node tree (the largest per-cluster network)."""
    tree = MPortNTree(8, 3)
    router = UpDownRouter(tree)

    def route_many():
        total = 0
        for source in range(0, tree.num_nodes, 8):
            for dest in range(tree.num_nodes):
                if source != dest:
                    total += router.route(source, dest).num_links
        return total

    total_links = benchmark(route_many)
    assert total_links > 0


@pytest.mark.benchmark(group="components")
def test_simulator_throughput(benchmark):
    """End-to-end simulation of a small organisation (events per second proxy)."""
    simulator = MultiClusterSimulator(
        table1_system(544),
        MESSAGE,
        config=SimulationConfig(
            measured_messages=800, warmup_messages=80, drain_messages=80, seed=0
        ),
    )
    result = benchmark.pedantic(lambda: simulator.run(1e-4), rounds=1, iterations=1)
    assert result.measured_messages == 800


@pytest.mark.benchmark(group="components")
def test_full_table1_simulation_point(benchmark):
    """One simulated operating point of the N=1120 organisation at the bench budget."""
    simulator = MultiClusterSimulator(
        table1_system(1120), MESSAGE, config=bench_simulation_config()
    )
    result = benchmark.pedantic(lambda: simulator.run(1e-4), rounds=1, iterations=1)
    assert not result.saturated
