"""Benchmark: raw throughput of the compiled simulator core.

Runs the fixed ``BENCH_simulator.json`` scenario set (the same measurement
``repro-multicluster bench`` records as the repo's perf-trajectory artifact)
and prints the per-scenario messages/second.  The assertions are smoke-level
only — the harness must execute and deliver every message — so the benchmark
stays meaningful under the tiny CI budgets.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import bench_points
from repro.experiments.bench import BENCH_SCENARIOS, bench_to_text, run_bench


def _bench_budget_name() -> str:
    budget = os.environ.get("REPRO_BENCH_BUDGET", "quick").lower()
    return budget if budget in ("quick", "default", "paper") else "quick"


@pytest.mark.benchmark(group="simulator-core")
def test_compiled_core_throughput(benchmark):
    def run():
        return run_bench(points=bench_points(), budget=_bench_budget_name())

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(bench_to_text(payload))
    assert set(payload["scenarios"]) == set(BENCH_SCENARIOS)
    for name, entry in payload["scenarios"].items():
        assert entry["messages_per_second"] > 0, name
        assert entry["measured_messages"] > 0, name
        assert entry["wall_clock_seconds"] > 0, name
