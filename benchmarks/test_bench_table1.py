"""Benchmark: regenerate Table 1 (the validation system organisations).

Table 1 is structural, so this benchmark measures how long it takes to build
the two complete system objects (topologies, ICN2, concentrators) and checks
that every derived quantity matches the paper's row contents.
"""

import pytest

from repro.experiments.report import table1_to_table
from repro.experiments.table1 import table1_rows
from repro.topology.multicluster import MultiClusterSystem
from repro.experiments.configs import table1_specs


@pytest.mark.benchmark(group="table1")
def test_table1_rows(benchmark):
    rows = benchmark(table1_rows)
    print()
    print(table1_to_table(rows).to_text())

    assert [row.as_cells()[:3] for row in rows] == [(1120, 32, 8), (544, 16, 4)]
    large, small = rows
    assert large.organisation == "ni=1 i in [0,11]; ni=2 i in [12,27]; ni=3 i in [28,31]"
    assert small.organisation == "ni=3 i in [0,7]; ni=4 i in [8,10]; ni=5 i in [11,15]"
    assert sum(large.cluster_sizes) == 1120
    assert sum(small.cluster_sizes) == 544


@pytest.mark.benchmark(group="table1")
def test_table1_system_construction(benchmark):
    """Building both organisations end to end (all trees and concentrators)."""

    def build():
        return [MultiClusterSystem(spec) for spec in table1_specs()]

    systems = benchmark(build)
    assert [system.total_nodes for system in systems] == [1120, 544]
    assert [system.icn2.num_nodes for system in systems] == [32, 16]
