"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one ablation
from DESIGN.md) and prints the resulting rows/series, so running::

    pytest benchmarks/ --benchmark-only -s

shows the same content the paper reports.  Simulation-backed benchmarks use a
reduced message budget by default so the whole harness finishes in a few
minutes; set ``REPRO_BENCH_BUDGET=paper`` to reproduce the full 100 000
message methodology (minutes to hours, depending on the machine).
"""

from __future__ import annotations

import os

import pytest

from repro.sim.config import SimulationConfig


def bench_simulation_config(seed: int = 0) -> SimulationConfig:
    """The simulation budget selected through ``REPRO_BENCH_BUDGET``."""
    budget = os.environ.get("REPRO_BENCH_BUDGET", "quick").lower()
    if budget == "paper":
        return SimulationConfig.paper(seed=seed)
    if budget == "default":
        return SimulationConfig(seed=seed)
    return SimulationConfig(
        measured_messages=1_500, warmup_messages=150, drain_messages=150, seed=seed
    )


def bench_points() -> int:
    """Operating points per curve (fewer than the paper's plots, same range)."""
    return int(os.environ.get("REPRO_BENCH_POINTS", "5"))


@pytest.fixture(scope="session")
def simulation_config() -> SimulationConfig:
    return bench_simulation_config()


@pytest.fixture(scope="session")
def points() -> int:
    return bench_points()
