"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that the
package can also be installed in environments whose pip/setuptools cannot do
PEP 517 editable installs (e.g. offline machines without the ``wheel``
package): ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
