"""The unified scenario/engine API — one declarative entry point for everything.

The paper's deliverable is a *comparison*: an analytical latency model and a
flit-level wormhole simulator evaluated over the same system organisations.
This module makes that comparison (and every other experiment in the package)
a single declarative call:

* :class:`Scenario` — a frozen dataclass that fully describes one experiment:
  the system organisation, the message geometry, the channel timing, the
  traffic pattern, the offered-traffic grid and the simulation statistics
  budget.  Scenarios serialise to JSON and back
  (:meth:`Scenario.to_json` / :meth:`Scenario.from_json`), so an experiment
  is a file you can version, share and replay.
* :class:`Engine` — the protocol every backend implements:
  ``evaluate(scenario, lambda_g) -> RunRecord``.  Two engines ship with the
  package: :class:`AnalyticalEngine` (the paper's queueing model, Eq. 35-36)
  and :class:`SimulationEngine` (the wormhole simulator of Section 4).
  New backends plug in through :data:`ENGINE_REGISTRY`.
* :func:`run` — evaluates a scenario under any set of engines and returns a
  :class:`RunSet` of uniform :class:`RunRecord` results.  Simulation
  operating points are embarrassingly parallel; ``parallel=True`` fans them
  out over a :class:`~concurrent.futures.ProcessPoolExecutor`, cutting the
  wall-clock of a figure-scale sweep by roughly the core count while
  producing bit-identical results (each point is reproducible from the
  scenario's seed alone).  ``run()`` is a thin one-scenario campaign:
  multi-scenario plans, streaming progress and the content-addressed
  result store live in :mod:`repro.campaign` / :mod:`repro.store`.
* a **named-scenario registry** — ``scenario("fig3")``,
  ``scenario("table1/544")``, ``scenario("hotspot")`` … give the paper's
  experiments (and a few extensions) stable names; the CLI ``run``
  subcommand accepts either a registered name or a scenario JSON file.

Quick start::

    from repro import api

    result = api.run(api.scenario("fig3", points=8), engines=("model", "sim"),
                     parallel=True)
    for record in result.series("sim"):
        print(record.lambda_g, record.latency, record.metadata["seed"])
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.model.homogeneous import EqualSizeApproximationModel
from repro.model.latency import MultiClusterLatencyModel
from repro.model.parameters import MessageSpec, PAPER_TIMING, TimingParameters
from repro.sim.config import SimulationConfig
from repro.sim.simulator import MultiClusterSimulator
from repro.sim.statistics import SimulationResult
from repro.topology.multicluster import MultiClusterSpec
from repro.topology.zoo.spec import TopologySpec
from repro.utils.serialization import dump_json, from_jsonable, load_json, to_jsonable
from repro.utils.validation import ValidationError
from repro.workloads import (
    ClusterLocalTraffic,
    HotspotTraffic,
    PermutationTraffic,
    TrafficPattern,
    UniformTraffic,
)

__all__ = [
    "AnalyticalEngine",
    "Engine",
    "ENGINE_REGISTRY",
    "PatternSpec",
    "RunRecord",
    "RunSet",
    "Scenario",
    "SimulationEngine",
    "register_scenario",
    "resolve_engines",
    "run",
    "scenario",
    "scenario_names",
    "simulation_budget",
]


# --------------------------------------------------------------------------- #
# Declarative traffic patterns
# --------------------------------------------------------------------------- #
_PATTERN_BUILDERS: Dict[str, Callable[..., TrafficPattern]] = {
    "uniform": UniformTraffic,
    "hotspot": HotspotTraffic,
    "local": ClusterLocalTraffic,
    "permutation": PermutationTraffic,
}


@dataclass(frozen=True)
class PatternSpec:
    """Declarative (JSON-safe) description of a traffic pattern.

    ``kind`` names one of the registered pattern families (``"uniform"``,
    ``"hotspot"``, ``"local"``, ``"permutation"``) and ``params`` carries the
    constructor arguments, e.g.
    ``PatternSpec("hotspot", {"hot_cluster": 0, "fraction": 0.1})``.
    """

    kind: str = "uniform"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _PATTERN_BUILDERS:
            raise ValidationError(
                f"unknown traffic pattern kind {self.kind!r}; "
                f"expected one of {sorted(_PATTERN_BUILDERS)}"
            )

    def build(self) -> TrafficPattern:
        """Instantiate the concrete :class:`TrafficPattern`."""
        return _PATTERN_BUILDERS[self.kind](**self.params)

    def describe(self) -> str:
        if not self.params:
            return self.kind
        args = ", ".join(f"{key}={value}" for key, value in sorted(self.params.items()))
        return f"{self.kind}({args})"


# --------------------------------------------------------------------------- #
# Scenario
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """Everything one experiment needs, as one declarative value.

    Exactly one of ``system`` / ``topology`` must be set.  ``system`` is the
    paper's multi-cluster organisation and works with every engine;
    ``topology`` selects a :mod:`repro.topology.zoo` member (k-ary fat
    trees, fanout trees, tori …), which the simulation engines run through
    the same compiled stack while the analytical model — derived for the
    multi-cluster fat-tree family only — reports itself inapplicable
    (see :func:`repro.experiments.compare.model_applicability`).

    Attributes
    ----------
    system:
        The multi-cluster organisation under study (``None`` for zoo
        scenarios).
    topology:
        A zoo topology spec (``None`` for multi-cluster scenarios).
    message:
        Message geometry (``M`` flits of ``L_m`` bytes).
    timing:
        Channel timing; defaults to the paper's Section 4 values.
    offered_traffic:
        The ``lambda_g`` load grid (strictly positive values).
    pattern:
        Declarative traffic pattern for simulation engines; the analytical
        model always assumes the paper's uniform pattern.
    sim:
        Simulation statistics budget (message counts, seed, time cap).
    variance_approximation:
        Source-queue variance approximation used by the analytical model.
    name:
        Optional label (registry scenarios carry their registered name).
    """

    system: Optional[MultiClusterSpec] = None
    message: MessageSpec = MessageSpec()
    timing: TimingParameters = PAPER_TIMING
    offered_traffic: Tuple[float, ...] = ()
    pattern: PatternSpec = PatternSpec()
    sim: SimulationConfig = SimulationConfig()
    variance_approximation: str = "draper-ghosh"
    name: str = ""
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if (self.system is None) == (self.topology is None):
            raise ValidationError(
                "exactly one of system / topology must be set, got "
                f"system={self.system!r}, topology={self.topology!r}"
            )
        object.__setattr__(
            self, "offered_traffic", tuple(float(value) for value in self.offered_traffic)
        )
        for value in self.offered_traffic:
            if value <= 0:
                raise ValidationError("offered traffic values must be > 0")
        if self.variance_approximation not in ("draper-ghosh", "zero"):
            raise ValidationError(
                "variance_approximation must be 'draper-ghosh' or 'zero', "
                f"got {self.variance_approximation!r}"
            )

    # ------------------------------------------------------------- conveniences
    @staticmethod
    def load_grid(max_traffic: float, points: int) -> Tuple[float, ...]:
        """An evenly spaced grid of ``points`` loads in ``(0, max_traffic]``."""
        if points < 1:
            raise ValidationError(f"points must be >= 1, got {points}")
        if max_traffic <= 0:
            raise ValidationError(f"max_traffic must be > 0, got {max_traffic}")
        return tuple(float(v) for v in np.linspace(0.0, max_traffic, points + 1)[1:])

    def with_traffic(self, offered_traffic: Sequence[float]) -> "Scenario":
        return replace(self, offered_traffic=tuple(float(v) for v in offered_traffic))

    def with_points(self, points: int) -> "Scenario":
        """The same scenario with its load grid resampled to ``points`` values."""
        if not self.offered_traffic:
            raise ValidationError("scenario has no load grid to resample")
        return self.with_traffic(self.load_grid(max(self.offered_traffic), points))

    def with_sim(self, sim: SimulationConfig) -> "Scenario":
        return replace(self, sim=sim)

    def with_seed(self, seed: int | None) -> "Scenario":
        return replace(self, sim=self.sim.with_seed(seed))

    @property
    def network(self) -> Union[MultiClusterSpec, TopologySpec]:
        """Whichever organisation spec is set (system or zoo topology)."""
        if self.system is not None:
            return self.system
        assert self.topology is not None  # __post_init__ invariant
        return self.topology

    @property
    def spec_label(self) -> str:
        network = self.network
        return network.name or f"N={network.total_nodes}"

    def describe(self) -> str:
        label = self.name or self.spec_label
        return (
            f"{label}: {self.network.describe()}; {self.message.describe()}; "
            f"pattern={self.pattern.describe()}; "
            f"{len(self.offered_traffic)} operating points"
        )

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (the inverse of :meth:`from_dict`).

        An unset ``system``/``topology`` is omitted rather than emitted as
        ``null`` — :meth:`from_dict` treats a missing field as its default,
        and multi-cluster scenario dicts (and therefore every store task
        key derived from them) stay byte-identical to releases that predate
        the ``topology`` field.
        """
        data = to_jsonable(self)
        if self.topology is None:
            data.pop("topology", None)
        if self.system is None:
            data.pop("system", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        return from_jsonable(cls, data)

    def to_json(self, path: str | Path) -> Path:
        """Write the scenario to ``path`` as JSON and return the path."""
        return dump_json(self, path)

    @classmethod
    def from_json(cls, path: str | Path) -> "Scenario":
        """Load a scenario previously written with :meth:`to_json`."""
        return cls.from_dict(load_json(path))


# --------------------------------------------------------------------------- #
# Run records
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunRecord:
    """One engine's result at one operating point, in engine-neutral shape."""

    engine: str
    lambda_g: float
    latency: float
    saturated: bool
    #: provenance and cost: seed, wall-clock seconds, measured messages …
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: the full simulation statistics when the engine was a simulator
    simulation: Optional[SimulationResult] = None


@dataclass(frozen=True)
class RunSet:
    """All records produced by one :func:`run` call."""

    scenario: Scenario
    records: Tuple[RunRecord, ...]

    @property
    def engines(self) -> Tuple[str, ...]:
        """Engine names in first-appearance order."""
        seen: List[str] = []
        for record in self.records:
            if record.engine not in seen:
                seen.append(record.engine)
        return tuple(seen)

    def series(self, engine: str) -> Tuple[RunRecord, ...]:
        """The records of one engine in load-grid order."""
        series = tuple(record for record in self.records if record.engine == engine)
        if not series:
            raise ValidationError(
                f"run set has no records for engine {engine!r}; available: {self.engines}"
            )
        return series

    def curve(self, engine: str) -> np.ndarray:
        """The latency curve of one engine over the load grid."""
        return np.array([record.latency for record in self.series(engine)])

    def record(self, engine: str, lambda_g: float) -> RunRecord:
        for candidate in self.series(engine):
            if math.isclose(candidate.lambda_g, lambda_g, rel_tol=1e-12):
                return candidate
        raise ValidationError(f"no {engine!r} record at lambda_g={lambda_g!r}")

    @property
    def offered_traffic(self) -> np.ndarray:
        return np.array(self.scenario.offered_traffic)

    def total_wall_clock_seconds(self) -> float:
        """Summed engine wall-clock cost over every record."""
        return sum(record.metadata.get("wall_clock_seconds", 0.0) for record in self.records)

    def describe(self) -> str:
        return f"{self.scenario.describe()}; engines={', '.join(self.engines)}"


# --------------------------------------------------------------------------- #
# Engines
# --------------------------------------------------------------------------- #
@runtime_checkable
class Engine(Protocol):
    """The backend protocol: anything that can price one operating point.

    Implementations must be picklable (parallel runs ship them to worker
    processes) and deterministic given the scenario — results may depend on
    the scenario's seed but never on evaluation order, so parallel and
    sequential runs are interchangeable.
    """

    #: registry key / record label
    name: str
    #: expensive engines are the ones worth fanning out across processes
    expensive: bool

    def evaluate(self, scenario: Scenario, lambda_g: float) -> RunRecord:
        """Evaluate one operating point of the scenario."""
        ...


def _require_system(scenario: Scenario) -> MultiClusterSpec:
    """The scenario's multi-cluster system, or a clear error for zoo scenarios.

    The analytical model of the paper is derived for the multi-cluster
    fat-tree family only; :func:`repro.experiments.compare.model_applicability`
    reports this per scenario instead of tripping this error.
    """
    if scenario.system is None:
        raise ValidationError(
            f"the analytical model does not apply to zoo topology "
            f"{scenario.network.name!r}; it is derived for multi-cluster "
            "fat-tree systems only (use a simulation engine instead)"
        )
    return scenario.system


class AnalyticalEngine:
    """The paper's analytical latency model (Eq. 35-36) as an engine.

    Parameters
    ----------
    model_factory:
        Optional override mapping a scenario to a model object exposing
        ``mean_latency(lambda_g)``.  The default builds
        :class:`MultiClusterLatencyModel` from the scenario; the ablations
        pass e.g. :class:`EqualSizeApproximationModel` here.
    variance_approximation:
        Optional override of the scenario's variance approximation (used by
        the variance ablation to run both arms over one scenario).
    name:
        Record label; defaults to ``"model"``.
    """

    expensive = False

    def __init__(
        self,
        *,
        model_factory: Optional[Callable[[Scenario], Any]] = None,
        variance_approximation: Optional[str] = None,
        name: str = "model",
    ) -> None:
        self.name = name
        self.model_factory = model_factory
        self.variance_approximation = variance_approximation
        self._cached_for: Optional[Scenario] = None
        self._model: Any = None

    def _build_model(self, scenario: Scenario) -> Any:
        if self.model_factory is not None:
            return self.model_factory(scenario)
        return MultiClusterLatencyModel(
            _require_system(scenario),
            scenario.message,
            scenario.timing,
            variance_approximation=(
                self.variance_approximation or scenario.variance_approximation
            ),
        )

    def model_for(self, scenario: Scenario) -> Any:
        """The (memoised) model instance used for ``scenario``."""
        if self._cached_for is not scenario:
            self._model = self._build_model(scenario)
            self._cached_for = scenario
        return self._model

    def evaluate(self, scenario: Scenario, lambda_g: float) -> RunRecord:
        model = self.model_for(scenario)
        started = _time.perf_counter()
        latency = float(model.mean_latency(lambda_g))
        elapsed = _time.perf_counter() - started
        return RunRecord(
            engine=self.name,
            lambda_g=float(lambda_g),
            latency=latency,
            saturated=math.isinf(latency),
            metadata={
                "wall_clock_seconds": elapsed,
                "variance_approximation": (
                    self.variance_approximation or scenario.variance_approximation
                ),
            },
        )

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_cached_for"] = None
        state["_model"] = None
        return state


class SimulationEngine:
    """The flit-level wormhole simulator (Section 4) as an engine.

    The simulator runs on the compiled network core: constructing it pulls
    the organisation's dense channel-id space and precompiled route tables
    from module-level caches (:func:`repro.topology.compile.compile_system`,
    :func:`repro.routing.compile.compile_system_routes`), so a sweep
    compiles once and every operating point replays the tables.
    :meth:`prepare` triggers that compilation eagerly; :func:`run` calls it
    before fanning points out over a process pool, so forked workers inherit
    the compiled tables instead of recompiling (and spawn-start workers
    compile at most once per process thanks to the same caches).

    Parameters
    ----------
    pattern:
        Optional concrete :class:`TrafficPattern` overriding the scenario's
        declarative :class:`PatternSpec` (for programmatic patterns that have
        no JSON form).
    arrivals_factory:
        Optional arrival-process override forwarded to the simulator.
    name:
        Record label; defaults to ``"sim"``.
    """

    expensive = True

    def __init__(
        self,
        *,
        pattern: Optional[TrafficPattern] = None,
        arrivals_factory: Optional[Callable[[float], Any]] = None,
        name: str = "sim",
    ) -> None:
        self.name = name
        self.pattern = pattern
        self.arrivals_factory = arrivals_factory
        self._cached_for: Optional[Scenario] = None
        self._simulator: Optional[MultiClusterSimulator] = None

    def simulator_for(self, scenario: Scenario) -> MultiClusterSimulator:
        """The (memoised) simulator instance used for ``scenario``."""
        if self._cached_for is not scenario:
            self._simulator = MultiClusterSimulator(
                scenario.network,
                scenario.message,
                scenario.timing,
                config=scenario.sim,
                pattern=self.pattern if self.pattern is not None else scenario.pattern.build(),
                arrivals_factory=self.arrivals_factory,
            )
            self._cached_for = scenario
        return self._simulator

    def prepare(self, scenario: Scenario) -> None:
        """Compile the scenario's network core ahead of evaluation/fan-out.

        Besides the channel-id space and route tables this warms the
        per-(seed, node) random-stream pool — every stream's initial PCG64
        state is snapshotted once here, so each sweep point (and, under a
        fork start, every pool worker) restores states instead of re-seeding
        — and completes any lazily compiled route rows of tall shapes, so
        neither cost lands inside a timed run.
        """
        self.simulator_for(scenario).prepare()

    def evaluate(self, scenario: Scenario, lambda_g: float) -> RunRecord:
        simulator = self.simulator_for(scenario)
        result = simulator.run(lambda_g)
        return RunRecord(
            engine=self.name,
            lambda_g=float(lambda_g),
            latency=float(result.mean_latency),
            saturated=result.saturated,
            metadata={
                "seed": result.seed,
                "wall_clock_seconds": result.wall_clock_seconds,
                "measured_messages": result.measured_messages,
            },
            simulation=result,
        )

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_cached_for"] = None
        state["_simulator"] = None
        return state


#: Engine constructors by registry name (aliases included).
ENGINE_REGISTRY: Dict[str, Callable[[], Engine]] = {
    "model": AnalyticalEngine,
    "analysis": AnalyticalEngine,
    "sim": SimulationEngine,
    "simulation": SimulationEngine,
}

EngineLike = Union[str, Engine]


def resolve_engines(engines: Iterable[EngineLike]) -> Tuple[Engine, ...]:
    """Map engine names / instances to engine instances, rejecting duplicates."""
    resolved: List[Engine] = []
    names: set = set()
    for entry in engines:
        if isinstance(entry, str):
            if entry not in ENGINE_REGISTRY:
                raise ValidationError(
                    f"unknown engine {entry!r}; registered: {sorted(ENGINE_REGISTRY)}"
                )
            engine = ENGINE_REGISTRY[entry]()
        else:
            engine = entry
        if engine.name in names:
            raise ValidationError(f"duplicate engine name {engine.name!r}")
        names.add(engine.name)
        resolved.append(engine)
    if not resolved:
        raise ValidationError("at least one engine is required")
    return tuple(resolved)


# --------------------------------------------------------------------------- #
# run(): the single entry point
# --------------------------------------------------------------------------- #
def _evaluate_point(engine: Engine, scenario: Scenario, lambda_g: float) -> RunRecord:
    """Process-pool worker: evaluate one (engine, operating point) task."""
    return engine.evaluate(scenario, lambda_g)


def run(
    scenario: Scenario,
    engines: Iterable[EngineLike] = ("model", "sim"),
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    store: Optional[Any] = None,
    retry: Optional[Any] = None,
    backend: Optional[Any] = None,
) -> RunSet:
    """Evaluate ``scenario`` under every engine and collect a :class:`RunSet`.

    This is a thin one-scenario campaign: the call builds a single-entry
    :class:`repro.campaign.Campaign` and blocks on its executor, so the
    multi-scenario path (:mod:`repro.campaign`) and this established entry
    point share one task queue, one pool policy and one result shape.

    Parameters
    ----------
    scenario:
        The experiment description; its ``offered_traffic`` grid must be
        non-empty.
    engines:
        Engine names (looked up in :data:`ENGINE_REGISTRY`) or instances.
    parallel:
        Fan the *expensive* engines' operating points out over a process
        pool.  Simulation points are independent and each run is seeded from
        the scenario alone, so the records are identical to a sequential run
        — only the wall-clock (and the per-record ``wall_clock_seconds``
        measurements) change.
    max_workers:
        Process count for the pool; defaults to the machine's CPU count
        capped by the number of parallel tasks.
    store:
        Optional :class:`repro.store.ResultStore` serving previously
        computed records (bit-identical by the golden-seed discipline) and
        persisting new ones.  ``None`` (the default) computes everything
        fresh, preserving the established ``run()`` behaviour.
    retry:
        Optional :class:`repro.campaign.RetryPolicy` re-queuing tasks whose
        pooled workers crash or hang.  ``None`` (the default) gives every
        task one attempt; a task failure then raises a
        :class:`repro.campaign.CampaignExecutionError`.
    backend:
        Optional :class:`repro.campaign.WorkerBackend` supplying the worker
        pool — e.g. :class:`repro.service.PersistentPoolBackend` to run this
        call's pooled tasks on a warm
        :class:`~repro.service.daemon.WorkerDaemon` instead of a fresh
        ephemeral pool.  ``None`` (the default) keeps the ephemeral pool.

    Records are ordered engine-by-engine in the order given, each series in
    load-grid order.
    """
    # Imported lazily: repro.campaign builds on this module's Scenario and
    # engine machinery, so a module-level import here would be circular.
    from repro.campaign import Campaign, CampaignEntry, CampaignExecutor

    campaign = Campaign(
        entries=(CampaignEntry(scenario=scenario, engines=tuple(engines), label="run"),),
        name=scenario.name or "run",
    )
    executor = CampaignExecutor(
        campaign,
        parallel=parallel,
        max_workers=max_workers,
        store=store,
        retry=retry,
        backend=backend,
    )
    return executor.collect().runsets[0]


# --------------------------------------------------------------------------- #
# Named-scenario registry
# --------------------------------------------------------------------------- #
def simulation_budget(budget: str = "quick", seed: int | None = 0) -> SimulationConfig:
    """Resolve a budget name (``quick`` / ``default`` / ``paper``) and seed."""
    if budget == "paper":
        return SimulationConfig.paper(seed=seed)
    if budget == "default":
        return SimulationConfig(seed=seed)
    if budget == "quick":
        return SimulationConfig.quick(seed=seed)
    raise ValidationError(
        f"unknown simulation budget {budget!r}; expected 'quick', 'default' or 'paper'"
    )


ScenarioFactory = Callable[[int, SimulationConfig], Scenario]

_SCENARIOS: Dict[str, ScenarioFactory] = {}


def register_scenario(name: str, factory: ScenarioFactory) -> None:
    """Register a named scenario factory ``factory(points, sim) -> Scenario``."""
    if not name:
        raise ValidationError("scenario name must not be empty")
    _SCENARIOS[name] = factory


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def scenario(
    name: str,
    *,
    points: int = 8,
    budget: str = "quick",
    seed: int | None = 0,
    sim: Optional[SimulationConfig] = None,
) -> Scenario:
    """Build a registered scenario by name.

    ``points`` resamples the load grid; ``budget``/``seed`` (or an explicit
    ``sim`` config) select the simulation statistics budget.
    """
    if name not in _SCENARIOS:
        raise ValidationError(
            f"unknown scenario {name!r}; registered: {', '.join(scenario_names())}"
        )
    config = sim if sim is not None else simulation_budget(budget, seed)
    return _SCENARIOS[name](points, config)


def _table1_series(
    total_nodes: int, points: int, sim: SimulationConfig, *, name: str
) -> Scenario:
    # Imported lazily: experiments.sweep routes through this module, so a
    # module-level import of repro.experiments here would be circular.
    from repro.experiments.configs import FIGURE_TRAFFIC_RANGES, table1_system

    message = MessageSpec(length_flits=32, flit_bytes=256)
    max_traffic = FIGURE_TRAFFIC_RANGES[(total_nodes, message.length_flits)]
    return Scenario(
        system=table1_system(total_nodes),
        message=message,
        offered_traffic=Scenario.load_grid(max_traffic, points),
        sim=sim,
        name=name,
    )


def _register_builtin_scenarios() -> None:
    register_scenario(
        "table1/1120",
        lambda points, sim: _table1_series(1120, points, sim, name="table1/1120"),
    )
    register_scenario(
        "table1/544",
        lambda points, sim: _table1_series(544, points, sim, name="table1/544"),
    )
    # The canonical series of each validation figure (M=32 flits, Lm=256
    # bytes); the remaining series differ only in message geometry and are
    # produced by repro.experiments.figures.
    register_scenario(
        "fig3", lambda points, sim: _table1_series(1120, points, sim, name="fig3")
    )
    register_scenario(
        "fig4", lambda points, sim: _table1_series(544, points, sim, name="fig4")
    )

    def _hotspot(points: int, sim: SimulationConfig) -> Scenario:
        base = _table1_series(544, points, sim, name="hotspot")
        return replace(
            base,
            pattern=PatternSpec("hotspot", {"hot_cluster": 0, "fraction": 0.1}),
        )

    register_scenario("hotspot", _hotspot)

    def _heterogeneous(points: int, sim: SimulationConfig) -> Scenario:
        # A small strongly heterogeneous organisation (the integration-test
        # system): quick enough for laptops, heterogeneous enough to
        # exercise the per-cluster model terms.
        return Scenario(
            system=MultiClusterSpec(
                m=4, cluster_heights=(1, 2, 2, 1), name="heterogeneous"
            ),
            message=MessageSpec(length_flits=32, flit_bytes=256),
            offered_traffic=Scenario.load_grid(1.2e-3, points),
            sim=sim,
            name="heterogeneous",
        )

    register_scenario("heterogeneous", _heterogeneous)

    # One registry scenario per topology-zoo family.  Only the simulation
    # engines apply (the analytical model is fat-tree-specific); the loads
    # stay modest so each family is laptop-quick at the default budget.
    def _zoo(name: str, spec: TopologySpec, max_traffic: float) -> None:
        def factory(points: int, sim: SimulationConfig, spec=spec, name=name) -> Scenario:
            return Scenario(
                topology=spec,
                message=MessageSpec(length_flits=32, flit_bytes=256),
                offered_traffic=Scenario.load_grid(max_traffic, points),
                sim=sim,
                name=name,
            )

        register_scenario(name, factory)

    _zoo("zoo/fattree4", TopologySpec("fattree", {"k": 4}), 1.0e-3)
    _zoo("zoo/tree", TopologySpec("tree", {"depth": 2, "fanout": 4}), 1.0e-3)
    _zoo("zoo/torus", TopologySpec("torus", {"rows": 4, "cols": 4}), 1.0e-3)


_register_builtin_scenarios()


# Re-exported for ablation convenience: an analytical engine built on the
# equal-cluster-size approximation instead of the heterogeneity-aware model.
def equal_size_engine(name: str = "model/equal-size") -> AnalyticalEngine:
    """An :class:`AnalyticalEngine` running the equal-size approximation."""
    return AnalyticalEngine(
        model_factory=lambda scenario: EqualSizeApproximationModel(
            _require_system(scenario), scenario.message, scenario.timing
        ),
        name=name,
    )
