"""Per-source batched workload pre-drawing for the vectorized kernel.

The sequential simulator resumes one generator per source per message: draw
an inter-arrival gap, yield, draw a destination, draw two concentrator
peers if the message leaves its cluster.  Each of those is a Python-level
round trip into a PCG64 generator — roughly a third of the wall clock of an
FSM run, for about one event in twenty.

:class:`SourceBatcher` pre-draws that schedule in chunks instead: one sized
``exponential`` call for the gaps, one batched destination sample, one
bounded-``integers`` call for the interleaved (exit, entry) peer draws of
the chunk's external messages.  **Every element is bit-identical to the
sequential resume** because a sized NumPy draw consumes the underlying
BitGenerator stream exactly like the same number of scalar draws, arrival
times accumulate by the same left fold (``cumsum`` seeded with the chained
base time, matching the simulator's ``now + gap`` chain), and per-stream
draw *order* is preserved — gaps in message order, destinations in message
order, peers interleaved exit-then-entry over external messages only.
``tests/workloads/test_batch.py`` pins the equivalence property against the
scalar path across pooled stream snapshots.

Over-drawing is harmless: streams are single-consumer and re-restored from
the pooled snapshots (:mod:`repro.utils.rng`) at the start of every run, so
a chunk tail the run never consumes leaves no trace in any other draw.
"""

from __future__ import annotations

from math import ceil
from typing import List

import numpy as np

from repro.sim.wormhole import draw_peer
from repro.topology.multicluster import MultiClusterSystem
from repro.utils.validation import ValidationError
from repro.workloads.base import ArrivalProcess, TrafficPattern

__all__ = ["SourceBatcher", "initial_chunk"]

#: Chunk ceiling: refills double up to this many messages per draw.
MAX_CHUNK = 4096

#: Below this chunk size a refill draws with plain scalar calls: one sized
#: NumPy draw costs several microseconds of fixed overhead regardless of
#: size, which a wide-but-shallow run (thousands of sources, a couple of
#: messages each) would pay per *source*.  Both paths consume the stream
#: identically, so the crossover is invisible to the draw sequence.
VECTOR_REFILL_MIN = 16


def initial_chunk(total_messages: int, num_sources: int) -> int:
    """First-chunk size: the expected per-source share of the run.

    Sources consume messages at random, so any one source may run ahead of
    the mean; the doubling refill absorbs that.  Starting at the bare share
    matters on wide shallow runs — pre-drawing eight messages for each of a
    thousand sources that will send one or two is pure setup cost.
    """
    share = ceil(total_messages / max(num_sources, 1))
    return max(1, min(MAX_CHUNK, share))


class SourceBatcher:
    """The pre-drawn message schedule of one source node.

    Parallel per-message arrays, consumed by cursor:

    * ``times[i]`` — absolute arrival time of the source's ``i``-th message
      (within the current chunk);
    * ``dest_clusters[i]`` / ``dest_nodes[i]`` — its destination;
    * ``exit_peers[i]`` / ``entry_peers[i]`` — the distributed-concentrator
      peer draws, ``-1`` for intra-cluster messages (which draw none).

    The consumer reads index :attr:`cursor`, advances it, and calls
    :meth:`refill` when it hits :attr:`limit`; refills *extend* the arrays
    (the cursor never rewinds) and chain the time base so chunk boundaries
    are invisible in the arrival-time sequence.  Extension means a caller
    may also refill ahead of consumption — the vectorized kernel pre-draws
    each source's expected share at construction so its event loop almost
    never draws.

    Construction draws *only the first arrival gap*: the scheduler needs
    every source's first arrival time up front, but destinations and peer
    draws of sources that never fire before the run stops would be pure
    setup cost (on a thousand-source system at a small message budget, most
    of it).  :attr:`dest_clusters` is ``None`` until the consumer calls
    :meth:`materialize` at the first consumption; subsequent refills draw
    fully-aligned chunks.  The sequential path draws gap, then destination,
    then peers per message from three *independent* streams, so deferring
    the latter two changes no stream's draw order.
    """

    __slots__ = (
        "times",
        "dest_clusters",
        "dest_nodes",
        "exit_peers",
        "entry_peers",
        "cursor",
        "limit",
        "_arrival_rng",
        "_dest_rng",
        "_peer_rng",
        "_arrivals",
        "_pattern",
        "_system",
        "_cluster",
        "_node",
        "_source_nodes",
        "_cluster_nodes",
        "_base_time",
        "_chunk",
    )

    def __init__(
        self,
        system: MultiClusterSystem,
        pattern: TrafficPattern,
        arrivals: ArrivalProcess,
        arrival_rng: np.random.Generator,
        dest_rng: np.random.Generator,
        peer_rng: np.random.Generator,
        cluster: int,
        node: int,
        cluster_nodes: np.ndarray,
        chunk: int,
    ) -> None:
        self._system = system
        self._pattern = pattern
        self._arrivals = arrivals
        self._arrival_rng = arrival_rng
        self._dest_rng = dest_rng
        self._peer_rng = peer_rng
        self._cluster = cluster
        self._node = node
        self._source_nodes = int(cluster_nodes[cluster])
        self._cluster_nodes = cluster_nodes
        self._chunk = chunk
        # Construction draws the first arrival gap only — the scheduler
        # needs every source's first arrival time before the run starts.
        # 0.0 + gap is exact, so this matches the sequential left fold.
        self._base_time = arrivals.next_interarrival(arrival_rng)
        self.cursor = 0
        self.limit = 1
        self.times: List[float] = [self._base_time]
        self.dest_clusters: "List[int] | None" = None
        self.dest_nodes: "List[int] | None" = None
        self.exit_peers: "List[int] | None" = None
        self.entry_peers: "List[int] | None" = None

    def materialize(self) -> None:
        """Draw the deferred destination/peers of the construction chunk.

        Called by the consumer the first time this source's schedule is
        actually read; a source whose first arrival never fires (run stops
        first) skips these draws entirely.  Per-stream draw order matches
        the sequential path — the destination and peer streams see their
        first draws here exactly as they would at the first arrival event.
        """
        sample = self._pattern.sample_destination(
            self._dest_rng, self._system, self._cluster, self._node
        )
        if sample.cluster != self._cluster:
            exit_peer = draw_peer(self._peer_rng, self._source_nodes, self._node)
            entry_peer = draw_peer(
                self._peer_rng, int(self._cluster_nodes[sample.cluster]), sample.node
            )
        else:
            exit_peer = entry_peer = -1
        self.dest_clusters = [sample.cluster]
        self.dest_nodes = [sample.node]
        self.exit_peers = [exit_peer]
        self.entry_peers = [entry_peer]

    def refill(self) -> None:
        """Draw the next chunk of the schedule, extending the arrays."""
        if self.dest_clusters is None:
            self.materialize()
        count = self._chunk
        if count < MAX_CHUNK:
            self._chunk = min(count * 2, MAX_CHUNK)
        if count < VECTOR_REFILL_MIN:
            self._refill_scalar(count)
            return
        gaps = np.asarray(
            self._arrivals.next_interarrivals(self._arrival_rng, count),
            dtype=np.float64,
        )
        # Seeding the cumulative sum with the chained base reproduces the
        # sequential left fold t[i] = t[i-1] + gap[i] bit for bit — float
        # addition is not associative, so `base + cumsum(gaps)` would not.
        times = np.cumsum(np.concatenate(((self._base_time,), gaps)))
        self._base_time = float(times[-1])
        self.times.extend(times[1:].tolist())

        clusters, nodes = self._pattern.sample_destination_batch(
            self._dest_rng, self._system, self._cluster, self._node, count
        )
        self.dest_clusters.extend(clusters)
        self.dest_nodes.extend(nodes)
        self._draw_peers(np.asarray(clusters), np.asarray(nodes), count)
        self.limit += count

    def _refill_scalar(self, count: int) -> None:
        """Small-chunk refill via the sequential simulator's own scalar calls.

        Draw-for-draw the same stream consumption as the vectorized path (a
        sized draw equals that many scalar draws), chosen purely on cost:
        per-stream order is gaps, then destinations, then interleaved peer
        pairs over the external messages — identical to the array path.
        """
        arrival_rng = self._arrival_rng
        arrivals = self._arrivals
        now = self._base_time
        times = self.times
        for _ in range(count):
            now = now + arrivals.next_interarrival(arrival_rng)
            times.append(now)
        self._base_time = now
        dest_rng = self._dest_rng
        pattern = self._pattern
        system = self._system
        cluster = self._cluster
        node = self._node
        dest_clusters = []
        dest_nodes = []
        for _ in range(count):
            sample = pattern.sample_destination(dest_rng, system, cluster, node)
            dest_clusters.append(sample.cluster)
            dest_nodes.append(sample.node)
        self.dest_clusters.extend(dest_clusters)
        self.dest_nodes.extend(dest_nodes)
        peer_rng = self._peer_rng
        source_nodes = self._source_nodes
        cluster_nodes = self._cluster_nodes
        exit_peers = self.exit_peers
        entry_peers = self.entry_peers
        for index in range(count):
            dest_cluster = dest_clusters[index]
            if dest_cluster != cluster:
                exit_peers.append(draw_peer(peer_rng, source_nodes, node))
                entry_peers.append(
                    draw_peer(
                        peer_rng, int(cluster_nodes[dest_cluster]), dest_nodes[index]
                    )
                )
            else:
                exit_peers.append(-1)
                entry_peers.append(-1)
        self.limit += count

    def _draw_peers(self, clusters: np.ndarray, nodes: np.ndarray, count: int) -> None:
        """Batch the (exit, entry) concentrator peer draws of the chunk.

        The sequential path draws, per external message, an exit peer in the
        source cluster then an entry peer in the destination cluster — two
        bounded draws from the same stream.  One ``integers`` call over the
        interleaved bounds array consumes the stream identically.
        """
        external = clusters != self._cluster
        externals = int(np.count_nonzero(external))
        if externals == 0:
            self.exit_peers.extend([-1] * count)
            self.entry_peers.extend([-1] * count)
            return
        entry_bounds = self._cluster_nodes[clusters[external]] - 1
        bounds = np.empty(2 * externals, dtype=np.int64)
        bounds[0::2] = self._source_nodes - 1
        bounds[1::2] = entry_bounds
        if bounds.min() < 1:
            raise ValidationError("drawing a peer needs at least two nodes")
        draws = self._peer_rng.integers(0, bounds)
        exit_draws = draws[0::2]
        entry_draws = draws[1::2]
        # draw_peer's skip-the-excluded-slot adjustment, vectorized.
        exit_draws += exit_draws >= self._node
        entry_draws += entry_draws >= nodes[external]
        exit_full = np.full(count, -1, dtype=np.int64)
        entry_full = np.full(count, -1, dtype=np.int64)
        exit_full[external] = exit_draws
        entry_full[external] = entry_draws
        self.exit_peers.extend(exit_full.tolist())
        self.entry_peers.extend(entry_full.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SourceBatcher(c{self._cluster}n{self._node}, "
            f"cursor={self.cursor}/{self.limit})"
        )
