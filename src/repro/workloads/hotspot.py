"""Hot-spot traffic: a fraction of the messages targets one hot cluster/node."""

from __future__ import annotations

import numpy as np

from repro.topology.multicluster import MultiClusterSystem
from repro.utils.validation import ValidationError, check_in_range
from repro.workloads.base import DestinationSample, TrafficPattern
from repro.workloads.uniform import UniformTraffic


class HotspotTraffic(TrafficPattern):
    """With probability ``fraction`` the destination lies in the hot cluster.

    Parameters
    ----------
    hot_cluster:
        Index of the cluster receiving the extra traffic.
    fraction:
        Probability that a message is hot-spot directed (0 disables the
        hot spot and reduces to uniform traffic).
    hot_node:
        Optional local node index inside the hot cluster.  When given, hot
        messages all target that single node (a server hot spot); otherwise
        they spread uniformly over the hot cluster's nodes (a storage or
        I/O-cluster hot spot).
    """

    def __init__(self, hot_cluster: int, fraction: float, hot_node: int | None = None) -> None:
        check_in_range(fraction, 0.0, 1.0, "fraction")
        self.hot_cluster = int(hot_cluster)
        self.fraction = float(fraction)
        self.hot_node = hot_node if hot_node is None else int(hot_node)
        self._uniform = UniformTraffic()

    def sample_destination(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
    ) -> DestinationSample:
        hot = system.cluster(self.hot_cluster)
        if self.hot_node is not None and not 0 <= self.hot_node < hot.num_nodes:
            raise ValidationError(
                f"hot node {self.hot_node} out of range for cluster {self.hot_cluster}"
            )
        if rng.random() >= self.fraction:
            return self._uniform.sample_destination(
                rng, system, source_cluster, source_node
            )
        if self.hot_node is not None:
            node = self.hot_node
            if source_cluster == self.hot_cluster and node == source_node:
                # The hot node never sends to itself; fall back to uniform.
                return self._uniform.sample_destination(
                    rng, system, source_cluster, source_node
                )
            return DestinationSample(self.hot_cluster, node)
        # Uniform over the hot cluster's nodes, excluding the source if it
        # happens to live there.
        if source_cluster == self.hot_cluster:
            draw = int(rng.integers(0, hot.num_nodes - 1))
            if draw >= source_node:
                draw += 1
        else:
            draw = int(rng.integers(0, hot.num_nodes))
        return DestinationSample(self.hot_cluster, draw)

    def describe(self) -> str:
        target = f"cluster {self.hot_cluster}"
        if self.hot_node is not None:
            target += f", node {self.hot_node}"
        return f"hotspot({target}, fraction={self.fraction:g})"
