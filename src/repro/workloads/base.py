"""Workload abstractions: destination patterns and arrival processes."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.topology.multicluster import MultiClusterSystem
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class DestinationSample:
    """A destination drawn by a traffic pattern: cluster index and local node index."""

    cluster: int
    node: int


class TrafficPattern(abc.ABC):
    """Chooses the destination of each generated message.

    Implementations must never return the source itself (assumption 2 sends
    every message to *another* node) and must stay within the system's node
    ranges; :meth:`validate_sample` is available to enforce both in tests.
    """

    @abc.abstractmethod
    def sample_destination(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
    ) -> DestinationSample:
        """Draw the destination of one message."""

    def describe(self) -> str:
        """Human-readable name used in experiment reports."""
        return type(self).__name__

    @staticmethod
    def validate_sample(
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
        sample: DestinationSample,
    ) -> DestinationSample:
        """Raise if the sample is out of range or equal to the source."""
        cluster = system.cluster(sample.cluster)
        if not 0 <= sample.node < cluster.num_nodes:
            raise ValidationError(
                f"destination node {sample.node} out of range for cluster {sample.cluster}"
            )
        if sample.cluster == source_cluster and sample.node == source_node:
            raise ValidationError("destination equals the source node")
        return sample


class ArrivalProcess(abc.ABC):
    """Generates message inter-arrival times for one source node."""

    @abc.abstractmethod
    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Time until the node generates its next message."""

    @property
    @abc.abstractmethod
    def rate(self) -> float:
        """Mean generation rate (messages per time unit)."""

    def describe(self) -> str:
        return f"{type(self).__name__}(rate={self.rate:g})"
