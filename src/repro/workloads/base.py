"""Workload abstractions: destination patterns and arrival processes."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.topology.multicluster import MultiClusterSystem
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class DestinationSample:
    """A destination drawn by a traffic pattern: cluster index and local node index."""

    cluster: int
    node: int


class TrafficPattern(abc.ABC):
    """Chooses the destination of each generated message.

    Implementations must never return the source itself (assumption 2 sends
    every message to *another* node) and must stay within the system's node
    ranges; :meth:`validate_sample` is available to enforce both in tests.
    """

    @abc.abstractmethod
    def sample_destination(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
    ) -> DestinationSample:
        """Draw the destination of one message."""

    def sample_destination_batch(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
        count: int,
    ) -> "tuple[list[int], list[int]]":
        """Draw ``count`` destinations as ``(clusters, nodes)`` lists.

        The batched entry point of the vectorized kernel.  This default
        simply resumes :meth:`sample_destination` ``count`` times, so *any*
        pattern is batchable with bit-identical draws; subclasses whose
        distribution vectorizes (uniform) override it with array code.  The
        contract is absolute: element ``i`` must equal the ``i``-th scalar
        sample from the same generator state.
        """
        clusters = [0] * count
        nodes = [0] * count
        for index in range(count):
            sample = self.sample_destination(rng, system, source_cluster, source_node)
            clusters[index] = sample.cluster
            nodes[index] = sample.node
        return clusters, nodes

    def describe(self) -> str:
        """Human-readable name used in experiment reports."""
        return type(self).__name__

    @staticmethod
    def validate_sample(
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
        sample: DestinationSample,
    ) -> DestinationSample:
        """Raise if the sample is out of range or equal to the source."""
        cluster = system.cluster(sample.cluster)
        if not 0 <= sample.node < cluster.num_nodes:
            raise ValidationError(
                f"destination node {sample.node} out of range for cluster {sample.cluster}"
            )
        if sample.cluster == source_cluster and sample.node == source_node:
            raise ValidationError("destination equals the source node")
        return sample


class ArrivalProcess(abc.ABC):
    """Generates message inter-arrival times for one source node."""

    @abc.abstractmethod
    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Time until the node generates its next message."""

    def next_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` inter-arrival gaps as a float64 array.

        Batched twin of :meth:`next_interarrival` with the same bit-identity
        contract as :meth:`TrafficPattern.sample_destination_batch`: element
        ``i`` must equal the ``i``-th sequential scalar draw.  The default
        loops; distributions whose sampler vectorizes override it.
        """
        return np.array(
            [self.next_interarrival(rng) for _ in range(count)], dtype=np.float64
        )

    @property
    @abc.abstractmethod
    def rate(self) -> float:
        """Mean generation rate (messages per time unit)."""

    def describe(self) -> str:
        return f"{type(self).__name__}(rate={self.rate:g})"
