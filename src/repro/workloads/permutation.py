"""Permutation traffic: every node sends all its messages to one fixed partner.

A random permutation is the classic adversarial pattern for interconnection
networks: it removes the statistical multiplexing that uniform traffic
enjoys, so deterministic routings show their worst-case contention.  The
permutation is drawn once (derangement-style, no fixed points) from the seed
the simulator provides, so runs are reproducible.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.topology.multicluster import MultiClusterSystem
from repro.workloads.base import DestinationSample, TrafficPattern


class PermutationTraffic(TrafficPattern):
    """Fixed random node-to-node permutation without fixed points."""

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed
        self._permutation: Optional[Dict[int, int]] = None
        self._system_size: Optional[int] = None

    def _build(self, rng: np.random.Generator, system: MultiClusterSystem) -> Dict[int, int]:
        generator = np.random.default_rng(self.seed) if self.seed is not None else rng
        size = system.total_nodes
        while True:
            permutation = generator.permutation(size)
            if not np.any(permutation == np.arange(size)):
                break
        return {source: int(dest) for source, dest in enumerate(permutation)}

    def partner_of(self, system: MultiClusterSystem, source_global: int) -> int:
        """Global index of the fixed partner of ``source_global``."""
        if self._permutation is None or self._system_size != system.total_nodes:
            self._permutation = self._build(np.random.default_rng(self.seed), system)
            self._system_size = system.total_nodes
        return self._permutation[source_global]

    def sample_destination(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
    ) -> DestinationSample:
        if self._permutation is None or self._system_size != system.total_nodes:
            self._permutation = self._build(rng, system)
            self._system_size = system.total_nodes
        source_global = system.global_index(source_cluster, source_node)
        dest_cluster, dest_node = system.locate(self._permutation[source_global])
        return DestinationSample(dest_cluster, dest_node)

    def mapping(self, system: MultiClusterSystem) -> Tuple[Tuple[int, int], ...]:
        """The full (source, destination) mapping in global indices."""
        if self._permutation is None or self._system_size != system.total_nodes:
            self._permutation = self._build(np.random.default_rng(self.seed), system)
            self._system_size = system.total_nodes
        return tuple(sorted(self._permutation.items()))

    def describe(self) -> str:
        return f"permutation(seed={self.seed})"
