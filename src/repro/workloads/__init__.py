"""Traffic workloads for the simulator (and for model extensions).

The paper's validation study uses Poisson message generation with uniformly
distributed destinations (assumptions 1-2); its conclusion names non-uniform
traffic as future work.  This subpackage provides both, plus the classic
adversarial patterns used in interconnection-network studies:

* :class:`UniformTraffic` — assumption 2 of the paper;
* :class:`HotspotTraffic` — a fraction of the traffic targets one hot
  cluster (or one hot node);
* :class:`ClusterLocalTraffic` — a tunable fraction of the traffic stays
  inside the source cluster (models locality-aware job placement);
* :class:`PermutationTraffic` — every node sends to a fixed partner node;
* :class:`PoissonArrivals` / :class:`DeterministicArrivals` — the message
  generation processes.
"""

from repro.workloads.base import ArrivalProcess, DestinationSample, TrafficPattern
from repro.workloads.batch import SourceBatcher
from repro.workloads.poisson import DeterministicArrivals, PoissonArrivals
from repro.workloads.uniform import UniformTraffic
from repro.workloads.hotspot import HotspotTraffic
from repro.workloads.local import ClusterLocalTraffic
from repro.workloads.permutation import PermutationTraffic

__all__ = [
    "ArrivalProcess",
    "DestinationSample",
    "TrafficPattern",
    "SourceBatcher",
    "PoissonArrivals",
    "DeterministicArrivals",
    "UniformTraffic",
    "HotspotTraffic",
    "ClusterLocalTraffic",
    "PermutationTraffic",
]
