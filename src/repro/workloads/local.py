"""Cluster-local traffic: a tunable share of messages stays inside the cluster.

Locality-aware schedulers place communicating tasks in the same cluster, so
the intra-cluster share of the traffic is usually far above the uniform
baseline ``(N_i - 1)/(N - 1)``.  This pattern makes that share an explicit
parameter, which the capacity-planning example uses to show how the ICN1 and
the ECN1/ICN2 trade load against each other.
"""

from __future__ import annotations

import numpy as np

from repro.topology.multicluster import MultiClusterSystem
from repro.utils.validation import check_in_range
from repro.workloads.base import DestinationSample, TrafficPattern


class ClusterLocalTraffic(TrafficPattern):
    """With probability ``local_fraction`` the destination is in the source cluster.

    The remaining messages choose a uniformly random node *outside* the
    source cluster, so ``local_fraction`` is exactly the intra-cluster traffic
    share (``1 - P_o`` in the model's terms).
    """

    def __init__(self, local_fraction: float) -> None:
        check_in_range(local_fraction, 0.0, 1.0, "local_fraction")
        self.local_fraction = float(local_fraction)

    def sample_destination(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
    ) -> DestinationSample:
        cluster = system.cluster(source_cluster)
        local_possible = cluster.num_nodes > 1
        remote_possible = system.total_nodes > cluster.num_nodes
        go_local = rng.random() < self.local_fraction
        if (go_local and local_possible) or not remote_possible:
            draw = int(rng.integers(0, cluster.num_nodes - 1))
            if draw >= source_node:
                draw += 1
            return DestinationSample(source_cluster, draw)
        # Uniform over all nodes outside the source cluster.
        outside = system.total_nodes - cluster.num_nodes
        draw = int(rng.integers(0, outside))
        offset = system.global_index(source_cluster, 0)
        if draw >= offset:
            draw += cluster.num_nodes
        dest_cluster, dest_node = system.locate(draw)
        return DestinationSample(dest_cluster, dest_node)

    def describe(self) -> str:
        return f"cluster-local(fraction={self.local_fraction:g})"
