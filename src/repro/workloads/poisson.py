"""Arrival processes: Poisson (assumption 1) and deterministic (for tests)."""

from __future__ import annotations

import numpy as np

from repro.workloads.base import ArrivalProcess
from repro.utils.validation import check_positive


class PoissonArrivals(ArrivalProcess):
    """Poisson message generation with mean rate ``lambda_g`` (assumption 1)."""

    def __init__(self, rate: float) -> None:
        check_positive(rate, "rate")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        return self._rate

    def next_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self._rate))

    def next_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # One sized draw consumes the PCG64 stream exactly like `count`
        # scalar draws, so the batch is bit-identical to sequential resumes
        # (pinned by tests/workloads/test_batch.py).
        return rng.exponential(1.0 / self._rate, size=count)


class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival times.

    Useful in unit tests (fully predictable event sequences) and as a
    variance ablation against the Poisson assumption.
    """

    def __init__(self, rate: float) -> None:
        check_positive(rate, "rate")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        return self._rate

    def next_interarrival(self, rng: np.random.Generator) -> float:  # noqa: ARG002
        return 1.0 / self._rate

    def next_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:  # noqa: ARG002
        return np.full(count, 1.0 / self._rate)
