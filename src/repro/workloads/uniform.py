"""Uniform destination distribution (assumption 2 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.topology.multicluster import MultiClusterSystem
from repro.workloads.base import DestinationSample, TrafficPattern


class UniformTraffic(TrafficPattern):
    """Every other node of the whole system is an equally likely destination."""

    def sample_destination(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
    ) -> DestinationSample:
        source_global = system.global_index(source_cluster, source_node)
        # Draw from N-1 slots and skip over the source's own slot.
        draw = int(rng.integers(0, system.total_nodes - 1))
        if draw >= source_global:
            draw += 1
        dest_cluster, dest_node = system.locate(draw)
        return DestinationSample(dest_cluster, dest_node)

    def sample_destination_batch(
        self,
        rng: np.random.Generator,
        system: MultiClusterSystem,
        source_cluster: int,
        source_node: int,
        count: int,
    ) -> "tuple[list[int], list[int]]":
        source_global = system.global_index(source_cluster, source_node)
        # One sized draw consumes the stream exactly like `count` scalar
        # draws, so each element matches the sequential path bit for bit.
        draws = rng.integers(0, system.total_nodes - 1, size=count)
        draws += draws >= source_global
        offsets = system.node_offsets
        clusters = np.searchsorted(offsets, draws, side="right") - 1
        nodes = draws - offsets[clusters]
        return clusters.tolist(), nodes.tolist()

    def describe(self) -> str:
        return "uniform"
