"""Content-addressed result store: never simulate the same point twice.

Every (scenario, engine, operating point) task the campaign executor runs is
**deterministic**: the scenario carries the RNG seed and the statistics
budget, the engine is reconstructable from its registry name, and the only
ambient state that can change a result is the set of kernel/scheduler
switches (``REPRO_SIM_KERNEL``, ``REPRO_DES_SCHEDULER``,
``REPRO_DES_CALENDAR_THRESHOLD``).  That makes results *content-addressable*:
the SHA-256 of the canonical task description is a complete identity for the
record it produces, and the golden-seed discipline guarantees the cached
record is bit-identical to a fresh run.

:class:`ResultStore` persists one JSON file per record under a small
two-level fan-out directory (``<root>/<key[:2]>/<key>.json``).  The root
defaults to ``~/.cache/repro`` and is overridden by the ``REPRO_STORE``
environment variable (or per instance).  Re-running a campaign therefore
re-simulates only the tasks whose content changed, and an interrupted
campaign resumes from the records already on disk.

Eviction is explicit and size-based: :meth:`ResultStore.prune` keeps the
most recently used ``max_records`` files (store reads refresh the file's
mtime), :meth:`ResultStore.clear` drops everything.  Nothing is evicted
automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.api import RunRecord, Scenario
from repro.des.core import DEFAULT_CALENDAR_THRESHOLD, DEFAULT_SCHEDULER
from repro.sim.simulator import DEFAULT_KERNEL
from repro.utils.serialization import from_jsonable, to_jsonable

__all__ = [
    "DEFAULT_STORE_DIR",
    "ResultStore",
    "kernel_switches",
    "task_key",
]

#: Bumped whenever the record layout or the key recipe changes, so stores
#: written by older versions read as misses instead of mis-parsing.
STORE_SCHEMA = 1

#: Where records live when neither ``REPRO_STORE`` nor ``root`` is given.
DEFAULT_STORE_DIR = Path.home() / ".cache" / "repro"


def kernel_switches() -> Dict[str, str]:
    """The ambient switches that can change a simulation result.

    These are the environment knobs honoured by the simulator and the DES
    kernel; they select between bit-identical-by-construction structures in
    the common case, but a task key must still cover them — "bit-identical"
    is exactly the claim the golden-seed tests pin, and a cache must never
    be the thing that hides a divergence.
    """
    return {
        "sim_kernel": os.environ.get("REPRO_SIM_KERNEL", DEFAULT_KERNEL),
        "des_scheduler": os.environ.get("REPRO_DES_SCHEDULER", DEFAULT_SCHEDULER),
        "des_calendar_threshold": os.environ.get(
            "REPRO_DES_CALENDAR_THRESHOLD", str(DEFAULT_CALENDAR_THRESHOLD)
        ),
    }


def task_key(
    scenario: Scenario,
    engine: str,
    lambda_g: float,
    *,
    switches: Optional[Dict[str, str]] = None,
) -> str:
    """The content address (SHA-256 hex) of one (scenario, engine, point) task.

    The key hashes the scenario's full JSON form (system, message geometry,
    timing, traffic pattern, statistics budget *including the seed*, variance
    approximation and name), the engine's registry name, the operating point
    (as an exact ``float.hex`` so no decimal rounding can alias two loads)
    and the active kernel/scheduler switches.  Any change to any of those
    misses the cache.
    """
    # Imported here, not at module level: repro/__init__ imports this module
    # (indirectly via repro.campaign) before __version__ is assigned.
    from repro import __version__

    payload = {
        "schema": STORE_SCHEMA,
        # The package version stands in for "the simulator's code": a PR
        # that changes behaviour bumps it, so records produced by older
        # code read as misses instead of masquerading as bit-identical.
        "version": __version__,
        "scenario": scenario.to_dict(),
        "engine": str(engine),
        "lambda_g": float(lambda_g).hex(),
        "switches": switches if switches is not None else kernel_switches(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """A content-addressed on-disk cache of :class:`repro.api.RunRecord`\\ s.

    Parameters
    ----------
    root:
        Directory holding the records.  Defaults to the ``REPRO_STORE``
        environment variable, then ``~/.cache/repro``.  The directory is
        created lazily on the first write.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_STORE") or DEFAULT_STORE_DIR
        self.root = Path(root).expanduser()

    # ------------------------------------------------------------------ paths
    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def _record_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    # ------------------------------------------------------------- record I/O
    def get(self, key: str) -> Optional[RunRecord]:
        """The cached record for ``key``, or ``None`` on a miss.

        Unreadable or schema-mismatched files read as misses (and will be
        overwritten by the next :meth:`put`), so a corrupted or stale store
        degrades to re-simulation, never to a crash or a wrong record.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA:
            return None
        try:
            record = from_jsonable(RunRecord, payload["record"])
        except (TypeError, ValueError, KeyError):
            return None
        now = time.time()
        try:
            # LRU bookkeeping for prune(): reads refresh the mtime.
            os.utime(path, (now, now))
        except OSError:
            pass
        return record

    def put(self, key: str, record: RunRecord) -> Path:
        """Persist ``record`` under ``key`` (atomic write) and return the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": STORE_SCHEMA, "key": key, "record": to_jsonable(record)}
        text = json.dumps(payload, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    # -------------------------------------------------------------- housekeeping
    @staticmethod
    def _stat_or_none(path: Path, attribute: str):
        """A stat field, or ``None`` if another process removed the file."""
        try:
            return getattr(path.stat(), attribute)
        except OSError:
            return None

    def size_bytes(self) -> int:
        """Total bytes the stored records occupy."""
        sizes = (self._stat_or_none(path, "st_size") for path in self._record_paths())
        return sum(size for size in sizes if size is not None)

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in list(self._record_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def prune(self, max_records: int) -> int:
        """Keep the ``max_records`` most recently used records, delete the rest.

        Recency is file mtime, which :meth:`get` refreshes on every hit, so
        this is LRU eviction.  Returns how many records were removed.
        """
        if max_records < 0:
            raise ValueError(f"max_records must be >= 0, got {max_records}")
        # The store is shared multi-process state: a record may vanish
        # between the glob and the stat (concurrent clear/prune), which
        # must read as "already evicted", not crash.
        stamped = [
            (stamp, path)
            for path in self._record_paths()
            if (stamp := self._stat_or_none(path, "st_mtime")) is not None
        ]
        stamped.sort(key=lambda pair: pair[0], reverse=True)
        removed = 0
        for _, path in stamped[max_records:]:
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def describe(self) -> str:
        count = len(self)
        return f"result store at {self.root}: {count} records, {self.size_bytes()} bytes"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"


def jsonable_record(record: RunRecord) -> Dict[str, Any]:
    """The plain-JSON form of a record (exposed for result dumps and tests)."""
    return to_jsonable(record)
