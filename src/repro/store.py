"""Content-addressed result store: never simulate the same point twice.

Every (scenario, engine, operating point) task the campaign executor runs is
**deterministic**: the scenario carries the RNG seed and the statistics
budget, the engine is reconstructable from its registry name, and the only
ambient state that can change a result is the set of kernel/scheduler
switches (``REPRO_SIM_KERNEL``, ``REPRO_DES_SCHEDULER``,
``REPRO_DES_CALENDAR_THRESHOLD``).  That makes results *content-addressable*:
the SHA-256 of the canonical task description is a complete identity for the
record it produces, and the golden-seed discipline guarantees the cached
record is bit-identical to a fresh run.

:class:`ResultStore` validates and (de)serialises records; *where* the bytes
live is a pluggable :class:`StoreBackend`:

* :class:`DirectoryBackend` (the default) keeps one JSON file per record
  under a two-level fan-out directory (``<root>/<key[:2]>/<key>.json``) —
  simple, greppable, and trivially rsync-able.
* :class:`SqliteBackend` packs every record into a single indexed
  ``<root>/store.db`` (WAL journal, ``last_used`` index), which holds
  paper-budget sweeps with thousands of points in one inode and makes LRU
  eviction a single indexed query.

The backend is chosen per instance (``ResultStore(root, backend="sqlite")``)
or by the ``REPRO_STORE_BACKEND`` environment variable; with neither given, a
root that already contains ``store.db`` is opened as SQLite and anything else
as a directory store, so an existing store keeps working after a migration.
:func:`migrate_store` converts a store between backends record-identically
(the raw payload text is copied verbatim and the LRU stamps are preserved);
the CLI exposes it as ``repro-multicluster campaign store --migrate``.

The root defaults to ``~/.cache/repro`` and is overridden by the
``REPRO_STORE`` environment variable (or per instance).  Re-running a
campaign therefore re-simulates only the tasks whose content changed, and an
interrupted campaign resumes from the records already on disk.

Eviction is explicit and size-based: :meth:`ResultStore.prune` keeps the
most recently used ``max_records`` entries (store reads refresh the record's
``last_used`` stamp), :meth:`ResultStore.clear` drops everything.  Nothing is
evicted automatically.  Both double as housekeeping for the directory layout:
``*.tmp`` droppings leaked by writers that died mid-:meth:`ResultStore.put`
are swept (``clear`` removes them immediately, ``prune`` once they are
stale), and they count toward :meth:`ResultStore.size_bytes` until then.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sqlite3
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Protocol, Union, runtime_checkable

from repro.api import RunRecord, Scenario
from repro.des.core import DEFAULT_CALENDAR_THRESHOLD, DEFAULT_SCHEDULER
from repro.sim.simulator import DEFAULT_KERNEL
from repro.utils.serialization import from_jsonable, to_jsonable
from repro.utils.validation import ValidationError

__all__ = [
    "DEFAULT_STORE_DIR",
    "DirectoryBackend",
    "MergeReport",
    "ResultStore",
    "SqliteBackend",
    "StoreBackend",
    "STORE_BACKENDS",
    "kernel_switches",
    "merge_stores",
    "migrate_store",
    "task_key",
]

#: Bumped whenever the record layout or the key recipe changes, so stores
#: written by older versions read as misses instead of mis-parsing.
STORE_SCHEMA = 1

#: Where records live when neither ``REPRO_STORE`` nor ``root`` is given.
DEFAULT_STORE_DIR = Path.home() / ".cache" / "repro"

#: A ``*.tmp`` file this much older than "now" belongs to a writer that died
#: mid-``put`` (a healthy write replaces its tmp file within milliseconds);
#: :meth:`DirectoryBackend.prune` sweeps them past this age.
STALE_TMP_SECONDS = 3600.0

#: How long a SQLite operation waits on a writer lock before giving up.
_SQLITE_BUSY_SECONDS = 30.0

#: Upper bound on :func:`migrate_store` re-scan passes.  Each pass drains the
#: records a live writer added to the source layout during the previous pass;
#: a writer outrunning eight consecutive full drains is not converging anyway.
_MIGRATE_MAX_PASSES = 8


def kernel_switches() -> Dict[str, str]:
    """The ambient switches that can change a simulation result.

    These are the environment knobs honoured by the simulator and the DES
    kernel; they select between bit-identical-by-construction structures in
    the common case, but a task key must still cover them — "bit-identical"
    is exactly the claim the golden-seed tests pin, and a cache must never
    be the thing that hides a divergence.
    """
    return {
        "sim_kernel": os.environ.get("REPRO_SIM_KERNEL", DEFAULT_KERNEL),
        "des_scheduler": os.environ.get("REPRO_DES_SCHEDULER", DEFAULT_SCHEDULER),
        "des_calendar_threshold": os.environ.get(
            "REPRO_DES_CALENDAR_THRESHOLD", str(DEFAULT_CALENDAR_THRESHOLD)
        ),
    }


def task_key(
    scenario: Scenario,
    engine: str,
    lambda_g: float,
    *,
    switches: Optional[Dict[str, str]] = None,
) -> str:
    """The content address (SHA-256 hex) of one (scenario, engine, point) task.

    The key hashes the scenario's full JSON form (system, message geometry,
    timing, traffic pattern, statistics budget *including the seed*, variance
    approximation and name), the engine's registry name, the operating point
    (as an exact ``float.hex`` so no decimal rounding can alias two loads)
    and the active kernel/scheduler switches.  Any change to any of those
    misses the cache.
    """
    # Imported here, not at module level: repro/__init__ imports this module
    # (indirectly via repro.campaign) before __version__ is assigned.
    from repro import __version__

    payload = {
        "schema": STORE_SCHEMA,
        # The package version stands in for "the simulator's code": a PR
        # that changes behaviour bumps it, so records produced by older
        # code read as misses instead of masquerading as bit-identical.
        "version": __version__,
        "scenario": scenario.to_dict(),
        "engine": str(engine),
        "lambda_g": float(lambda_g).hex(),
        "switches": switches if switches is not None else kernel_switches(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Storage backends
# --------------------------------------------------------------------------- #
@runtime_checkable
class StoreBackend(Protocol):
    """Where record payloads live; :class:`ResultStore` owns what they mean.

    A backend stores opaque payload *text* under SHA-256 keys and keeps one
    ``last_used`` stamp per record for LRU eviction.  It never parses
    payloads — validation (schema, JSON, record shape) is the store's job, so
    every backend inherits exactly the same corruption semantics.
    """

    #: registry name (``"directory"`` / ``"sqlite"``)
    name: str
    #: the store root this backend lives under
    root: Path

    def read_text(self, key: str) -> Optional[str]:
        """The payload for ``key`` (refreshing ``last_used``), or ``None``."""
        ...

    def write_text(self, key: str, text: str) -> Path:
        """Atomically persist ``text`` under ``key``; return the backing path."""
        ...

    def delete(self, key: str) -> bool:
        """Drop one record; ``True`` if it existed."""
        ...

    def keys(self) -> Iterator[str]:
        """Every stored key (no particular order)."""
        ...

    def count(self) -> int:
        """Number of stored records."""
        ...

    def size_bytes(self) -> int:
        """Total bytes the stored payloads occupy."""
        ...

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        ...

    def prune(self, max_records: int) -> int:
        """Keep the ``max_records`` most recently used records (LRU)."""
        ...

    def get_last_used(self, key: str) -> Optional[float]:
        """The record's LRU stamp (unix seconds), or ``None`` if missing."""
        ...

    def set_last_used(self, key: str, stamp: float) -> None:
        """Overwrite the record's LRU stamp (migration, tests)."""
        ...

    def housekeep(self) -> int:
        """Backend-specific cleanup; returns how many artifacts were removed."""
        ...


class DirectoryBackend:
    """One JSON file per record under a two-level fan-out directory.

    Writes are atomic (``mkstemp`` + ``os.replace`` in the destination
    directory) and reads refresh the file mtime, which doubles as the
    ``last_used`` stamp.  A writer killed between ``mkstemp`` and
    ``os.replace`` leaks a ``*.tmp`` file; those are counted by
    :meth:`size_bytes`, removed immediately by :meth:`clear` and swept by
    :meth:`prune`/:meth:`housekeep` once older than
    :data:`STALE_TMP_SECONDS` (a young tmp file may be a concurrent ``put``
    in flight, so housekeeping never touches it).
    """

    name = "directory"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()

    # ------------------------------------------------------------------ paths
    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def _record_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    def _tmp_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.tmp")

    @staticmethod
    def _stat_or_none(path: Path, attribute: str):
        """A stat field, or ``None`` if another process removed the file."""
        try:
            return getattr(path.stat(), attribute)
        except OSError:
            return None

    # ------------------------------------------------------------- payload I/O
    def read_text(self, key: str) -> Optional[str]:
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        now = time.time()
        with contextlib.suppress(OSError):
            # LRU bookkeeping for prune(): reads refresh the mtime.
            os.utime(path, (now, now))
        return text

    def write_text(self, key: str, text: str) -> Path:
        path = self.path_for(key)
        # Concurrent housekeeping races every step here: clear() may sweep
        # the in-flight tmp file before the replace lands, and
        # _remove_empty_dirs() may drop the fan-out directory between mkdir
        # and mkstemp.  Both leave the filesystem consistent, so the write
        # simply starts over; a handful of rounds outlasts any real race.
        last_error: Optional[OSError] = None
        for _ in range(8):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            except (FileNotFoundError, FileExistsError) as error:
                last_error = error
                continue
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
                return path
            except FileNotFoundError as error:
                # clear() swept our tmp file (or the fan-out directory)
                # mid-write; retry on a fresh one.
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                last_error = error
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        raise last_error if last_error is not None else OSError(
            f"could not persist {path}"
        )  # pragma: no cover - 8 consecutive lost races

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        existed = path.is_file()
        with contextlib.suppress(OSError):
            path.unlink()
        return existed

    def keys(self) -> Iterator[str]:
        for path in self._record_paths():
            yield path.stem

    def count(self) -> int:
        return sum(1 for _ in self._record_paths())

    def size_bytes(self) -> int:
        """Record bytes plus any leaked ``*.tmp`` bytes still on disk."""
        paths = list(self._record_paths()) + list(self._tmp_paths())
        sizes = (self._stat_or_none(path, "st_size") for path in paths)
        return sum(size for size in sizes if size is not None)

    # -------------------------------------------------------------- eviction
    def clear(self) -> int:
        removed = 0
        for path in list(self._record_paths()):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        self.sweep_tmp(max_age_seconds=0.0)
        self._remove_empty_dirs()
        return removed

    def prune(self, max_records: int) -> int:
        # The store is shared multi-process state: a record may vanish
        # between the glob and the stat (concurrent clear/prune), which
        # must read as "already evicted", not crash.
        stamped = [
            (stamp, path)
            for path in self._record_paths()
            if (stamp := self._stat_or_none(path, "st_mtime")) is not None
        ]
        stamped.sort(key=lambda pair: pair[0], reverse=True)
        removed = 0
        for _, path in stamped[max_records:]:
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        self.sweep_tmp()
        return removed

    def sweep_tmp(self, max_age_seconds: float = STALE_TMP_SECONDS) -> int:
        """Delete ``*.tmp`` files leaked by interrupted writes.

        Only files older than ``max_age_seconds`` go (a fresh tmp file may be
        a concurrent :meth:`write_text` about to ``os.replace`` it); returns
        how many were removed.
        """
        horizon = time.time() - max_age_seconds
        swept = 0
        for path in list(self._tmp_paths()):
            stamp = self._stat_or_none(path, "st_mtime")
            if stamp is None or stamp > horizon:
                continue
            with contextlib.suppress(OSError):
                path.unlink()
                swept += 1
        return swept

    def housekeep(self) -> int:
        """Sweep stale tmp files and drop empty fan-out directories."""
        swept = self.sweep_tmp()
        self._remove_empty_dirs()
        return swept

    def _remove_empty_dirs(self) -> None:
        if not self.root.is_dir():
            return
        for child in self.root.iterdir():
            if child.is_dir():
                # rmdir refuses non-empty directories; racing writers win.
                with contextlib.suppress(OSError):
                    child.rmdir()

    # ------------------------------------------------------------------- LRU
    def get_last_used(self, key: str) -> Optional[float]:
        return self._stat_or_none(self.path_for(key), "st_mtime")

    def set_last_used(self, key: str, stamp: float) -> None:
        with contextlib.suppress(OSError):
            os.utime(self.path_for(key), (stamp, stamp))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectoryBackend({str(self.root)!r})"


class _CachedConnection:
    """One thread's live handle to one database file (plus its identity)."""

    __slots__ = ("conn", "ddl_done", "inode")

    def __init__(self, conn: sqlite3.Connection, inode: Optional[tuple]) -> None:
        self.conn = conn
        self.ddl_done = False
        self.inode = inode


class _ConnectionCache:
    __slots__ = ("pid", "entries")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.entries: Dict[str, _CachedConnection] = {}


_SQLITE_LOCAL = threading.local()


def _thread_connections() -> Dict[str, _CachedConnection]:
    """This thread's connection cache, discarded wholesale after a fork.

    SQLite handles must not cross ``fork()``: a child that finds the cache
    stamped with its parent's pid abandons those entries (without closing —
    the parent still owns them) and starts fresh.
    """
    pid = os.getpid()
    cache = getattr(_SQLITE_LOCAL, "cache", None)
    if cache is None or cache.pid != pid:
        cache = _ConnectionCache(pid)
        _SQLITE_LOCAL.cache = cache
    return cache.entries


class SqliteBackend:
    """Every record in one indexed SQLite file (``<root>/store.db``).

    The database runs in WAL mode (readers never block the writer and vice
    versa) with a busy timeout, so concurrent campaign workers, ``prune`` and
    ``clear`` serialise safely.  ``last_used`` is a real indexed column, so
    LRU eviction is one query instead of a stat() walk, and a paper-budget
    sweep with thousands of records costs one inode instead of thousands.

    Connections are cached per (process, thread, database file): the serving
    front-end answers a warm request with hundreds of record reads, and a
    fresh connection per read made connection setup the dominant cost of a
    fully cached campaign.  The cache is safe by construction — entries are
    thread-local (sqlite3's own thread affinity is never violated), a forked
    child abandons its parent's handles, and every operation stats the
    database file first, so a deleted or replaced ``store.db`` drops the
    stale handle instead of reading a ghost inode.
    """

    name = "sqlite"
    DB_FILENAME = "store.db"

    _SCHEMA_SQL = (
        "CREATE TABLE IF NOT EXISTS records ("
        " key TEXT PRIMARY KEY,"
        " payload TEXT NOT NULL,"
        " size INTEGER NOT NULL,"
        " created REAL NOT NULL,"
        " last_used REAL NOT NULL)",
        "CREATE INDEX IF NOT EXISTS records_last_used ON records(last_used)",
    )

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.db_path = self.root / self.DB_FILENAME

    # ------------------------------------------------------------ connections
    def _db_inode(self) -> Optional[tuple]:
        try:
            stat = os.stat(self.db_path)
        except OSError:
            return None
        return (stat.st_dev, stat.st_ino)

    def _evict_cached(self) -> None:
        """Drop (and close) this thread's cached handle to this database."""
        entry = _thread_connections().pop(str(self.db_path), None)
        if entry is not None:
            with contextlib.suppress(Exception):
                entry.conn.close()

    def _connect(self, *, create: bool) -> Optional[sqlite3.Connection]:
        """This thread's cached connection, or ``None`` when reading a store
        that isn't there."""
        inode = self._db_inode()
        if not create and inode is None:
            # Deleted out from under us: a stale handle would keep serving
            # the unlinked inode, so the miss must also drop it.
            self._evict_cached()
            return None
        cache = _thread_connections()
        path = str(self.db_path)
        entry = cache.get(path)
        if entry is not None and entry.inode != inode:
            # store.db was removed or replaced since this handle was opened.
            self._evict_cached()
            entry = None
        if entry is None:
            if create:
                self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.db_path), timeout=_SQLITE_BUSY_SECONDS)
            try:
                # synchronous is per-connection (read_text's LRU refresh
                # writes); WAL mode persists in the database header and is
                # switched on together with the DDL below — a schema-less
                # file on the read path just degrades to misses.
                conn.execute("PRAGMA synchronous=NORMAL")
            except BaseException:
                conn.close()
                raise
            entry = cache[path] = _CachedConnection(conn, self._db_inode())
        if create and not entry.ddl_done:
            entry.conn.execute("PRAGMA journal_mode=WAL")
            for statement in self._SCHEMA_SQL:
                entry.conn.execute(statement)
            entry.conn.commit()
            entry.ddl_done = True
        return entry.conn

    @contextlib.contextmanager
    def _cursor(self, *, create: bool) -> Iterator[Optional[sqlite3.Connection]]:
        conn = self._connect(create=create)
        if conn is None:
            yield None
            return
        try:
            yield conn
        except BaseException:
            # The handle outlives this operation: never leave a failed
            # transaction open on it.
            with contextlib.suppress(sqlite3.Error):
                conn.rollback()
            raise

    # ------------------------------------------------------------- payload I/O
    def read_text(self, key: str) -> Optional[str]:
        try:
            with self._cursor(create=False) as conn:
                if conn is None:
                    return None
                row = conn.execute(
                    "SELECT payload FROM records WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    return None
                conn.execute(
                    "UPDATE records SET last_used = ? WHERE key = ?",
                    (time.time(), key),
                )
                conn.commit()
                return row[0]
        except sqlite3.Error:
            # A corrupt or locked-out database degrades to a miss, exactly
            # like an unreadable file in the directory layout.
            return None

    def write_text(self, key: str, text: str) -> Path:
        now = time.time()
        with self._cursor(create=True) as conn:
            conn.execute(
                "INSERT INTO records(key, payload, size, created, last_used)"
                " VALUES(?, ?, ?, ?, ?)"
                " ON CONFLICT(key) DO UPDATE SET"
                " payload = excluded.payload, size = excluded.size,"
                " last_used = excluded.last_used",
                (key, text, len(text.encode("utf-8")), now, now),
            )
            conn.commit()
        return self.db_path

    def delete(self, key: str) -> bool:
        try:
            with self._cursor(create=False) as conn:
                if conn is None:
                    return False
                cursor = conn.execute("DELETE FROM records WHERE key = ?", (key,))
                conn.commit()
                return cursor.rowcount > 0
        except sqlite3.Error:
            return False

    def keys(self) -> Iterator[str]:
        try:
            with self._cursor(create=False) as conn:
                if conn is None:
                    return iter(())
                rows = conn.execute("SELECT key FROM records").fetchall()
        except sqlite3.Error:
            return iter(())
        return iter([row[0] for row in rows])

    def _scalar(self, query: str, default: int = 0) -> int:
        try:
            with self._cursor(create=False) as conn:
                if conn is None:
                    return default
                row = conn.execute(query).fetchone()
                return int(row[0]) if row and row[0] is not None else default
        except sqlite3.Error:
            return default

    def count(self) -> int:
        return self._scalar("SELECT COUNT(*) FROM records")

    def size_bytes(self) -> int:
        return self._scalar("SELECT SUM(size) FROM records")

    # -------------------------------------------------------------- eviction
    def clear(self) -> int:
        try:
            with self._cursor(create=False) as conn:
                if conn is None:
                    return 0
                cursor = conn.execute("DELETE FROM records")
                conn.commit()
                return cursor.rowcount
        except sqlite3.Error:
            return 0

    def prune(self, max_records: int) -> int:
        try:
            with self._cursor(create=False) as conn:
                if conn is None:
                    return 0
                # One indexed query: everything outside the max_records most
                # recently used goes (key breaks last_used ties stably).
                cursor = conn.execute(
                    "DELETE FROM records WHERE key NOT IN ("
                    " SELECT key FROM records"
                    " ORDER BY last_used DESC, key LIMIT ?)",
                    (max_records,),
                )
                conn.commit()
                return cursor.rowcount
        except sqlite3.Error:
            return 0

    def housekeep(self) -> int:
        """Fold the WAL back into the main database file."""
        with contextlib.suppress(sqlite3.Error):
            with self._cursor(create=False) as conn:
                if conn is not None:
                    conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return 0

    def delete_database(self) -> None:
        """Remove the database files entirely (post-migration cleanup)."""
        self._evict_cached()
        for suffix in ("", "-wal", "-shm"):
            with contextlib.suppress(OSError):
                os.unlink(f"{self.db_path}{suffix}")

    # ------------------------------------------------------------------- LRU
    def get_last_used(self, key: str) -> Optional[float]:
        try:
            with self._cursor(create=False) as conn:
                if conn is None:
                    return None
                row = conn.execute(
                    "SELECT last_used FROM records WHERE key = ?", (key,)
                ).fetchone()
                return float(row[0]) if row is not None else None
        except sqlite3.Error:
            return None

    def set_last_used(self, key: str, stamp: float) -> None:
        with contextlib.suppress(sqlite3.Error):
            with self._cursor(create=False) as conn:
                if conn is not None:
                    conn.execute(
                        "UPDATE records SET last_used = ? WHERE key = ?",
                        (stamp, key),
                    )
                    conn.commit()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteBackend({str(self.root)!r})"


#: Backend constructors by registry name.
STORE_BACKENDS: Dict[str, Any] = {
    "directory": DirectoryBackend,
    "sqlite": SqliteBackend,
}

BackendLike = Union[str, StoreBackend, None]


def _resolve_backend(root: Path, backend: BackendLike) -> StoreBackend:
    if backend is None:
        backend = os.environ.get("REPRO_STORE_BACKEND") or None
    if backend is None:
        # Auto-detect: a root already holding store.db keeps speaking SQLite,
        # so a migrated store works without threading the choice everywhere.
        backend = (
            "sqlite" if (root / SqliteBackend.DB_FILENAME).is_file() else "directory"
        )
    if isinstance(backend, str):
        if backend not in STORE_BACKENDS:
            raise ValidationError(
                f"unknown store backend {backend!r}; "
                f"registered: {sorted(STORE_BACKENDS)}"
            )
        return STORE_BACKENDS[backend](root)
    if isinstance(backend, StoreBackend):
        return backend
    raise ValidationError(
        "backend must be a backend name, a StoreBackend instance, or None"
    )


class ResultStore:
    """A content-addressed on-disk cache of :class:`repro.api.RunRecord`\\ s.

    Parameters
    ----------
    root:
        Directory holding the records.  Defaults to the ``REPRO_STORE``
        environment variable, then ``~/.cache/repro``.  The directory is
        created lazily on the first write.
    backend:
        ``"directory"`` (one JSON file per record), ``"sqlite"`` (single
        indexed ``store.db``) or a :class:`StoreBackend` instance.  Defaults
        to the ``REPRO_STORE_BACKEND`` environment variable; with neither
        given, a root already containing ``store.db`` opens as SQLite and
        anything else as a directory store.
    """

    def __init__(
        self, root: str | Path | None = None, *, backend: BackendLike = None
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_STORE") or DEFAULT_STORE_DIR
        self.root = Path(root).expanduser()
        self.backend = _resolve_backend(self.root, backend)
        #: process-local effectiveness counters (this instance's traffic, not
        #: the store's history): ``hits``/``misses`` split every :meth:`get`,
        #: ``puts`` counts records written through :meth:`put`.
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------------ paths
    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (directory backend only)."""
        path_for = getattr(self.backend, "path_for", None)
        if path_for is None:
            raise ValidationError(
                f"the {self.backend.name!r} backend keeps no per-record paths"
            )
        return path_for(key)

    # ------------------------------------------------------------- record I/O
    def get(self, key: str) -> Optional[RunRecord]:
        """The cached record for ``key``, or ``None`` on a miss.

        Unreadable, truncated or schema-mismatched payloads read as misses
        (and will be overwritten by the next :meth:`put`), so a corrupted or
        stale store degrades to re-simulation, never to a crash or a wrong
        record.
        """
        record = self._get_validated(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def _get_validated(self, key: str) -> Optional[RunRecord]:
        """The validation path shared by :meth:`get` and :meth:`__contains__`
        — factored out so membership checks don't skew the hit/miss split."""
        text = self.backend.read_text(key)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA:
            return None
        try:
            return from_jsonable(RunRecord, payload["record"])
        except (TypeError, ValueError, KeyError):
            return None

    def put(self, key: str, record: RunRecord) -> Path:
        """Persist ``record`` under ``key`` (atomic write) and return the path."""
        payload = {"schema": STORE_SCHEMA, "key": key, "record": to_jsonable(record)}
        self.puts += 1
        return self.backend.write_text(key, json.dumps(payload, sort_keys=True))

    def __contains__(self, key: str) -> bool:
        # Membership runs the exact validation path get() runs, so `key in
        # store` and `store.get(key)` can never disagree: a truncated or
        # schema-mismatched payload is absent under both.
        return self._get_validated(key) is not None

    def __len__(self) -> int:
        return self.backend.count()

    # -------------------------------------------------------------- housekeeping
    def size_bytes(self) -> int:
        """Total bytes the stored records (plus any leaked tmp files) occupy."""
        return self.backend.size_bytes()

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        return self.backend.clear()

    def prune(self, max_records: int) -> int:
        """Keep the ``max_records`` most recently used records, delete the rest.

        Recency is the record's ``last_used`` stamp, which :meth:`get`
        refreshes on every hit, so this is LRU eviction.  Returns how many
        records were removed.
        """
        if max_records < 0:
            raise ValueError(f"max_records must be >= 0, got {max_records}")
        return self.backend.prune(max_records)

    def describe(self) -> str:
        count = len(self)
        return (
            f"result store at {self.root} [{self.backend.name}]: "
            f"{count} records, {self.size_bytes()} bytes"
        )

    def stats(self) -> Dict[str, Any]:
        """A JSON-able snapshot: on-disk state plus this instance's counters."""
        reads = self.hits + self.misses
        return {
            "root": str(self.root),
            "backend": self.backend.name,
            "records": len(self),
            "size_bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": (self.hits / reads) if reads else None,
        }

    def describe_stats(self) -> str:
        """The human-readable form of :meth:`stats` (``store --stats``)."""
        stats = self.stats()
        rate = stats["hit_rate"]
        rate_text = f"{rate:.1%}" if rate is not None else "n/a"
        return (
            f"result store at {stats['root']} [{stats['backend']}]:\n"
            f"  records:   {stats['records']}\n"
            f"  size:      {stats['size_bytes']} bytes\n"
            f"  hits:      {stats['hits']}\n"
            f"  misses:    {stats['misses']}\n"
            f"  puts:      {stats['puts']}\n"
            f"  hit rate:  {rate_text} (this process)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, backend={self.backend.name!r})"


def migrate_store(store: ResultStore, to: str) -> int:
    """Convert ``store`` to the ``to`` backend record-identically, in place.

    Each record's raw payload text is copied verbatim (byte-identical
    content, same SHA-256 keys) and its ``last_used`` stamp is carried over,
    so LRU ordering survives the move.  The source backend's artifacts are
    removed as records migrate; a drained SQLite source additionally drops
    its ``store.db`` so backend auto-detection flips back to the directory
    layout.  Returns how many records moved.

    Migration is **resumable**: when the store already speaks the target
    backend, any records stranded in the *other* layout (an earlier
    migration interrupted mid-way — backend auto-detection would otherwise
    hide them forever) are drained into the target, so re-running the same
    ``--migrate`` picks up exactly where the interrupt hit.  Keys the
    target already holds are dropped from the source rather than copied
    back, preserving the target's fresher record and LRU stamp.

    Migration is also **live-traffic safe**: each pass works from a key
    snapshot (cheap under WAL — readers and the migrating writer never block
    each other), then re-snapshots and drains again, so records a still-
    running campaign writes into the source layout *during* a pass are
    picked up by the next one.  The loop ends when a snapshot comes back
    empty (bounded by :data:`_MIGRATE_MAX_PASSES`); writers that attach
    after the final pass see the migrated layout via backend auto-detection.
    """
    if to not in STORE_BACKENDS:
        raise ValidationError(
            f"unknown store backend {to!r}; registered: {sorted(STORE_BACKENDS)}"
        )
    if store.backend.name == to:
        # Already converted (or never needed converting): drain leftovers
        # from the complementary layout instead of declaring victory.
        target = store.backend
        (other,) = (name for name in STORE_BACKENDS if name != to)
        source: StoreBackend = STORE_BACKENDS[other](store.root)
    else:
        source = store.backend
        target = STORE_BACKENDS[to](store.root)
    moved = 0
    for _ in range(_MIGRATE_MAX_PASSES):
        snapshot = list(source.keys())
        if not snapshot:
            break
        progressed = False
        for key in snapshot:
            if target.get_last_used(key) is not None:
                # The target's copy is the newer one (written after the
                # source's was, by construction of the interrupt); just drop
                # the stale source record.
                source.delete(key)
                progressed = True
                continue
            stamp = source.get_last_used(key)
            text = source.read_text(key)
            if text is None:
                continue  # lost a race with a concurrent eviction
            target.write_text(key, text)
            if stamp is not None:
                target.set_last_used(key, stamp)
            source.delete(key)
            moved += 1
            progressed = True
        if not progressed:
            break  # nothing readable left; don't spin on unreachable keys
    source.housekeep()
    if isinstance(source, SqliteBackend) and source.count() == 0:
        source.delete_database()
    store.backend = target
    return moved


@dataclass(frozen=True)
class MergeReport:
    """What one :func:`merge_stores` call did, for CLI reporting and tests."""

    #: records copied into the destination (new keys)
    copied: int
    #: keys the destination already held — owner wins, source copy untouched
    #: (or dropped, when moving)
    existing: int
    #: unreadable / schema-mismatched source records skipped with a warning
    corrupt: int
    #: whether source records were drained (``--merge``) or left (``--sync``)
    moved: bool

    def describe(self) -> str:
        action = "moved" if self.moved else "copied"
        return (
            f"{action} {self.copied} records "
            f"({self.existing} already present, {self.corrupt} corrupt skipped)"
        )


def merge_stores(
    dest: ResultStore, source: ResultStore, *, move: bool = False
) -> MergeReport:
    """Merge ``source``'s records into ``dest``, owner-wins on identical keys.

    This is how results come home from a fleet: a runner's (or any other
    machine's) store is synced into the coordinator's.  Records are
    content-addressed, so a key collision *is* an identity — both sides
    computed the same task — and the destination's copy wins: its bytes are
    left untouched and the source copy contributes nothing.  New keys are
    copied as verbatim payload text (byte-identical records, same SHA-256
    keys) with their ``last_used`` stamps carried over, exactly like
    :func:`migrate_store`.

    A corrupt source record — unreadable, truncated, schema-mismatched, or
    filed under the wrong key — is **skipped with a warning** rather than
    aborting the merge, and is never deleted from the source (whatever broke
    it deserves a look, and a sync must not destroy the evidence).

    With ``move=True`` (CLI ``--merge``) merged records are drained from the
    source as they land — the two-store union ends up wholly in ``dest`` —
    and a fully drained SQLite source drops its ``store.db``.  With the
    default ``move=False`` (CLI ``--sync``) the source is read-only.
    """
    if (
        dest.root.expanduser().resolve() == source.root.expanduser().resolve()
        and dest.backend.name == source.backend.name
    ):
        raise ValidationError(
            f"cannot merge a store into itself ({dest.root} [{dest.backend.name}])"
        )
    copied = existing = corrupt = 0
    for key in list(source.backend.keys()):
        text = source.backend.read_text(key)
        if text is None:
            continue  # lost a race with a concurrent eviction
        if not _valid_payload(key, text):
            corrupt += 1
            warnings.warn(
                f"skipping corrupt record {key} in {source.root}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if dest.backend.get_last_used(key) is not None:
            existing += 1
            if move:
                source.backend.delete(key)
            continue
        stamp = source.backend.get_last_used(key)
        dest.backend.write_text(key, text)
        if stamp is not None:
            dest.backend.set_last_used(key, stamp)
        if move:
            source.backend.delete(key)
        copied += 1
    if move:
        source.backend.housekeep()
        if isinstance(source.backend, SqliteBackend) and source.backend.count() == 0:
            source.backend.delete_database()
    return MergeReport(copied=copied, existing=existing, corrupt=corrupt, moved=move)


def _valid_payload(key: str, text: str) -> bool:
    """Is ``text`` a well-formed record payload filed under its own key?"""
    try:
        payload = json.loads(text)
    except ValueError:
        return False
    if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA:
        return False
    if payload.get("key") != key:
        return False
    try:
        from_jsonable(RunRecord, payload["record"])
    except (TypeError, ValueError, KeyError):
        return False
    return True


def jsonable_record(record: RunRecord) -> Dict[str, Any]:
    """The plain-JSON form of a record (exposed for result dumps and tests)."""
    return to_jsonable(record)
