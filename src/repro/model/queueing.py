"""Queueing components of the model: source queues and concentrators.

Two kinds of queues appear in the message-flow model of Fig. 2:

* the **source queue** at each node's injection channel.  Blocking inside the
  network makes the service time distribution general, so the queue is an
  M/G/1 system; its mean waiting time follows the Pollaczek-Khinchine formula
  (Eq. 19-21) with the service-time variance approximated following Draper &
  Ghosh as ``(S - M t_cn)^2`` (Eq. 22) — the spread between the actual
  (blocking-inflated) service time and the minimum possible one;
* the **concentrator/dispatcher buffers** between a cluster's ECN1 and the
  ICN2.  Their service time is the fixed ``M t_cs`` (no variance, messages
  have fixed length), giving the M/D/1-like expression of Eq. 33.

Both expressions blow up as the utilisation approaches one; the model treats
``rho >= 1`` as saturation and reports an infinite latency for that operating
point, which is how the near-vertical part of Fig. 3/4 arises.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_non_negative, check_positive


class QueueSaturated(RuntimeError):
    """Raised internally when a queue's utilisation reaches or exceeds one.

    Callers that build latency curves catch this and record ``inf`` for the
    operating point instead of propagating the error.
    """

    def __init__(self, name: str, utilisation: float) -> None:
        super().__init__(f"{name} saturated (rho = {utilisation:.3f})")
        self.name = name
        self.utilisation = utilisation


def mg1_waiting_time(
    arrival_rate: float,
    mean_service: float,
    service_variance: float,
    *,
    name: str = "M/G/1 queue",
) -> float:
    """Pollaczek-Khinchine mean waiting time of an M/G/1 queue (Eq. 19).

    Written in the moment form ``W = lambda (x^2 + sigma^2) / (2 (1 - rho))``
    which is algebraically identical to the squared-coefficient-of-variation
    form the paper quotes.
    """
    check_non_negative(arrival_rate, "arrival_rate")
    check_positive(mean_service, "mean_service")
    check_non_negative(service_variance, "service_variance")
    utilisation = arrival_rate * mean_service
    if utilisation >= 1.0:
        raise QueueSaturated(name, utilisation)
    if arrival_rate == 0.0:
        return 0.0
    second_moment = mean_service * mean_service + service_variance
    return arrival_rate * second_moment / (2.0 * (1.0 - utilisation))


def source_queue_waiting_time(
    arrival_rate: float,
    network_latency: float,
    minimum_service: float,
    *,
    name: str = "source queue",
    variance_approximation: str = "draper-ghosh",
) -> float:
    """Mean waiting time at a source queue (Eq. 23).

    Parameters
    ----------
    arrival_rate:
        Message arrival rate at the network, as prescribed by the paper
        (``lambda_I1`` for the ICN1, ``lambda_E`` for the inter-cluster
        journey).
    network_latency:
        The mean network latency ``S`` of Eq. 3 / Eq. 26 — this is the queue's
        mean service time.
    minimum_service:
        The smallest possible service time ``M t_cn`` used by the
        Draper-Ghosh variance approximation (Eq. 22).
    variance_approximation:
        ``"draper-ghosh"`` (the paper's Eq. 22) or ``"zero"`` (deterministic
        service, the ablation variant).
    """
    check_non_negative(arrival_rate, "arrival_rate")
    check_positive(minimum_service, "minimum_service")
    if variance_approximation not in ("draper-ghosh", "zero"):
        raise ValueError(
            f"unknown variance approximation {variance_approximation!r}"
        )
    if not math.isfinite(network_latency):
        raise QueueSaturated(name, math.inf)
    check_positive(network_latency, "network_latency")
    # Check stability before squaring the spread: deep in saturation the
    # blocking recursion can make the latency large enough that the squared
    # spread overflows, and the queue is long saturated by then anyway.
    if arrival_rate * network_latency >= 1.0:
        raise QueueSaturated(name, arrival_rate * network_latency)
    if arrival_rate == 0.0:
        return 0.0
    if variance_approximation == "zero":
        variance = 0.0
    else:
        spread = network_latency - minimum_service
        variance = spread * spread
    return mg1_waiting_time(arrival_rate, network_latency, variance, name=name)


def concentrator_waiting_time(
    arrival_rate: float,
    service_time: float,
    *,
    name: str = "concentrator",
) -> float:
    """Mean waiting time in a concentrator or dispatcher buffer (Eq. 33).

    The buffer forwards fixed-length messages at ``M t_cs`` per message, so
    the service time is deterministic and the variance term vanishes.
    """
    check_non_negative(arrival_rate, "arrival_rate")
    check_positive(service_time, "service_time")
    utilisation = arrival_rate * service_time
    if utilisation >= 1.0:
        raise QueueSaturated(name, utilisation)
    return arrival_rate * service_time * service_time / (2.0 * (1.0 - utilisation))


def utilisation(arrival_rate: float, mean_service: float) -> float:
    """``rho = lambda * x``: offered load of a single-server queue (Eq. 20)."""
    check_non_negative(arrival_rate, "arrival_rate")
    check_positive(mean_service, "mean_service")
    return arrival_rate * mean_service


def is_stable(arrival_rate: float, mean_service: float) -> bool:
    """True when the queue is below saturation (``rho < 1``)."""
    return utilisation(arrival_rate, mean_service) < 1.0


def saturation_arrival_rate(mean_service: float) -> float:
    """The arrival rate at which a queue with this service time saturates."""
    check_positive(mean_service, "mean_service")
    return 1.0 / mean_service


INFINITE_LATENCY = math.inf
