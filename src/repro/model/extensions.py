"""Model extensions called out as future work in the paper's conclusion.

The published model covers *cluster-size* heterogeneity under *uniform*
traffic.  The conclusion names two extensions — other heterogeneity
categories and non-uniform traffic — and this module provides both:

* :class:`ProcessorHeterogeneityModel` — clusters whose nodes have different
  processing powers generate traffic at different rates.  Following the
  authors' companion work [24], a node of cluster ``i`` generates messages at
  ``lambda_g * tau_i / mean(tau)``; all rate equations (Eq. 5-7, 10-12) are
  re-derived with these per-cluster generation weights and the system-wide
  mean is weighted by each cluster's share of the generated messages.
* :class:`HotspotTrafficModel` — a fraction ``f`` of every node's messages is
  directed at a designated *hot* cluster instead of a uniformly chosen
  destination.  The destination-cluster distribution, the per-network rates
  and the partner averaging of Eq. 31/34 are generalised accordingly, so the
  model exposes the early saturation of the hot cluster's dispatcher that a
  uniform-traffic model cannot see.

Both extensions reuse the paper's journey recursion and queueing components
unchanged (via the rate-override hooks of :func:`repro.model.intra
.intra_cluster_latency` and :func:`repro.model.inter.pair_latency`); only the
traffic decomposition differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.model.inter import PairLatency, pair_latency
from repro.model.intra import intra_cluster_latency
from repro.model.parameters import MessageSpec, ModelParameters, PAPER_TIMING, TimingParameters
from repro.model.probabilities import average_message_distance
from repro.model.traffic import outgoing_probability
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_non_negative,
    check_positive,
)


# --------------------------------------------------------------------------- #
# Processor heterogeneity
# --------------------------------------------------------------------------- #
class ProcessorHeterogeneityModel:
    """Latency model with per-cluster processing-power (generation-rate) weights.

    Parameters
    ----------
    spec:
        System organisation.
    relative_powers:
        ``tau_i`` per cluster (any positive scale); nodes of cluster ``i``
        generate messages at ``lambda_g * tau_i / mean(tau)`` where the mean
        is node-weighted, so the *system-wide* per-node generation rate stays
        ``lambda_g`` and results remain comparable with the uniform model.
    """

    def __init__(
        self,
        spec: MultiClusterSpec,
        relative_powers: Sequence[float],
        message: MessageSpec = MessageSpec(),
        timing: TimingParameters = PAPER_TIMING,
    ) -> None:
        if len(relative_powers) != spec.num_clusters:
            raise ValidationError(
                f"need one relative power per cluster "
                f"({spec.num_clusters}), got {len(relative_powers)}"
            )
        for index, power in enumerate(relative_powers):
            check_positive(power, f"relative_powers[{index}]")
        self.spec = spec
        self.message = message
        self.timing = timing
        sizes = np.array(spec.cluster_sizes, dtype=float)
        powers = np.array(relative_powers, dtype=float)
        node_weighted_mean = float((sizes * powers).sum() / sizes.sum())
        #: per-cluster generation weight ``w_i`` (node-weighted mean is 1)
        self.weights: Tuple[float, ...] = tuple(powers / node_weighted_mean)

    # -------------------------------------------------------------- rate laws
    def _generation_rate(self, cluster: int, lambda_g: float) -> float:
        """Per-node generation rate of cluster ``cluster``."""
        return lambda_g * self.weights[cluster]

    def _external_flow(self, cluster: int, lambda_g: float) -> float:
        """Total external (outgoing) message rate of one cluster."""
        spec = self.spec
        return (
            spec.cluster_size(cluster)
            * outgoing_probability(spec, cluster)
            * self._generation_rate(cluster, lambda_g)
        )

    def _params(self, lambda_g: float) -> ModelParameters:
        return ModelParameters(
            spec=self.spec, message=self.message, timing=self.timing, lambda_g=lambda_g
        )

    # ------------------------------------------------------------- evaluation
    def cluster_mean_latency(self, cluster: int, lambda_g: float) -> float:
        """``l^{(i)}`` under processor heterogeneity."""
        check_non_negative(lambda_g, "lambda_g")
        spec = self.spec
        params = self._params(lambda_g)
        height = spec.cluster_heights[cluster]
        size = spec.cluster_size(cluster)
        p_out = outgoing_probability(spec, cluster)
        d_avg = average_message_distance(spec.m, height)
        d_avg_icn2 = average_message_distance(spec.m, spec.icn2_height)

        # Weighted Eq. 5 / Eq. 10.
        lambda_icn1 = size * (1.0 - p_out) * self._generation_rate(cluster, lambda_g)
        eta_icn1 = d_avg * lambda_icn1 / (4.0 * height * size)
        intra = intra_cluster_latency(
            params, cluster, arrival_rate=lambda_icn1, channel_rate=eta_icn1
        )

        # Weighted Eq. 6-7 / Eq. 11-12, one representative partner per height.
        partners = [v for v in range(spec.num_clusters) if v != cluster]
        total_pair = 0.0
        total_concentrator = 0.0
        saturated = False
        cache: Dict[int, PairLatency] = {}
        for v in partners:
            height_v = spec.cluster_heights[v]
            if height_v not in cache:
                size_v = spec.cluster_size(v)
                lambda_ecn1 = self._external_flow(cluster, lambda_g) + self._external_flow(
                    v, lambda_g
                )
                lambda_icn2 = (
                    self._external_flow(cluster, lambda_g) * size_v
                    + self._external_flow(v, lambda_g) * size
                ) / (size + size_v)
                eta_ecn1 = d_avg * lambda_ecn1 / (4.0 * height * size)
                eta_icn2 = d_avg_icn2 * lambda_icn2 / (4.0 * spec.icn2_height)
                cache[height_v] = pair_latency(
                    params,
                    cluster,
                    v,
                    lambda_source=self._external_flow(cluster, lambda_g),
                    eta_ecn1=eta_ecn1,
                    lambda_icn2=lambda_icn2,
                    eta_icn2=eta_icn2,
                )
            pair = cache[height_v]
            if pair.saturated:
                saturated = True
                break
            total_pair += pair.total
            total_concentrator += pair.concentrator_waiting
        if saturated or intra.saturated:
            return math.inf
        external = (total_pair + total_concentrator) / len(partners)
        return (1.0 - p_out) * intra.total + p_out * external

    def mean_latency(self, lambda_g: float) -> float:
        """System-wide mean latency, weighted by each cluster's message share."""
        spec = self.spec
        sizes = np.array(spec.cluster_sizes, dtype=float)
        weights = sizes * np.array(self.weights)
        weights = weights / weights.sum()
        total = 0.0
        for cluster, weight in enumerate(weights):
            value = self.cluster_mean_latency(cluster, lambda_g)
            if math.isinf(value):
                return math.inf
            total += weight * value
        return total

    def latency_curve(self, lambdas: Sequence[float] | Iterable[float]) -> np.ndarray:
        return np.array([self.mean_latency(value) for value in lambdas], dtype=float)


# --------------------------------------------------------------------------- #
# Hot-spot (non-uniform) traffic
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class HotspotPrediction:
    """Per-cluster breakdown of a hot-spot evaluation (diagnostic output)."""

    lambda_g: float
    cluster_means: Tuple[float, ...]
    mean_latency: float

    @property
    def saturated(self) -> bool:
        return math.isinf(self.mean_latency)


class HotspotTrafficModel:
    """Latency model under hot-spot traffic.

    With probability ``hotspot_fraction`` a message is sent to a uniformly
    chosen node of the *hot cluster*; with the remaining probability the
    destination is uniform over all other nodes (the paper's assumption 2).
    ``hotspot_fraction = 0`` reduces to the published model up to the paper's
    own approximation of averaging partners unweighted (this class weights
    partner clusters by how much traffic actually goes there).
    """

    def __init__(
        self,
        spec: MultiClusterSpec,
        hot_cluster: int,
        hotspot_fraction: float,
        message: MessageSpec = MessageSpec(),
        timing: TimingParameters = PAPER_TIMING,
    ) -> None:
        spec._check_cluster(hot_cluster)
        check_in_range(hotspot_fraction, 0.0, 1.0, "hotspot_fraction")
        if hotspot_fraction >= 1.0:
            raise ValidationError("hotspot_fraction must be < 1")
        self.spec = spec
        self.hot_cluster = hot_cluster
        self.hotspot_fraction = float(hotspot_fraction)
        self.message = message
        self.timing = timing

    # ----------------------------------------------------------- distributions
    def destination_distribution(self, source_cluster: int) -> np.ndarray:
        """``D_i(v)``: probability the destination lies in cluster ``v``."""
        spec = self.spec
        spec._check_cluster(source_cluster)
        f = self.hotspot_fraction
        total = spec.total_nodes
        sizes = np.array(spec.cluster_sizes, dtype=float)
        uniform = sizes / (total - 1)
        uniform[source_cluster] = (sizes[source_cluster] - 1) / (total - 1)
        distribution = (1.0 - f) * uniform
        distribution[self.hot_cluster] += f
        return distribution

    def internal_probability(self, cluster: int) -> float:
        """``D_i(i)``: probability a message stays inside its cluster."""
        return float(self.destination_distribution(cluster)[cluster])

    def incoming_flow(self, dest_cluster: int, lambda_g: float) -> float:
        """Total message rate arriving at ``dest_cluster`` from other clusters."""
        spec = self.spec
        total = 0.0
        for source in range(spec.num_clusters):
            if source == dest_cluster:
                continue
            distribution = self.destination_distribution(source)
            total += spec.cluster_size(source) * lambda_g * float(distribution[dest_cluster])
        return total

    def outgoing_flow(self, source_cluster: int, lambda_g: float) -> float:
        """Total message rate leaving ``source_cluster`` for other clusters."""
        spec = self.spec
        return (
            spec.cluster_size(source_cluster)
            * lambda_g
            * (1.0 - self.internal_probability(source_cluster))
        )

    # ------------------------------------------------------------- evaluation
    def _params(self, lambda_g: float) -> ModelParameters:
        return ModelParameters(
            spec=self.spec, message=self.message, timing=self.timing, lambda_g=lambda_g
        )

    def cluster_mean_latency(self, cluster: int, lambda_g: float) -> float:
        """``l^{(i)}`` under hot-spot traffic."""
        check_non_negative(lambda_g, "lambda_g")
        spec = self.spec
        params = self._params(lambda_g)
        height = spec.cluster_heights[cluster]
        size = spec.cluster_size(cluster)
        d_avg = average_message_distance(spec.m, height)
        d_avg_icn2 = average_message_distance(spec.m, spec.icn2_height)
        distribution = self.destination_distribution(cluster)
        internal = float(distribution[cluster])

        # Intra-cluster component with the hot-spot internal probability.
        lambda_icn1 = size * lambda_g * internal
        eta_icn1 = d_avg * lambda_icn1 / (4.0 * height * size)
        intra = intra_cluster_latency(
            params, cluster, arrival_rate=lambda_icn1, channel_rate=eta_icn1
        )
        if intra.saturated and internal > 0:
            return math.inf

        # Inter-cluster component: partner clusters weighted by D_i(v).
        external_probability = 1.0 - internal
        if external_probability <= 0.0:
            return intra.total
        external_total = 0.0
        for v in range(spec.num_clusters):
            if v == cluster or distribution[v] == 0.0:
                continue
            size_v = spec.cluster_size(v)
            lambda_ecn1 = self.outgoing_flow(cluster, lambda_g) + self.incoming_flow(
                v, lambda_g
            )
            lambda_icn2 = (
                self.outgoing_flow(cluster, lambda_g) * size_v
                + self.incoming_flow(v, lambda_g) * size
            ) / (size + size_v)
            eta_ecn1 = d_avg * lambda_ecn1 / (4.0 * height * size)
            eta_icn2 = d_avg_icn2 * lambda_icn2 / (4.0 * spec.icn2_height)
            pair = pair_latency(
                params,
                cluster,
                v,
                lambda_source=self.outgoing_flow(cluster, lambda_g),
                eta_ecn1=eta_ecn1,
                lambda_icn2=lambda_icn2,
                eta_icn2=eta_icn2,
            )
            if pair.saturated:
                return math.inf
            partner_weight = float(distribution[v]) / external_probability
            external_total += partner_weight * (pair.total + pair.concentrator_waiting)
        return internal * intra.total + external_probability * external_total

    def evaluate(self, lambda_g: float) -> HotspotPrediction:
        """Per-cluster means and the system-wide weighted mean."""
        spec = self.spec
        cluster_means = tuple(
            self.cluster_mean_latency(cluster, lambda_g)
            for cluster in range(spec.num_clusters)
        )
        if any(math.isinf(value) for value in cluster_means):
            return HotspotPrediction(lambda_g, cluster_means, math.inf)
        weights = np.array(spec.cluster_sizes, dtype=float) / spec.total_nodes
        mean = float(weights @ np.array(cluster_means))
        return HotspotPrediction(lambda_g, cluster_means, mean)

    def mean_latency(self, lambda_g: float) -> float:
        return self.evaluate(lambda_g).mean_latency

    def latency_curve(self, lambdas: Sequence[float] | Iterable[float]) -> np.ndarray:
        return np.array([self.mean_latency(value) for value in lambdas], dtype=float)
