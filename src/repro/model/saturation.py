"""Numerical location of the saturation point and utilisation diagnostics.

The analytical latency diverges when any M/G/1 source queue or concentrator
buffer reaches utilisation one.  The saturation offered-traffic is the
quantity a system designer actually cares about ("how much load can this
organisation take before latency explodes"), so it is exposed directly
instead of leaving users to eyeball the knee of a latency curve.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.model.latency import MultiClusterLatencyModel
from repro.utils.validation import check_positive


def saturation_point(
    model: MultiClusterLatencyModel,
    *,
    upper_bound: float = 1.0,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Smallest offered traffic at which the model saturates (bisection).

    Parameters
    ----------
    model:
        The analytical model to probe.
    upper_bound:
        An offered traffic known (or assumed) to be beyond saturation; the
        search first grows this bound geometrically if the model is still
        stable there.
    tolerance:
        Absolute tolerance on the returned offered traffic.
    """
    check_positive(upper_bound, "upper_bound")
    check_positive(tolerance, "tolerance")

    low = 0.0
    high = upper_bound
    # Make sure the upper bound really is saturated.
    for _ in range(60):
        if math.isinf(model.mean_latency(high)):
            break
        low = high
        high *= 2.0
    else:  # pragma: no cover - would need absurd parameters
        raise RuntimeError("could not bracket the saturation point")

    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        midpoint = 0.5 * (low + high)
        if math.isinf(model.mean_latency(midpoint)):
            high = midpoint
        else:
            low = midpoint
    return high


def utilisation_summary(model: MultiClusterLatencyModel, lambda_g: float) -> Dict[str, float]:
    """Utilisation of the binding queues at one operating point.

    Returns the per-cluster source-queue utilisations (intra and inter) so a
    designer can see *which* resource saturates first; the maximum over the
    dictionary is the system bottleneck.
    """
    prediction = model.evaluate(lambda_g)
    summary: Dict[str, float] = {}
    for cluster in prediction.clusters:
        summary[f"cluster{cluster.cluster}/icn1_source_queue"] = cluster.intra.utilisation
        summary[f"cluster{cluster.cluster}/ecn1_source_queue"] = cluster.inter.utilisation
    return summary


def bottleneck(model: MultiClusterLatencyModel, lambda_g: float) -> str:
    """Name of the most utilised queue at ``lambda_g``."""
    summary = utilisation_summary(model, lambda_g)
    return max(summary, key=summary.get)
