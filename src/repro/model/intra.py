"""Mean message latency inside one cluster's ICN1 (Eq. 3, 23-25).

A message that stays inside cluster ``i`` is injected into the ICN1 (an
m-port ``n_i``-tree), crosses ``2j`` links with probability ``P_{j,n_i}``
and experiences three latency components:

* ``W``: waiting in the source queue (M/G/1, Eq. 23);
* ``S``: the network latency of the header — the service time of the first
  stage including all downstream blocking (Eq. 3 with Eq. 16-18);
* ``R``: the pipeline drain of the tail flit (Eq. 24).

Their sum is ``T_I1^{(i)}`` (Eq. 25).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.parameters import ModelParameters
from repro.model.probabilities import link_probability_vector
from repro.model.queueing import QueueSaturated, source_queue_waiting_time
from repro.model.service_time import (
    intra_stage_rates,
    journey_latency,
    tail_drain_time,
)
from repro.model.traffic import icn1_channel_rate, icn1_rate


@dataclass(frozen=True)
class IntraClusterLatency:
    """Latency components of intra-cluster (ICN1) messages of one cluster."""

    cluster: int
    #: mean waiting time at the source queue, ``W`` (Eq. 23)
    waiting_time: float
    #: mean network latency of the header, ``S`` (Eq. 3)
    network_latency: float
    #: mean tail-drain time, ``R`` (Eq. 24)
    tail_time: float
    #: source-queue utilisation ``rho`` (diagnostic)
    utilisation: float
    #: True when the source queue saturated at this operating point
    saturated: bool

    @property
    def total(self) -> float:
        """``T_I1^{(i)} = W + S + R`` (Eq. 25), infinite when saturated."""
        if self.saturated:
            return math.inf
        return self.waiting_time + self.network_latency + self.tail_time


def intra_cluster_latency(
    params: ModelParameters,
    cluster: int,
    *,
    arrival_rate: float | None = None,
    channel_rate: float | None = None,
) -> IntraClusterLatency:
    """Evaluate the ICN1 latency of cluster ``cluster`` at ``params.lambda_g``.

    ``arrival_rate`` (Eq. 5) and ``channel_rate`` (Eq. 10) default to the
    paper's uniform-traffic expressions; the traffic-pattern extensions in
    :mod:`repro.model.extensions` pass their own generalised rates instead.
    """
    spec = params.spec
    spec._check_cluster(cluster)
    height = spec.cluster_heights[cluster]
    timing = params.link_timing
    message_length = params.message_length

    probabilities = link_probability_vector(spec.m, height)
    if channel_rate is None:
        channel_rate = icn1_channel_rate(spec, cluster, params.lambda_g)
    if arrival_rate is None:
        arrival_rate = icn1_rate(spec, cluster, params.lambda_g)

    # Eq. 3: average the per-journey network latency over the 2j-link classes.
    network_latency = 0.0
    tail_time = 0.0
    for j, probability in enumerate(probabilities, start=1):
        rates = intra_stage_rates(j, channel_rate)
        network_latency += probability * journey_latency(
            rates,
            message_length=message_length,
            t_cs=timing.t_cs,
            t_cn=timing.t_cn,
        )
        tail_time += probability * tail_drain_time(
            len(rates), t_cs=timing.t_cs, t_cn=timing.t_cn
        )

    utilisation = arrival_rate * network_latency
    try:
        waiting_time = source_queue_waiting_time(
            arrival_rate,
            network_latency,
            message_length * timing.t_cn,
            name=f"ICN1 source queue of cluster {cluster}",
            variance_approximation=params.variance_approximation,
        )
    except QueueSaturated:
        return IntraClusterLatency(
            cluster=cluster,
            waiting_time=math.inf,
            network_latency=network_latency,
            tail_time=tail_time,
            utilisation=utilisation,
            saturated=True,
        )
    return IntraClusterLatency(
        cluster=cluster,
        waiting_time=waiting_time,
        network_latency=network_latency,
        tail_time=tail_time,
        utilisation=utilisation,
        saturated=False,
    )
