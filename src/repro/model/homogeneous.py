"""Baseline models: a single homogeneous cluster and the equal-size approximation.

Prior work on cluster interconnect modelling (the single-cluster queueing
models the paper cites as [10-12]) assumes one homogeneous cluster.  Two
baselines built from those assumptions put the heterogeneous model in
context:

* :class:`SingleClusterModel` — one isolated m-port n-tree cluster, no
  inter-cluster traffic at all.  This is the "prior work" latency model and
  also the building block the paper generalises.
* :class:`EqualSizeApproximationModel` — pretend all ``C`` clusters have the
  same size (the closest representable size to the true mean) and evaluate
  the multi-cluster model on that homogenised organisation.  Comparing it
  with the true heterogeneous prediction quantifies how much accuracy the
  cluster-size heterogeneity modelling actually buys — the ablation called
  out in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.model.latency import MultiClusterLatencyModel
from repro.model.parameters import MessageSpec, PAPER_TIMING, TimingParameters
from repro.model.probabilities import link_probability_vector
from repro.model.queueing import QueueSaturated, source_queue_waiting_time
from repro.model.service_time import intra_stage_rates, journey_latency, tail_drain_time
from repro.model.probabilities import average_message_distance
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import check_even, check_non_negative, check_positive_int


@dataclass(frozen=True)
class SingleClusterPrediction:
    """Latency components of an isolated homogeneous cluster."""

    lambda_g: float
    waiting_time: float
    network_latency: float
    tail_time: float
    saturated: bool

    @property
    def mean_latency(self) -> float:
        if self.saturated:
            return math.inf
        return self.waiting_time + self.network_latency + self.tail_time


class SingleClusterModel:
    """Mean latency of one isolated m-port n-tree cluster under uniform traffic.

    This is the paper's machinery with the outgoing probability forced to
    zero: every message stays in the (single) cluster's ICN1.
    """

    def __init__(
        self,
        m: int,
        n: int,
        message: MessageSpec = MessageSpec(),
        timing: TimingParameters = PAPER_TIMING,
    ) -> None:
        check_even(m, "m")
        check_positive_int(n, "n")
        self.m = int(m)
        self.n = int(n)
        self.message = message
        self.timing = timing

    @property
    def num_nodes(self) -> int:
        return 2 * (self.m // 2) ** self.n

    def evaluate(self, lambda_g: float) -> SingleClusterPrediction:
        """Latency components at per-node offered traffic ``lambda_g``."""
        check_non_negative(lambda_g, "lambda_g")
        link = self.timing.link_timing(self.message.flit_bytes)
        message_length = self.message.length_flits
        probabilities = link_probability_vector(self.m, self.n)
        d_avg = average_message_distance(self.m, self.n)

        # With no external traffic the whole generation rate loads the ICN1.
        network_rate = self.num_nodes * lambda_g
        channel_rate = d_avg * network_rate / (4.0 * self.n * self.num_nodes)

        network_latency = 0.0
        tail_time = 0.0
        for j, probability in enumerate(probabilities, start=1):
            rates = intra_stage_rates(j, channel_rate)
            network_latency += probability * journey_latency(
                rates, message_length=message_length, t_cs=link.t_cs, t_cn=link.t_cn
            )
            tail_time += probability * tail_drain_time(
                len(rates), t_cs=link.t_cs, t_cn=link.t_cn
            )
        try:
            waiting_time = source_queue_waiting_time(
                network_rate,
                network_latency,
                message_length * link.t_cn,
                name="single-cluster source queue",
            )
        except QueueSaturated:
            return SingleClusterPrediction(
                lambda_g=lambda_g,
                waiting_time=math.inf,
                network_latency=network_latency,
                tail_time=tail_time,
                saturated=True,
            )
        return SingleClusterPrediction(
            lambda_g=lambda_g,
            waiting_time=waiting_time,
            network_latency=network_latency,
            tail_time=tail_time,
            saturated=False,
        )

    def mean_latency(self, lambda_g: float) -> float:
        return self.evaluate(lambda_g).mean_latency

    def latency_curve(self, lambdas: Sequence[float] | Iterable[float]) -> np.ndarray:
        return np.array([self.mean_latency(value) for value in lambdas], dtype=float)


class EqualSizeApproximationModel:
    """The heterogeneous system approximated by equal-size clusters.

    The approximation keeps the number of clusters, the switch arity and (as
    closely as the ``N_i = 2 (m/2)^{n}`` size law permits) the total node
    count, but gives every cluster the same tree height.  The height is
    chosen so the per-cluster size is as close as possible to the true mean
    cluster size.
    """

    def __init__(
        self,
        spec: MultiClusterSpec,
        message: MessageSpec = MessageSpec(),
        timing: TimingParameters = PAPER_TIMING,
    ) -> None:
        self.original_spec = spec
        self.equivalent_height = self._closest_height(spec)
        self.spec = MultiClusterSpec(
            m=spec.m,
            cluster_heights=(self.equivalent_height,) * spec.num_clusters,
            name=(spec.name or f"N={spec.total_nodes}") + " (equal-size approx.)",
        )
        self.model = MultiClusterLatencyModel(self.spec, message, timing)

    @staticmethod
    def _closest_height(spec: MultiClusterSpec) -> int:
        mean_size = spec.total_nodes / spec.num_clusters
        best_height = spec.cluster_heights[0]
        best_error = math.inf
        for height in range(1, max(spec.cluster_heights) + 1):
            size = 2 * spec.k**height
            error = abs(size - mean_size)
            if error < best_error:
                best_error = error
                best_height = height
        return best_height

    @property
    def node_count_error(self) -> int:
        """Difference in total nodes introduced by the approximation."""
        return self.spec.total_nodes - self.original_spec.total_nodes

    def mean_latency(self, lambda_g: float) -> float:
        return self.model.mean_latency(lambda_g)

    def latency_curve(self, lambdas: Sequence[float] | Iterable[float]) -> np.ndarray:
        return self.model.latency_curve(lambdas)

    def heterogeneity_error(self, exact: MultiClusterLatencyModel, lambda_g: float) -> float:
        """Relative error of the approximation against the exact model.

        Positive values mean the equal-size approximation over-estimates the
        latency at this operating point; ``nan`` when either model saturated.
        """
        approximate = self.mean_latency(lambda_g)
        reference = exact.mean_latency(lambda_g)
        if math.isinf(approximate) or math.isinf(reference):
            return math.nan
        return (approximate - reference) / reference
