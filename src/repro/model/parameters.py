"""Free parameters of the analytical model and the simulator.

The paper's validation study (Section 4) fixes the channel timing to

* network bandwidth ``500`` bytes per time unit (``beta_net = 0.002``),
* network latency ``alpha_net = 0.02`` time units,
* switch latency ``alpha_sw = 0.01`` time units,

and sweeps the message geometry (``M = 32`` or ``64`` flits of ``L_m = 256``
or ``512`` bytes) and the offered traffic ``lambda_g`` (messages per node per
time unit).  :data:`PAPER_TIMING` captures the fixed part;
:class:`ModelParameters` bundles everything one evaluation of the model (or
one simulation run) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Tuple

from repro.topology.multicluster import MultiClusterSpec
from repro.utils.units import LinkTiming, bandwidth_to_beta
from repro.utils.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class TimingParameters:
    """Channel timing shared by every network of the system.

    Attributes
    ----------
    alpha_net:
        Network interface latency (node-switch channels), time units.
    alpha_sw:
        Switch latency (switch-switch channels), time units.
    bandwidth:
        Channel bandwidth in bytes per time unit; ``beta_net`` (the per-byte
        transmission time of Eq. 14-15) is its inverse.
    """

    alpha_net: float = 0.02
    alpha_sw: float = 0.01
    bandwidth: float = 500.0

    def __post_init__(self) -> None:
        check_positive(self.alpha_net, "alpha_net")
        check_positive(self.alpha_sw, "alpha_sw")
        check_positive(self.bandwidth, "bandwidth")

    @property
    def beta_net(self) -> float:
        """Transmission time of one byte (inverse bandwidth)."""
        return bandwidth_to_beta(self.bandwidth)

    def link_timing(self, flit_bytes: int) -> LinkTiming:
        """The per-flit channel times ``t_cn`` / ``t_cs`` for a flit size."""
        return LinkTiming(
            alpha_net=self.alpha_net,
            alpha_sw=self.alpha_sw,
            beta_net=self.beta_net,
            flit_bytes=flit_bytes,
        )


#: The timing used throughout the paper's validation study.
PAPER_TIMING = TimingParameters(alpha_net=0.02, alpha_sw=0.01, bandwidth=500.0)


@dataclass(frozen=True)
class MessageSpec:
    """Message geometry: ``M`` flits of ``L_m`` bytes each (assumption 5)."""

    length_flits: int = 32
    flit_bytes: int = 256

    def __post_init__(self) -> None:
        check_positive_int(self.length_flits, "length_flits")
        check_positive_int(self.flit_bytes, "flit_bytes")

    @property
    def total_bytes(self) -> int:
        """Payload carried by one message."""
        return self.length_flits * self.flit_bytes

    def describe(self) -> str:
        return f"M={self.length_flits} flits, Lm={self.flit_bytes} bytes"


#: The four message geometries of Fig. 3 / Fig. 4.
PAPER_MESSAGE_SPECS: Tuple[MessageSpec, ...] = (
    MessageSpec(length_flits=32, flit_bytes=256),
    MessageSpec(length_flits=32, flit_bytes=512),
    MessageSpec(length_flits=64, flit_bytes=256),
    MessageSpec(length_flits=64, flit_bytes=512),
)


@dataclass(frozen=True)
class ModelParameters:
    """Everything one model evaluation needs.

    Attributes
    ----------
    spec:
        The multi-cluster organisation (Table 1 rows are provided by
        :mod:`repro.experiments.configs`).
    message:
        Message geometry.
    timing:
        Channel timing; defaults to the paper's values.
    lambda_g:
        Offered traffic: mean message generation rate per node per time unit
        (assumption 1).  ``0`` is allowed and yields the zero-load latency.
    variance_approximation:
        How the source-queue service-time variance is approximated:
        ``"draper-ghosh"`` is the paper's Eq. 22; ``"zero"`` treats the
        service time as deterministic (the ablation discussed in DESIGN.md).
    """

    spec: MultiClusterSpec
    message: MessageSpec = MessageSpec()
    timing: TimingParameters = PAPER_TIMING
    lambda_g: float = 0.0
    variance_approximation: str = "draper-ghosh"

    def __post_init__(self) -> None:
        check_non_negative(self.lambda_g, "lambda_g")
        if self.variance_approximation not in ("draper-ghosh", "zero"):
            raise ValidationError(
                "variance_approximation must be 'draper-ghosh' or 'zero', "
                f"got {self.variance_approximation!r}"
            )

    @property
    def link_timing(self) -> LinkTiming:
        """``t_cn`` / ``t_cs`` for this flit size (Eq. 14-15)."""
        return self.timing.link_timing(self.message.flit_bytes)

    @property
    def t_cn(self) -> float:
        """Node-switch channel time of one flit (Eq. 14)."""
        return self.link_timing.t_cn

    @property
    def t_cs(self) -> float:
        """Switch-switch channel time of one flit (Eq. 15)."""
        return self.link_timing.t_cs

    @property
    def message_length(self) -> int:
        """``M``, the message length in flits."""
        return self.message.length_flits

    def with_traffic(self, lambda_g: float) -> "ModelParameters":
        """A copy of these parameters at a different offered traffic."""
        return replace(self, lambda_g=lambda_g)

    def with_message(self, message: MessageSpec) -> "ModelParameters":
        """A copy of these parameters with a different message geometry."""
        return replace(self, message=message)

    def sweep(self, lambdas: Iterable[float]) -> Tuple["ModelParameters", ...]:
        """One parameter set per offered-traffic value (for latency curves)."""
        return tuple(self.with_traffic(value) for value in lambdas)
