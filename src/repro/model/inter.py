"""Mean message latency of inter-cluster journeys (Eq. 26-34).

An external message from cluster ``i`` to cluster ``v`` crosses

* ``j`` links ascending in cluster ``i``'s ECN1 (``j ~ P_{j,n_i}``),
* the concentrator of cluster ``i``, the ICN2 (``2h`` links,
  ``h ~ P_{h,n_c}``) and the dispatcher of cluster ``v``,
* ``l`` links descending in cluster ``v``'s ECN1 (``l ~ P_{l,n_v}``).

Because the flow control is wormhole the two ECN1 legs and the ICN2 leg form
one blocking chain, so the network latency is obtained from the same
backward service-time recursion with a per-stage channel-rate vector that
switches from ``eta_E1`` to ``eta_I2`` and back (Eq. 28-29).  The source
queue is again M/G/1 (Eq. 30) and each concentrator/dispatcher buffer adds an
M/D/1-like waiting time (Eq. 33-34).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.model.parameters import ModelParameters
from repro.model.probabilities import link_probability_vector
from repro.model.queueing import (
    QueueSaturated,
    concentrator_waiting_time,
    source_queue_waiting_time,
)
from repro.model.service_time import (
    inter_stage_rates,
    journey_latency,
    tail_drain_time,
)
from repro.model.traffic import (
    ecn1_channel_rate,
    icn2_channel_rate,
    icn2_pair_rate,
    outgoing_probability,
)
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class PairLatency:
    """Latency components of the inter-cluster journey i -> v (one pair)."""

    source_cluster: int
    dest_cluster: int
    waiting_time: float        # W_E (Eq. 30)
    network_latency: float     # S_E (Eq. 26)
    tail_time: float           # R_E (Eq. 32)
    concentrator_waiting: float  # 2 * W_s (Eq. 33, concentrator + dispatcher)
    utilisation: float
    saturated: bool

    @property
    def total(self) -> float:
        """``W_E + S_E + R_E`` for this pair (without concentrators)."""
        if self.saturated:
            return math.inf
        return self.waiting_time + self.network_latency + self.tail_time


@dataclass(frozen=True)
class InterClusterLatency:
    """Inter-cluster latency seen from cluster ``i`` (averaged over partners)."""

    cluster: int
    #: mean source-queue waiting over destination clusters (part of Eq. 31)
    waiting_time: float
    #: mean network latency over destination clusters (Eq. 26 averaged)
    network_latency: float
    #: mean tail-drain time over destination clusters (Eq. 32 averaged)
    tail_time: float
    #: mean concentrator + dispatcher waiting, ``W_d^{(i)}`` (Eq. 34)
    concentrator_waiting: float
    #: highest source-queue utilisation over partner clusters (diagnostic)
    utilisation: float
    #: True when any partner journey saturated
    saturated: bool

    @property
    def network_total(self) -> float:
        """``T_{E1&I2}^{(i)}`` (Eq. 31): W + S + R averaged over partners."""
        if self.saturated:
            return math.inf
        return self.waiting_time + self.network_latency + self.tail_time

    @property
    def total(self) -> float:
        """Everything an external message experiences: Eq. 31 plus Eq. 34."""
        if self.saturated:
            return math.inf
        return self.network_total + self.concentrator_waiting


def pair_latency(
    params: ModelParameters,
    source: int,
    dest: int,
    *,
    lambda_source: float | None = None,
    eta_ecn1: float | None = None,
    lambda_icn2: float | None = None,
    eta_icn2: float | None = None,
) -> PairLatency:
    """Latency components of the inter-cluster journey ``source`` -> ``dest``.

    The rate arguments default to the paper's uniform-traffic values
    (Eq. 6-7, 11-13); the traffic-pattern extensions pass generalised rates.

    ``lambda_source`` is the arrival rate used for the M/G/1 source queue
    (Eq. 30).  The paper's text is ambiguous here (see DESIGN.md): taken
    literally, Eq. 30 re-uses the pair-sum rate of Eq. 6, but that makes the
    model saturate far below the operating range the paper itself plots.  We
    therefore use the *source cluster's* external message rate
    ``N_i P_o^{(i)} lambda_g`` — the traffic that actually funnels through
    cluster ``i``'s ECN1 injection points — which reproduces the figures'
    saturation behaviour; the pair-sum rate of Eq. 6 still drives the channel
    rates exactly as Eq. 11 prescribes.
    """
    spec = params.spec
    spec._check_cluster(source)
    spec._check_cluster(dest)
    if source == dest:
        raise ValidationError("an inter-cluster journey needs two distinct clusters")

    height_i = spec.cluster_heights[source]
    height_v = spec.cluster_heights[dest]
    height_c = spec.icn2_height
    timing = params.link_timing
    message_length = params.message_length

    p_source = link_probability_vector(spec.m, height_i)
    p_dest = link_probability_vector(spec.m, height_v)
    p_icn2 = link_probability_vector(spec.m, height_c)

    if eta_ecn1 is None:
        eta_ecn1 = ecn1_channel_rate(spec, source, dest, params.lambda_g)
    if eta_icn2 is None:
        eta_icn2 = icn2_channel_rate(spec, source, dest, params.lambda_g)
    if lambda_icn2 is None:
        lambda_icn2 = icn2_pair_rate(spec, source, dest, params.lambda_g)
    if lambda_source is None:
        lambda_source = (
            spec.cluster_size(source)
            * outgoing_probability(spec, source)
            * params.lambda_g
        )

    # Eq. 26-29: average the journey latency over (j, l, h).
    network_latency = 0.0
    tail_time = 0.0
    for j in range(1, height_i + 1):
        for l in range(1, height_v + 1):  # noqa: E741 - l matches the paper's symbol
            for h in range(1, height_c + 1):
                probability = p_source[j - 1] * p_dest[l - 1] * p_icn2[h - 1]
                rates = inter_stage_rates(j, l, h, eta_ecn1, eta_icn2)
                network_latency += probability * journey_latency(
                    rates,
                    message_length=message_length,
                    t_cs=timing.t_cs,
                    t_cn=timing.t_cn,
                )
                tail_time += probability * tail_drain_time(
                    len(rates), t_cs=timing.t_cs, t_cn=timing.t_cn
                )

    utilisation = lambda_source * network_latency
    try:
        waiting_time = source_queue_waiting_time(
            lambda_source,
            network_latency,
            message_length * timing.t_cn,
            name=f"ECN1 source queue for clusters ({source},{dest})",
            variance_approximation=params.variance_approximation,
        )
        # Concentrator on the way out and dispatcher on the way in see the
        # same pair rate and the same deterministic M*t_cs service (Eq. 33).
        single_buffer = concentrator_waiting_time(
            lambda_icn2,
            message_length * timing.t_cs,
            name=f"concentrator for clusters ({source},{dest})",
        )
    except QueueSaturated:
        return PairLatency(
            source_cluster=source,
            dest_cluster=dest,
            waiting_time=math.inf,
            network_latency=network_latency,
            tail_time=tail_time,
            concentrator_waiting=math.inf,
            utilisation=utilisation,
            saturated=True,
        )
    return PairLatency(
        source_cluster=source,
        dest_cluster=dest,
        waiting_time=waiting_time,
        network_latency=network_latency,
        tail_time=tail_time,
        concentrator_waiting=2.0 * single_buffer,
        utilisation=utilisation,
        saturated=False,
    )


def inter_cluster_latency(params: ModelParameters, cluster: int) -> InterClusterLatency:
    """Inter-cluster latency seen from ``cluster`` (Eq. 31 and 34).

    All pair quantities depend on the two clusters only through their tree
    heights, so the average over destination clusters is computed per unique
    height with multiplicity weights instead of per cluster — the Table 1
    organisations have at most three distinct heights, which keeps a full
    sweep cheap even for C = 32.
    """
    spec = params.spec
    spec._check_cluster(cluster)
    heights = spec.cluster_heights
    partners = [v for v in range(spec.num_clusters) if v != cluster]
    if not partners:
        raise ValidationError("inter-cluster latency needs at least two clusters")

    multiplicity = Counter(heights[v] for v in partners)
    representative: Dict[int, int] = {}
    for v in partners:
        representative.setdefault(heights[v], v)

    sum_waiting = 0.0
    sum_network = 0.0
    sum_tail = 0.0
    sum_concentrator = 0.0
    worst_utilisation = 0.0
    saturated = False
    cache: Dict[Tuple[int, int], PairLatency] = {}
    for height_v, count in multiplicity.items():
        key = (heights[cluster], height_v)
        if key not in cache:
            cache[key] = pair_latency(params, cluster, representative[height_v])
        pair = cache[key]
        worst_utilisation = max(worst_utilisation, pair.utilisation)
        if pair.saturated:
            saturated = True
            continue
        sum_waiting += count * pair.waiting_time
        sum_network += count * pair.network_latency
        sum_tail += count * pair.tail_time
        sum_concentrator += count * pair.concentrator_waiting

    num_partners = len(partners)
    if saturated:
        return InterClusterLatency(
            cluster=cluster,
            waiting_time=math.inf,
            network_latency=sum_network / num_partners,
            tail_time=sum_tail / num_partners,
            concentrator_waiting=math.inf,
            utilisation=worst_utilisation,
            saturated=True,
        )
    return InterClusterLatency(
        cluster=cluster,
        waiting_time=sum_waiting / num_partners,
        network_latency=sum_network / num_partners,
        tail_time=sum_tail / num_partners,
        concentrator_waiting=sum_concentrator / num_partners,
        utilisation=worst_utilisation,
        saturated=False,
    )
