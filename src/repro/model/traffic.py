"""Traffic decomposition: network message rates and channel rates (Eq. 5-13).

Every node generates messages at rate ``lambda_g`` (assumption 1).  With
uniformly distributed destinations, a message born in cluster ``i`` leaves
the cluster with probability

.. math::

    P_o^{(i)} = \\frac{\\sum_{j \\ne i} N_j}{N - 1}

(Eq. 13).  Internal messages load the cluster's ICN1; external messages load
the source cluster's ECN1 on the way up, the ICN2 in the middle and the
destination cluster's ECN1 on the way down.  The per-network aggregate rates
(Eq. 5-7) divided by the number of channels a message effectively competes
for give the per-channel arrival rates (Eq. 10-12) that drive the blocking
probabilities of the service-time recursion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.probabilities import average_message_distance
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError, check_non_negative


def outgoing_probability(spec: MultiClusterSpec, cluster: int) -> float:
    """``P_o^{(i)}``: probability that a message leaves its cluster (Eq. 13)."""
    spec._check_cluster(cluster)
    total = spec.total_nodes
    own = spec.cluster_size(cluster)
    return (total - own) / (total - 1)


# --------------------------------------------------------------------------- #
# Aggregate message rates per network (Eq. 5-7)
# --------------------------------------------------------------------------- #
def icn1_rate(spec: MultiClusterSpec, cluster: int, lambda_g: float) -> float:
    """``lambda_I1^{(i)}``: message rate entering cluster ``i``'s ICN1 (Eq. 5)."""
    check_non_negative(lambda_g, "lambda_g")
    p_out = outgoing_probability(spec, cluster)
    return spec.cluster_size(cluster) * (1.0 - p_out) * lambda_g


def ecn1_pair_rate(spec: MultiClusterSpec, i: int, v: int, lambda_g: float) -> float:
    """``lambda_E^{(i,v)}``: rate relevant to the ECN1 journey i -> v (Eq. 6).

    The ECN1 of the source cluster carries cluster ``i``'s outgoing traffic
    during the ascending phase and the ECN1 of the destination cluster
    carries cluster ``v``'s incoming (== its own outgoing, by symmetry of the
    uniform pattern) traffic during the descending phase; the model treats
    the two legs as one network loaded with the sum of both contributions.
    """
    check_non_negative(lambda_g, "lambda_g")
    _check_pair(spec, i, v)
    rate_i = spec.cluster_size(i) * outgoing_probability(spec, i)
    rate_v = spec.cluster_size(v) * outgoing_probability(spec, v)
    return (rate_i + rate_v) * lambda_g


def icn2_pair_rate(spec: MultiClusterSpec, i: int, v: int, lambda_g: float) -> float:
    """``lambda_I2^{(i,v)}``: rate crossing the ICN2 between clusters i and v (Eq. 7)."""
    check_non_negative(lambda_g, "lambda_g")
    _check_pair(spec, i, v)
    size_i = spec.cluster_size(i)
    size_v = spec.cluster_size(v)
    numerator = (
        size_i * outgoing_probability(spec, i) * size_v
        + size_v * outgoing_probability(spec, v) * size_i
    )
    return numerator * lambda_g / (size_i + size_v)


# --------------------------------------------------------------------------- #
# Per-channel rates (Eq. 10-12)
# --------------------------------------------------------------------------- #
def icn1_channel_rate(spec: MultiClusterSpec, cluster: int, lambda_g: float) -> float:
    """``eta_I1^{(i)}``: per-channel message rate in cluster ``i``'s ICN1 (Eq. 10)."""
    height = spec.cluster_heights[cluster]
    d_avg = average_message_distance(spec.m, height)
    rate = icn1_rate(spec, cluster, lambda_g)
    return d_avg * rate / (4.0 * height * spec.cluster_size(cluster))


def ecn1_channel_rate(spec: MultiClusterSpec, i: int, v: int, lambda_g: float) -> float:
    """``eta_E1^{(i,v)}``: per-channel rate in the ECN1 legs of an i -> v journey (Eq. 11)."""
    height = spec.cluster_heights[i]
    d_avg = average_message_distance(spec.m, height)
    rate = ecn1_pair_rate(spec, i, v, lambda_g)
    return d_avg * rate / (4.0 * height * spec.cluster_size(i))


def icn2_channel_rate(spec: MultiClusterSpec, i: int, v: int, lambda_g: float) -> float:
    """``eta_I2^{(i,v)}``: per-channel rate in the ICN2 for an i -> v journey (Eq. 12)."""
    height = spec.icn2_height
    d_avg = average_message_distance(spec.m, height)
    rate = icn2_pair_rate(spec, i, v, lambda_g)
    return d_avg * rate / (4.0 * height)


# --------------------------------------------------------------------------- #
# Convenience bundles
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NetworkRates:
    """Aggregate message rates seen from cluster ``i`` toward cluster ``v``."""

    icn1: float
    ecn1: float
    icn2: float


@dataclass(frozen=True)
class ChannelRates:
    """Per-channel message rates seen from cluster ``i`` toward cluster ``v``."""

    icn1: float
    ecn1: float
    icn2: float


def network_rates(spec: MultiClusterSpec, i: int, v: int, lambda_g: float) -> NetworkRates:
    """All three aggregate rates for the (i, v) pair in one call."""
    return NetworkRates(
        icn1=icn1_rate(spec, i, lambda_g),
        ecn1=ecn1_pair_rate(spec, i, v, lambda_g),
        icn2=icn2_pair_rate(spec, i, v, lambda_g),
    )


def channel_rates(spec: MultiClusterSpec, i: int, v: int, lambda_g: float) -> ChannelRates:
    """All three per-channel rates for the (i, v) pair in one call."""
    return ChannelRates(
        icn1=icn1_channel_rate(spec, i, lambda_g),
        ecn1=ecn1_channel_rate(spec, i, v, lambda_g),
        icn2=icn2_channel_rate(spec, i, v, lambda_g),
    )


def _check_pair(spec: MultiClusterSpec, i: int, v: int) -> None:
    spec._check_cluster(i)
    spec._check_cluster(v)
    if i == v:
        raise ValidationError("inter-cluster rates need two distinct clusters")
