"""Per-stage service-time recursion under wormhole blocking (Eq. 16-18, 28-29).

A wormhole message that has to travel ``K`` channel stages beyond its
injection channel can be blocked at every stage: with single-flit buffers a
blocked header stalls the whole worm, so the *service time* of a channel at
stage ``k`` is the bare transfer time of the message plus the time spent
waiting to acquire the channels of all later stages.  Working backwards from
the destination (which, by assumption 6, always accepts messages):

.. math::

    \\bar S_{K-1} &= M\\,t_{cn} \\\\
    \\bar S_k &= M\\,t_{cs} + \\sum_{s=k+1}^{K-1} \\bar W_s
        \\qquad (k < K-1) \\\\
    \\bar W_s &= \\tfrac12 P_{B_s} \\bar S_s
        = \\tfrac12 \\eta_s \\bar S_s^2

where ``eta_s`` is the message arrival rate at a stage-``s`` channel (the
birth-death/Markov-chain argument of the paper gives the blocking probability
``P_B = eta * S``).  The network latency of the whole journey is the service
time of stage 0.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.utils.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
    check_positive_int,
)


def stage_waiting_time(channel_rate: float, service_time: float) -> float:
    """``W_k``: mean wait to acquire one channel (Eq. 16-17).

    The blocking probability of the channel is ``P_B = eta * S`` (Eq. 17,
    from the birth-death chain in the steady state) and a blocked message
    waits half the residual service time on average, giving
    ``W = 0.5 * eta * S^2``.
    """
    check_non_negative(channel_rate, "channel_rate")
    check_non_negative(service_time, "service_time")
    return 0.5 * channel_rate * service_time * service_time


def stage_service_times(
    channel_rates: Sequence[float],
    *,
    message_length: int,
    t_cs: float,
    t_cn: float,
) -> Tuple[List[float], List[float]]:
    """Solve the backward recursion for one journey.

    Parameters
    ----------
    channel_rates:
        ``eta_k`` for stages ``k = 0 .. K-1`` in travel order (the injection
        channel is *not* a stage; the final entry is the ejection channel
        into the destination node).
    message_length:
        ``M`` in flits.
    t_cs / t_cn:
        Switch-switch / node-switch per-flit channel times (Eq. 14-15).

    Returns
    -------
    (service_times, waiting_times):
        ``service_times[k]`` is ``S_k`` and ``waiting_times[k]`` is ``W_k``;
        ``service_times[0]`` is the network latency of the journey.
    """
    check_positive_int(message_length, "message_length")
    check_positive(t_cs, "t_cs")
    check_positive(t_cn, "t_cn")
    stages = len(channel_rates)
    if stages == 0:
        raise ValidationError("a journey needs at least one stage")
    service: List[float] = [0.0] * stages
    waiting: List[float] = [0.0] * stages
    downstream_wait = 0.0
    for stage in range(stages - 1, -1, -1):
        rate = check_non_negative(channel_rates[stage], f"channel_rates[{stage}]")
        if stage == stages - 1:
            service[stage] = message_length * t_cn
        else:
            service[stage] = message_length * t_cs + downstream_wait
        waiting[stage] = stage_waiting_time(rate, service[stage])
        downstream_wait += waiting[stage]
    return service, waiting


def journey_latency(
    channel_rates: Sequence[float],
    *,
    message_length: int,
    t_cs: float,
    t_cn: float,
) -> float:
    """Network latency (``S_0``) of one journey with the given stage rates."""
    service, _ = stage_service_times(
        channel_rates, message_length=message_length, t_cs=t_cs, t_cn=t_cn
    )
    return service[0]


def intra_stage_rates(j: int, channel_rate: float) -> List[float]:
    """Stage rate vector of a 2j-link intra-cluster journey.

    The journey has ``K = 2j - 1`` stages beyond the injection channel, all
    inside the same network, so every stage sees the same channel rate
    ``eta_I1`` (Eq. 10).
    """
    check_positive_int(j, "j")
    check_non_negative(channel_rate, "channel_rate")
    return [channel_rate] * (2 * j - 1)


def inter_stage_rates(
    j: int, l: int, h: int, ecn1_rate: float, icn2_rate: float
) -> List[float]:
    """Stage rate vector of an inter-cluster journey (Eq. 29).

    The message crosses ``j`` links in the source cluster's ECN1 (of which
    the first is the injection channel, leaving ``j - 1`` stages), ``2h``
    links in the ICN2 and ``l`` links in the destination cluster's ECN1, so
    ``K = j + 2h + l - 1``.  ECN1 stages see ``eta_E1`` and ICN2 stages see
    ``eta_I2``.
    """
    check_positive_int(j, "j")
    check_positive_int(l, "l")
    check_positive_int(h, "h")
    check_non_negative(ecn1_rate, "ecn1_rate")
    check_non_negative(icn2_rate, "icn2_rate")
    return [ecn1_rate] * (j - 1) + [icn2_rate] * (2 * h) + [ecn1_rate] * l


def tail_drain_time(num_stages: int, *, t_cs: float, t_cn: float) -> float:
    """Time for the tail flit to drain through ``num_stages`` stages (Eq. 24/32).

    Once the header has been delivered the remaining pipeline empties at one
    channel per stage: ``(K - 1)`` switch-switch channels plus the final
    node-switch channel.
    """
    check_positive_int(num_stages, "num_stages")
    check_positive(t_cs, "t_cs")
    check_positive(t_cn, "t_cn")
    return (num_stages - 1) * t_cs + t_cn
