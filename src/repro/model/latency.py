"""System-wide mean message latency (Eq. 35-36) — the model's public entry point.

:class:`MultiClusterLatencyModel` combines the intra-cluster (ICN1) and
inter-cluster (ECN1 + ICN2) components:

.. math::

    \\ell^{(i)} &= (1 - P_o^{(i)})\\, T_{I1}^{(i)}
        + P_o^{(i)} \\left( T_{E1\\&I2}^{(i)} + W_d^{(i)} \\right) \\\\
    \\ell &= \\sum_i \\frac{N_i}{N}\\, \\ell^{(i)}

The model is purely analytical: evaluating one operating point costs
microseconds to milliseconds, which is what makes the design-space
exploration of the examples (and the latency-versus-traffic curves of
Fig. 3/4) practical compared with simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.model.inter import InterClusterLatency, inter_cluster_latency
from repro.model.intra import IntraClusterLatency, intra_cluster_latency
from repro.model.parameters import MessageSpec, ModelParameters, PAPER_TIMING, TimingParameters
from repro.model.traffic import outgoing_probability
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ClusterLatency:
    """Latency prediction for messages originating in one cluster."""

    cluster: int
    #: probability that a message leaves the cluster (Eq. 13)
    outgoing_probability: float
    intra: IntraClusterLatency
    inter: InterClusterLatency

    @property
    def mean(self) -> float:
        """``l^{(i)}`` (Eq. 35), infinite when either component saturated."""
        internal = self.intra.total
        external = self.inter.total
        p_out = self.outgoing_probability
        if p_out < 1.0 and math.isinf(internal):
            return math.inf
        if p_out > 0.0 and math.isinf(external):
            return math.inf
        return (1.0 - p_out) * internal + p_out * external

    @property
    def saturated(self) -> bool:
        return math.isinf(self.mean)


@dataclass(frozen=True)
class LatencyPrediction:
    """The model's output for one operating point (one ``lambda_g``)."""

    lambda_g: float
    clusters: Tuple[ClusterLatency, ...]
    #: node-count weights used for the system-wide average (Eq. 36)
    weights: Tuple[float, ...]

    @property
    def mean_latency(self) -> float:
        """``l``: system-wide weighted mean message latency (Eq. 36)."""
        total = 0.0
        for weight, cluster in zip(self.weights, self.clusters):
            if math.isinf(cluster.mean):
                return math.inf
            total += weight * cluster.mean
        return total

    @property
    def saturated(self) -> bool:
        """True when any cluster's prediction saturated."""
        return any(cluster.saturated for cluster in self.clusters)

    def cluster_mean(self, cluster: int) -> float:
        """``l^{(i)}`` for one cluster."""
        return self.clusters[cluster].mean

    def breakdown(self) -> Dict[str, float]:
        """Weighted component breakdown (useful for reports and debugging)."""
        if self.saturated:
            return {"mean_latency": math.inf}
        parts = {
            "intra_waiting": 0.0,
            "intra_network": 0.0,
            "intra_tail": 0.0,
            "inter_waiting": 0.0,
            "inter_network": 0.0,
            "inter_tail": 0.0,
            "concentrator_waiting": 0.0,
        }
        for weight, cluster in zip(self.weights, self.clusters):
            p_out = cluster.outgoing_probability
            parts["intra_waiting"] += weight * (1 - p_out) * cluster.intra.waiting_time
            parts["intra_network"] += weight * (1 - p_out) * cluster.intra.network_latency
            parts["intra_tail"] += weight * (1 - p_out) * cluster.intra.tail_time
            parts["inter_waiting"] += weight * p_out * cluster.inter.waiting_time
            parts["inter_network"] += weight * p_out * cluster.inter.network_latency
            parts["inter_tail"] += weight * p_out * cluster.inter.tail_time
            parts["concentrator_waiting"] += weight * p_out * cluster.inter.concentrator_waiting
        parts["mean_latency"] = self.mean_latency
        return parts


class MultiClusterLatencyModel:
    """Analytical mean-latency model of a heterogeneous multi-cluster system.

    Parameters
    ----------
    spec:
        The system organisation.
    message:
        Message geometry (``M`` flits of ``L_m`` bytes).
    timing:
        Channel timing; defaults to the paper's values.

    Examples
    --------
    >>> from repro.experiments.configs import table1_system
    >>> model = MultiClusterLatencyModel(table1_system(544), MessageSpec(32, 256))
    >>> latency = model.mean_latency(2e-4)
    """

    def __init__(
        self,
        spec: MultiClusterSpec,
        message: MessageSpec = MessageSpec(),
        timing: TimingParameters = PAPER_TIMING,
        *,
        variance_approximation: str = "draper-ghosh",
    ) -> None:
        self.spec = spec
        self.message = message
        self.timing = timing
        self.variance_approximation = variance_approximation
        self._weights = tuple(
            size / spec.total_nodes for size in spec.cluster_sizes
        )

    # ------------------------------------------------------------- evaluation
    def parameters(self, lambda_g: float) -> ModelParameters:
        """The full parameter bundle for one offered-traffic value."""
        check_non_negative(lambda_g, "lambda_g")
        return ModelParameters(
            spec=self.spec,
            message=self.message,
            timing=self.timing,
            lambda_g=lambda_g,
            variance_approximation=self.variance_approximation,
        )

    def evaluate(self, lambda_g: float) -> LatencyPrediction:
        """Full per-cluster prediction at offered traffic ``lambda_g``."""
        params = self.parameters(lambda_g)
        # Clusters of equal height are statistically identical; evaluate one
        # representative per height and reuse the result.
        intra_by_height: Dict[int, IntraClusterLatency] = {}
        inter_by_height: Dict[int, InterClusterLatency] = {}
        clusters: List[ClusterLatency] = []
        for index, height in enumerate(self.spec.cluster_heights):
            if height not in intra_by_height:
                intra_by_height[height] = intra_cluster_latency(params, index)
                inter_by_height[height] = inter_cluster_latency(params, index)
            clusters.append(
                ClusterLatency(
                    cluster=index,
                    outgoing_probability=outgoing_probability(self.spec, index),
                    intra=intra_by_height[height],
                    inter=inter_by_height[height],
                )
            )
        return LatencyPrediction(
            lambda_g=lambda_g, clusters=tuple(clusters), weights=self._weights
        )

    def mean_latency(self, lambda_g: float) -> float:
        """System-wide mean message latency (Eq. 36); ``inf`` past saturation."""
        return self.evaluate(lambda_g).mean_latency

    def latency_curve(self, lambdas: Sequence[float] | Iterable[float]) -> np.ndarray:
        """Mean latency at each offered-traffic value (``inf`` past saturation)."""
        return np.array([self.mean_latency(value) for value in lambdas], dtype=float)

    # ------------------------------------------------------------- shortcuts
    @property
    def zero_load_latency(self) -> float:
        """Latency with an empty network (no queueing, no blocking)."""
        return self.mean_latency(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiClusterLatencyModel(N={self.spec.total_nodes}, "
            f"C={self.spec.num_clusters}, m={self.spec.m}, "
            f"{self.message.describe()})"
        )
