"""The analytical latency model — the paper's primary contribution.

Given a heterogeneous multi-cluster organisation (Section 2), Poisson traffic
with uniformly distributed destinations and wormhole flow control, the model
predicts the mean message latency seen by a node of each cluster and the
system-wide weighted mean (Eq. 3-36 of the paper).

The model is layered exactly like the derivation in the paper:

================  ==========================================================
module            paper content
================  ==========================================================
``parameters``    the free parameters: system organisation, link timing
                  (Eq. 14-15), message geometry, offered traffic
``probabilities`` the journey-length distribution ``P_{j,n}`` and the mean
                  message distance (Eq. 4, 8, 9)
``traffic``       outgoing-traffic probability, per-network message rates and
                  per-channel rates (Eq. 5-7, 10-13)
``service_time``  the per-stage blocking/service-time recursion (Eq. 16-18,
                  26-29)
``queueing``      M/G/1 source queues and concentrator/dispatcher queues
                  (Eq. 19-23, 30, 33-34)
``intra``         mean latency in the intra-cluster network ICN1 (Eq. 3, 24,
                  25)
``inter``         mean latency across ECN1 + ICN2 (Eq. 26-32)
``latency``       per-cluster and system-wide weighted means (Eq. 35-36) —
                  the public entry point :class:`MultiClusterLatencyModel`
``homogeneous``   baseline models: a single homogeneous cluster (prior work)
                  and the equal-cluster-size approximation used as ablation
``extensions``    the paper's future-work items: processor heterogeneity and
                  non-uniform (hot-spot) traffic
``saturation``    numerical location of the saturation point
================  ==========================================================
"""

from repro.model.parameters import (
    MessageSpec,
    ModelParameters,
    TimingParameters,
    PAPER_TIMING,
)
from repro.model.probabilities import (
    average_message_distance,
    link_probability,
    link_probability_vector,
)
from repro.model.traffic import (
    ChannelRates,
    NetworkRates,
    ecn1_channel_rate,
    ecn1_pair_rate,
    icn1_channel_rate,
    icn1_rate,
    icn2_channel_rate,
    icn2_pair_rate,
    outgoing_probability,
)
from repro.model.service_time import stage_service_times, journey_latency
from repro.model.queueing import (
    QueueSaturated,
    concentrator_waiting_time,
    mg1_waiting_time,
    source_queue_waiting_time,
)
from repro.model.intra import IntraClusterLatency, intra_cluster_latency
from repro.model.inter import InterClusterLatency, inter_cluster_latency
from repro.model.latency import (
    ClusterLatency,
    LatencyPrediction,
    MultiClusterLatencyModel,
)
from repro.model.homogeneous import (
    EqualSizeApproximationModel,
    SingleClusterModel,
)
from repro.model.extensions import (
    HotspotTrafficModel,
    ProcessorHeterogeneityModel,
)
from repro.model.saturation import saturation_point, utilisation_summary

__all__ = [
    "MessageSpec",
    "ModelParameters",
    "TimingParameters",
    "PAPER_TIMING",
    "average_message_distance",
    "link_probability",
    "link_probability_vector",
    "ChannelRates",
    "NetworkRates",
    "ecn1_channel_rate",
    "ecn1_pair_rate",
    "icn1_channel_rate",
    "icn1_rate",
    "icn2_channel_rate",
    "icn2_pair_rate",
    "outgoing_probability",
    "stage_service_times",
    "journey_latency",
    "QueueSaturated",
    "concentrator_waiting_time",
    "mg1_waiting_time",
    "source_queue_waiting_time",
    "IntraClusterLatency",
    "intra_cluster_latency",
    "InterClusterLatency",
    "inter_cluster_latency",
    "ClusterLatency",
    "LatencyPrediction",
    "MultiClusterLatencyModel",
    "EqualSizeApproximationModel",
    "SingleClusterModel",
    "HotspotTrafficModel",
    "ProcessorHeterogeneityModel",
    "saturation_point",
    "utilisation_summary",
]
