"""Journey-length distribution in an m-port n-tree (Eq. 4, 8, 9).

Under uniform traffic (assumption 2) a message originating anywhere in an
m-port n-tree crosses ``2 j`` links — ``j`` ascending and ``j`` descending —
with probability ``P_{j,n}``.  Writing ``k = m/2``:

* for ``j = 1 .. n-1`` the destinations at distance ``2j`` are the nodes
  sharing the source's level-``(j-1)`` subtree but not its level-``(j-2)``
  subtree, i.e. ``k^j - k^(j-1)`` of the ``N - 1`` possible destinations;
* for ``j = n`` (routes turning around at a root switch) the count is
  ``N - k^(n-1) = 2 k^n - k^(n-1)``.

The mean number of links crossed is then ``d_avg = sum_j 2 j P_{j,n}``
(Eq. 8); the closed form the paper quotes as Eq. (9) follows by summing the
geometric series, and the two are cross-checked in the test suite.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.utils.validation import ValidationError, check_even, check_positive_int


def link_probability(m: int, n: int, j: int) -> float:
    """``P_{j,n}``: probability of a 2j-link journey in an m-port n-tree (Eq. 4)."""
    check_even(m, "m")
    check_positive_int(n, "n")
    check_positive_int(j, "j")
    if j > n:
        raise ValidationError(f"j={j} exceeds the tree height n={n}")
    k = m // 2
    total_nodes = 2 * k**n
    if j < n:
        favourable = k**j - k ** (j - 1)
    else:
        favourable = 2 * k**n - k ** (n - 1)
    return favourable / (total_nodes - 1)


@lru_cache(maxsize=None)
def link_probability_vector(m: int, n: int) -> np.ndarray:
    """The full distribution ``(P_{1,n}, ..., P_{n,n})`` as a NumPy vector.

    The vector is cached because the latency model evaluates it for every
    cluster of every operating point of a sweep.
    """
    values = np.array([link_probability(m, n, j) for j in range(1, n + 1)], dtype=float)
    # The counts are integers divided by (N-1), so the sum is exact up to
    # floating point rounding; normalise defensively anyway.
    total = values.sum()
    if not np.isclose(total, 1.0, rtol=0, atol=1e-12):
        raise ValidationError(f"P_(j,n) should sum to 1, got {total!r}")  # pragma: no cover
    return values


def average_message_distance(m: int, n: int) -> float:
    """``d_avg``: mean number of links crossed by a message (Eq. 8/9)."""
    probabilities = link_probability_vector(m, n)
    journeys = 2 * np.arange(1, n + 1, dtype=float)
    return float(journeys @ probabilities)


def average_ascending_links(m: int, n: int) -> float:
    """Mean number of links in one phase (ascending or descending) of a journey.

    Used by the inter-cluster model where the source-side ECN1 leg only
    performs the ascending phase (``d_avg / 2``).
    """
    return average_message_distance(m, n) / 2.0


def destinations_at_distance(m: int, n: int, j: int) -> int:
    """Number of destinations exactly ``2j`` links away from a fixed source."""
    check_even(m, "m")
    check_positive_int(n, "n")
    check_positive_int(j, "j")
    if j > n:
        raise ValidationError(f"j={j} exceeds the tree height n={n}")
    k = m // 2
    if j < n:
        return k**j - k ** (j - 1)
    return 2 * k**n - k ** (n - 1)
