"""Shared-memory export of compiled route tables.

Route-table compilation dominates cold campaign setup (seconds per Table-1
shape, against milliseconds for everything else), and every worker process
used to pay it again.  This module freezes a fully compiled
:class:`~repro.routing.compile.CompiledTreeRoutes` into CSR-packed NumPy
arrays inside a :class:`~repro.topology.shm.SharedArena`, so the persistent
worker daemon compiles each tree shape **once** and its workers map the
tables instead of re-walking the router.

Packing: each of the three per-shape tables (``full`` / ``ascending`` /
``descending``) is a flat list of ``num_nodes**2`` entries, each ``None``
(the diagonal) or a tuple of dense channel ids.  That is exactly a CSR
matrix — one ``int32`` value array plus one ``int64`` row-offset array of
length ``pairs + 1`` — with the invariant that an *empty row is a diagonal
entry*: every off-diagonal route and leg crosses at least one channel, so
emptiness is an unambiguous ``None`` encoding.  ``full_has_switch`` rides
along as a ``uint8`` array.

The attached view, :class:`SharedTreeRoutes`, duck-types the lazy
``CompiledTreeRoutes`` surface (``lazy=True`` with every row already
compiled, ``_fill_row`` a no-op), so
:class:`~repro.routing.compile.CompiledSystemRoutes` rebases it through its
ordinary :class:`~repro.routing.compile.LazyRebasedTable` path — the
system-level compiler needs no shared-memory awareness at all.  Tuples are
materialised per *pair* on first use and memoised, so a worker only pays
materialisation for the pairs its traffic actually routes.

Ownership follows :mod:`repro.topology.shm`: the daemon owns and unlinks
segments; workers attach, read, and exit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.routing.compile import (
    _TREE_ROUTES,
    CompiledTreeRoutes,
    IdTuple,
    compile_tree_routes,
)
from repro.topology.shm import SharedArena
from repro.utils.validation import ValidationError

__all__ = [
    "SharedGraphRoutes",
    "SharedRouteTable",
    "SharedTreeRoutes",
    "attach_graph_route_tables",
    "attach_route_tables",
    "export_graph_route_tables",
    "export_route_tables",
    "install_graph_route_tables",
    "install_route_tables",
]


def _pack_csr(table: List[Optional[IdTuple]]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a route table into CSR (values, offsets) arrays."""
    offsets = np.zeros(len(table) + 1, dtype=np.int64)
    values: List[int] = []
    for index, entry in enumerate(table):
        if entry is not None:
            values.extend(entry)
        offsets[index + 1] = len(values)
    return np.asarray(values, dtype=np.int32), offsets


class SharedRouteTable:
    """Pair-indexed route table over CSR arrays, memoising materialised rows.

    ``table[pair]`` returns the id tuple of that (source, other) pair, or
    ``None`` on the diagonal — the exact contract of the flat lists a
    :class:`CompiledTreeRoutes` holds, which is all
    :class:`~repro.routing.compile.LazyRebasedTable` and the simulator read.
    """

    __slots__ = ("_values", "_offsets", "_entries")

    def __init__(self, values: np.ndarray, offsets: np.ndarray) -> None:
        self._values = values
        self._offsets = offsets
        self._entries: List[Optional[IdTuple]] = [None] * (len(offsets) - 1)

    def __getitem__(self, pair: int) -> Optional[IdTuple]:
        entry = self._entries[pair]
        if entry is None:
            start = int(self._offsets[pair])
            stop = int(self._offsets[pair + 1])
            if stop == start:
                return None  # empty CSR row == diagonal == None
            entry = self._entries[pair] = tuple(self._values[start:stop].tolist())
        return entry

    def __len__(self) -> int:
        return len(self._entries)


class _SharedFlagTable:
    """Pair-indexed bool view over the packed ``full_has_switch`` array."""

    __slots__ = ("_flags",)

    def __init__(self, flags: np.ndarray) -> None:
        self._flags = flags

    def __getitem__(self, pair: int) -> bool:
        return bool(self._flags[pair])

    def __len__(self) -> int:
        return len(self._flags)


class SharedTreeRoutes:
    """One shape's complete route tables, mapped from a daemon's arena.

    Presents the *lazy* :class:`CompiledTreeRoutes` surface with every row
    pre-compiled: ``lazy`` is True so the system-route compiler wraps these
    tables in its rebasing views, and the fill hooks are no-ops because the
    exporting process already compiled every pair.
    """

    __slots__ = (
        "m",
        "n",
        "num_nodes",
        "lazy",
        "full",
        "full_has_switch",
        "ascending",
        "descending",
        "compiled_rows",
        "_arena",
    )

    def __init__(self, meta: Dict[str, Any], arena: SharedArena) -> None:
        self.m = int(meta["m"])
        self.n = int(meta["n"])
        self.num_nodes = int(meta["num_nodes"])
        self.lazy = True
        prefix = _routes_prefix(self.m, self.n)
        self.full = SharedRouteTable(
            arena.array(f"{prefix}/full-values"), arena.array(f"{prefix}/full-offsets")
        )
        self.full_has_switch = _SharedFlagTable(arena.array(f"{prefix}/has-switch"))
        self.ascending = SharedRouteTable(
            arena.array(f"{prefix}/ascending-values"),
            arena.array(f"{prefix}/ascending-offsets"),
        )
        self.descending = SharedRouteTable(
            arena.array(f"{prefix}/descending-values"),
            arena.array(f"{prefix}/descending-offsets"),
        )
        self.compiled_rows = set(range(self.num_nodes))
        self._arena = arena

    # Every row was compiled by the exporting process; the lazy-shape hooks
    # the system compiler may call are therefore no-ops.
    def _fill_row(self, source: int) -> None:
        pass

    def ensure_pair(self, source: int, other: int) -> None:
        pass

    def ensure_complete(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedTreeRoutes(m={self.m}, n={self.n}, nodes={self.num_nodes}, "
            f"segment={self._arena.name!r})"
        )


def _routes_prefix(m: int, n: int) -> str:
    return f"routes-{int(m)}x{int(n)}"


def export_route_tables(
    shapes: Iterable[Tuple[int, int]],
) -> Tuple[SharedArena, Dict[str, Any]]:
    """Compile every shape completely and pack its tables into one arena.

    Lazy shapes are forced complete first — the whole point is that workers
    never compile — and the arena plus a JSON-able manifest for
    :func:`attach_route_tables` is returned.  The caller owns the arena.
    """
    arrays: Dict[str, np.ndarray] = {}
    tables: List[Dict[str, int]] = []
    for m, n in dict.fromkeys((int(m), int(n)) for m, n in shapes):
        shape = compile_tree_routes(m, n)
        if not isinstance(shape, CompiledTreeRoutes):  # pragma: no cover - guard
            raise ValidationError(
                f"cannot re-export route shape ({m}, {n}): the cache already "
                "holds a shared view, and only an owning process may export"
            )
        shape.ensure_complete()
        prefix = _routes_prefix(m, n)
        for key, table in (
            ("full", shape.full),
            ("ascending", shape.ascending),
            ("descending", shape.descending),
        ):
            values, offsets = _pack_csr(table)
            arrays[f"{prefix}/{key}-values"] = values
            arrays[f"{prefix}/{key}-offsets"] = offsets
        arrays[f"{prefix}/has-switch"] = np.fromiter(
            (bool(flag) for flag in shape.full_has_switch),
            dtype=np.uint8,
            count=len(shape.full_has_switch),
        )
        tables.append({"m": m, "n": n, "num_nodes": shape.num_nodes})
    arena = SharedArena.create(arrays)
    manifest = dict(arena.manifest())
    manifest["routes"] = tables
    return arena, manifest


def attach_route_tables(
    manifest: Dict[str, Any],
) -> Tuple[SharedArena, Tuple[SharedTreeRoutes, ...]]:
    """Map an :func:`export_route_tables` manifest into shared route views."""
    arena = SharedArena.attach(manifest)
    return arena, tuple(SharedTreeRoutes(meta, arena) for meta in manifest["routes"])


def install_route_tables(manifest: Dict[str, Any]) -> SharedArena:
    """Attach and publish shared tables through :func:`compile_tree_routes`.

    Shapes this process already compiled (fork-inherited caches) win; the
    shared views fill cache misses only.  Returns the arena, which the
    caller must keep referenced while the views are in use.
    """
    arena, shared = attach_route_tables(manifest)
    for routes in shared:
        _TREE_ROUTES.setdefault((routes.m, routes.n), routes)
    return arena


# --------------------------------------------------------------------------- #
# Zoo route tables (repro.routing.compile.CompiledGraphRoutes) over the arena
# --------------------------------------------------------------------------- #
class SharedGraphRoutes:
    """One zoo spec's complete route tables, mapped from a daemon's arena.

    The zoo counterpart of :class:`SharedTreeRoutes`: the *lazy*
    :class:`~repro.routing.compile.CompiledGraphRoutes` surface with every
    row pre-compiled, so the zoo system-route compiler wraps it in its
    ordinary rebasing views and the fill hooks are no-ops.  Zoo shapes only
    carry the ``full`` / ``full_has_switch`` pair — a one-cluster system
    never reads ascend/descend legs.
    """

    __slots__ = (
        "token",
        "num_nodes",
        "lazy",
        "full",
        "full_has_switch",
        "compiled_rows",
        "_arena",
    )

    def __init__(self, meta: Dict[str, Any], arena: SharedArena) -> None:
        self.token = str(meta["token"])
        self.num_nodes = int(meta["num_nodes"])
        self.lazy = True
        prefix = f"routes-{self.token}"
        self.full = SharedRouteTable(
            arena.array(f"{prefix}/full-values"), arena.array(f"{prefix}/full-offsets")
        )
        self.full_has_switch = _SharedFlagTable(arena.array(f"{prefix}/has-switch"))
        self.compiled_rows = set(range(self.num_nodes))
        self._arena = arena

    def _fill_row(self, source: int) -> None:
        pass

    def ensure_pair(self, source: int, other: int) -> None:
        pass

    def ensure_complete(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedGraphRoutes({self.token!r}, nodes={self.num_nodes}, "
            f"segment={self._arena.name!r})"
        )


def export_graph_route_tables(
    specs: Iterable[Any],
) -> Tuple[SharedArena, Dict[str, Any]]:
    """Compile every zoo spec's routes completely and pack them into an arena.

    Mirrors :func:`export_route_tables`; entries are keyed by the spec's
    ``token`` and the manifest carries ``kind``/``params`` so the attaching
    process rebuilds the identity cache key.
    """
    from repro.routing.compile import (
        _GRAPH_ROUTES,
        CompiledGraphRoutes,
        compile_graph_routes,
    )

    arrays: Dict[str, np.ndarray] = {}
    tables: List[Dict[str, Any]] = []
    seen: set = set()
    for spec in specs:
        if spec.identity in seen:
            continue
        seen.add(spec.identity)
        shape = compile_graph_routes(spec)
        if not isinstance(shape, CompiledGraphRoutes):  # pragma: no cover - guard
            raise ValidationError(
                f"cannot re-export zoo routes {spec.token!r}: the cache "
                "already holds a shared view, and only an owning process may "
                "export"
            )
        shape.ensure_complete()
        prefix = f"routes-{spec.token}"
        values, offsets = _pack_csr(shape.full)
        arrays[f"{prefix}/full-values"] = values
        arrays[f"{prefix}/full-offsets"] = offsets
        arrays[f"{prefix}/has-switch"] = np.fromiter(
            (bool(flag) for flag in shape.full_has_switch),
            dtype=np.uint8,
            count=len(shape.full_has_switch),
        )
        tables.append(
            {
                "token": spec.token,
                "kind": spec.kind,
                "params": dict(spec.params),
                "num_nodes": shape.num_nodes,
            }
        )
    arena = SharedArena.create(arrays)
    manifest = dict(arena.manifest())
    manifest["graph_routes"] = tables
    return arena, manifest


def attach_graph_route_tables(
    manifest: Dict[str, Any],
) -> Tuple[SharedArena, Tuple[SharedGraphRoutes, ...]]:
    """Map an :func:`export_graph_route_tables` manifest into shared views."""
    arena = SharedArena.attach(manifest)
    return arena, tuple(
        SharedGraphRoutes(meta, arena) for meta in manifest["graph_routes"]
    )


def install_graph_route_tables(manifest: Dict[str, Any]) -> SharedArena:
    """Attach and publish shared zoo tables through the graph-route cache.

    Specs this process already compiled win (``setdefault`` semantics via
    :func:`repro.routing.compile.install_graph_routes`).  Returns the arena,
    which the caller must keep referenced while the views are in use.
    """
    from repro.routing.compile import install_graph_routes
    from repro.topology.zoo.spec import TopologySpec

    arena, shared = attach_graph_route_tables(manifest)
    for meta, routes in zip(manifest["graph_routes"], shared):
        install_graph_routes(TopologySpec(meta["kind"], dict(meta["params"])), routes)
    return arena
