"""Precompiled integer route tables for the wormhole hot path.

:class:`~repro.routing.updown.UpDownRouter` is the routing source of truth:
it produces explicit, validated :class:`Channel` sequences, and the
analytical model's stage accounting is checked against it.  But rebuilding
that object chain for every simulated message is the single largest cost of
a simulation run.  This module walks the router **once per tree shape** and
freezes its output into integer-indexed route tables:

* :class:`CompiledTreeRoutes` — for one ``(m, n)`` shape: the full
  node-to-node routes plus the ascending and descending ECN1 legs, each as a
  tuple of dense channel ids (ids from
  :func:`repro.topology.compile.compile_tree`).  Shape tables are cached at
  module level: every same-shape cluster of every spec shares them, across
  sweep points and across process-pool workers.
* :class:`CompiledSystemRoutes` — for one :class:`MultiClusterSpec`: the
  shape tables rebased into the global channel-id space of
  :func:`repro.topology.compile.compile_system`, plus the concentrator and
  dispatcher pseudo-channel slots.  Building a journey becomes tuple
  concatenation of precomputed id tuples — no per-message ``Route``,
  ``Channel`` or address arithmetic survives on the hot path.

Every compiled route round-trips: ``decompile(...)`` maps a compiled id
tuple back to the exact ``Channel`` sequence, and the test suite asserts
equality with a freshly routed :class:`Route` for heterogeneous specs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.routing.updown import UpDownRouter
from repro.topology.compile import CompiledSystem, compile_system, compile_tree
from repro.topology.fat_tree import Channel, shared_tree
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError

__all__ = [
    "CompiledGraphRoutes",
    "CompiledTreeRoutes",
    "CompiledSystemRoutes",
    "CompiledZooRoutes",
    "LAZY_NODE_THRESHOLD",
    "LazyFlagTable",
    "LazyRebasedTable",
    "compile_graph_routes",
    "compile_tree_routes",
    "compile_system_routes",
    "decompile",
    "clear_route_caches",
]

IdTuple = Tuple[int, ...]

#: Shapes with at least this many nodes fill their route tables lazily, one
#: source row per first query, instead of eagerly walking all O(N²) pairs at
#: compile time.  512 nodes (m=8, n=4) is the first Table-1-style shape
#: where eager compilation costs seconds while a typical scenario only ever
#: touches the pairs its traffic pattern draws.
LAZY_NODE_THRESHOLD = 256


class CompiledTreeRoutes:
    """All deterministic routes of one tree shape as dense-id tuples.

    Tables are flat lists indexed by ``source * num_nodes + other`` (the
    diagonal entries are ``None`` — a message to oneself never routes):

    * ``full[s * N + d]`` — the 2j-link route from node ``s`` to node ``d``;
    * ``full_has_switch[...]`` — True when that route crosses at least one
      switch-switch channel (it always crosses node channels), which is all
      the simulator needs to find the slowest hop of an intra-cluster
      journey;
    * ``ascending[s * N + p]`` — the ECN1 ascending leg from ``s`` towards
      exit peer ``p`` (injection + up channels);
    * ``descending[p * N + d]`` — the ECN1 descending leg entered at the NCA
      of entry peer ``p`` and ``d`` (down + ejection channels).

    Small shapes compile every row eagerly (the tables are then plain lists
    with no indirection on the hot path).  Tall shapes — at least
    :data:`LAZY_NODE_THRESHOLD` nodes, or ``lazy=True`` explicitly — keep
    the router and fill one *source row* (all four tables for one ``s``) on
    the first query touching it, so compile cost is O(rows used) instead of
    O(N²); :attr:`compiled_rows` records which rows exist.
    """

    __slots__ = (
        "m",
        "n",
        "num_nodes",
        "full",
        "full_has_switch",
        "ascending",
        "descending",
        "lazy",
        "compiled_rows",
        "_router",
        "_ids",
    )

    def __init__(self, m: int, n: int, lazy: bool | None = None) -> None:
        self.m = int(m)
        self.n = int(n)
        tree = shared_tree(m, n)
        compiled = compile_tree(m, n)
        num_nodes = tree.num_nodes
        self.num_nodes = num_nodes
        self.lazy = num_nodes >= LAZY_NODE_THRESHOLD if lazy is None else bool(lazy)
        self._router = UpDownRouter(tree)
        self._ids = compiled.channel_ids
        self.compiled_rows: set = set()

        pairs = num_nodes * num_nodes
        self.full: List[IdTuple | None] = [None] * pairs
        self.full_has_switch: List[bool] = [False] * pairs
        self.ascending: List[IdTuple | None] = [None] * pairs
        self.descending: List[IdTuple | None] = [None] * pairs
        if not self.lazy:
            for source in range(num_nodes):
                self._fill_row(source)
            # Eager tables are complete: drop the router and id map so the
            # module-level shape cache does not pin them for the process
            # lifetime.
            self._router = None
            self._ids = None

    def _fill_row(self, source: int) -> None:
        """Compile all four tables for one source/entry-peer row."""
        router = self._router
        ids = self._ids
        num_nodes = self.num_nodes
        full = self.full
        has_switch = self.full_has_switch
        ascending = self.ascending
        descending = self.descending
        base = source * num_nodes
        for other in range(num_nodes):
            if other == source:
                continue
            route = router.route(source, other)
            full[base + other] = tuple(ids[channel] for channel in route)
            has_switch[base + other] = any(
                not channel.kind.is_node_channel for channel in route
            )
            ascending[base + other] = tuple(
                ids[channel] for channel in router.ascending_leg(source, other)
            )
            # descending is keyed (entry peer, destination) = (source,
            # other) here: the leg from the NCA of `source` and `other`
            # down to `other`.
            descending[base + other] = tuple(
                ids[channel] for channel in router.descending_leg(source, other)
            )
        self.compiled_rows.add(source)

    def ensure_pair(self, source: int, other: int) -> None:
        """Make sure the row covering ``(source, other)`` is compiled."""
        if source not in self.compiled_rows:
            self._fill_row(source)

    def ensure_complete(self) -> None:
        """Compile every remaining row (setup-time warm-up hook).

        Uniform traffic eventually touches every source row, so a simulation
        engine preparing a lazy shape fills it here — outside the timed
        region — instead of paying row compilation inside the first run.
        Single-pair consumers simply never call this.
        """
        for source in range(self.num_nodes):
            if source not in self.compiled_rows:
                self._fill_row(source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "lazy" if self.lazy else "eager"
        return (
            f"CompiledTreeRoutes(m={self.m}, n={self.n}, nodes={self.num_nodes}, "
            f"{mode}, rows={len(self.compiled_rows)})"
        )


_TREE_ROUTES: Dict[Tuple[int, int], CompiledTreeRoutes] = {}


def compile_tree_routes(m: int, n: int) -> CompiledTreeRoutes:
    """The (cached) route tables of the ``(m, n)`` tree shape."""
    key = (int(m), int(n))
    routes = _TREE_ROUTES.get(key)
    if routes is None:
        routes = _TREE_ROUTES[key] = CompiledTreeRoutes(m, n)
    return routes


class CompiledGraphRoutes:
    """All deterministic up*/down* routes of one zoo topology as id tuples.

    The zoo counterpart of :class:`CompiledTreeRoutes`, holding only the
    tables a one-cluster system needs: ``full[s * N + d]`` (dense channel
    ids of the shortest legal route) and ``full_has_switch[...]`` (True
    when the route crosses a switch-switch channel).  Same lazy
    per-source-row discipline, driven by the memoised per-source BFS of
    :class:`~repro.routing.updown.GraphUpDownRouter` — filling a row costs
    one breadth-first search plus one walk per destination.
    """

    __slots__ = (
        "token",
        "num_nodes",
        "full",
        "full_has_switch",
        "lazy",
        "compiled_rows",
        "_router",
        "_ids",
    )

    def __init__(self, spec, lazy: bool | None = None) -> None:
        # Imported lazily: the zoo package is optional on the import path of
        # fat-tree-only consumers.
        from repro.routing.updown import GraphUpDownRouter
        from repro.topology.zoo.compile import compile_graph
        from repro.topology.zoo.spec import build_topology

        topology = build_topology(spec)
        compiled = compile_graph(spec)
        self.token = spec.token
        num_nodes = topology.num_nodes
        self.num_nodes = num_nodes
        self.lazy = num_nodes >= LAZY_NODE_THRESHOLD if lazy is None else bool(lazy)
        self._router = GraphUpDownRouter(topology)
        self._ids = compiled.channel_ids
        self.compiled_rows: set = set()

        pairs = num_nodes * num_nodes
        self.full: List[IdTuple | None] = [None] * pairs
        self.full_has_switch: List[bool] = [False] * pairs
        if not self.lazy:
            for source in range(num_nodes):
                self._fill_row(source)
            self._router = None
            self._ids = None

    def _fill_row(self, source: int) -> None:
        """Compile the full/has-switch tables for one source row."""
        router = self._router
        ids = self._ids
        num_nodes = self.num_nodes
        full = self.full
        has_switch = self.full_has_switch
        base = source * num_nodes
        for other in range(num_nodes):
            if other == source:
                continue
            route = router.route(source, other)
            full[base + other] = tuple(ids[channel] for channel in route)
            has_switch[base + other] = any(
                not channel.kind.is_node_channel for channel in route
            )
        self.compiled_rows.add(source)

    def ensure_pair(self, source: int, other: int) -> None:
        """Make sure the row covering ``(source, other)`` is compiled."""
        if source not in self.compiled_rows:
            self._fill_row(source)

    def ensure_complete(self) -> None:
        """Compile every remaining row (setup-time warm-up hook)."""
        for source in range(self.num_nodes):
            if source not in self.compiled_rows:
                self._fill_row(source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "lazy" if self.lazy else "eager"
        return (
            f"CompiledGraphRoutes({self.token}, nodes={self.num_nodes}, "
            f"{mode}, rows={len(self.compiled_rows)})"
        )


_GRAPH_ROUTES: Dict[Tuple, CompiledGraphRoutes] = {}


def compile_graph_routes(spec) -> CompiledGraphRoutes:
    """The (cached) route tables of zoo topology ``spec``, keyed by identity."""
    key = spec.identity
    routes = _GRAPH_ROUTES.get(key)
    if routes is None:
        routes = _GRAPH_ROUTES[key] = CompiledGraphRoutes(spec)
    return routes


def install_graph_routes(spec, routes: CompiledGraphRoutes) -> CompiledGraphRoutes:
    """Adopt externally built (e.g. shm-attached) graph route tables.

    ``setdefault`` semantics, mirroring the compiled-graph install hook.
    """
    return _GRAPH_ROUTES.setdefault(spec.identity, routes)


def _rebase(table: List[IdTuple | None], offset: int) -> List[IdTuple | None]:
    """A shape-local id table shifted into a global channel-id block."""
    if offset == 0:
        return table
    return [
        None if entry is None else tuple(cid + offset for cid in entry)
        for entry in table
    ]


class LazyRebasedTable:
    """Pair-indexed view over a lazily filled shape table, rebased on demand.

    Behaves like the flat lists :func:`_rebase` produces — ``view[pair]``
    with ``pair = source * N + other`` — but compiles the source row on the
    first query touching it and memoises the offset-shifted tuple, so a
    single-pair lookup against a tall shape costs one row compilation, not
    O(N²).
    """

    __slots__ = ("_shape", "_table", "_offset", "_entries", "_num_nodes")

    def __init__(self, shape: CompiledTreeRoutes, table: List[IdTuple | None], offset: int) -> None:
        self._shape = shape
        self._table = table
        self._offset = offset
        self._entries: List[IdTuple | None] = [None] * len(table)
        self._num_nodes = shape.num_nodes

    def __getitem__(self, pair: int) -> IdTuple | None:
        entry = self._entries[pair]
        if entry is None:
            raw = self._table[pair]
            if raw is None:
                source, other = divmod(pair, self._num_nodes)
                if source == other:
                    # Diagonal entries stay None, as in the eager tables.
                    return None
                self._shape._fill_row(source)
                raw = self._table[pair]
            offset = self._offset
            entry = self._entries[pair] = tuple(cid + offset for cid in raw)
        return entry

    def __len__(self) -> int:
        return len(self._entries)


class LazyFlagTable:
    """Pair-indexed view over ``full_has_switch`` of a lazily filled shape."""

    __slots__ = ("_shape",)

    def __init__(self, shape: CompiledTreeRoutes) -> None:
        self._shape = shape

    def __getitem__(self, pair: int) -> bool:
        shape = self._shape
        if shape.full[pair] is None:
            source, other = divmod(pair, shape.num_nodes)
            if source != other:
                shape._fill_row(source)
        return shape.full_has_switch[pair]

    def __len__(self) -> int:
        return len(self._shape.full_has_switch)


class CompiledSystemRoutes:
    """Global-id route tables for every journey of one multi-cluster spec.

    Attributes (all indexed with local node indices; ``N_c`` is the node
    count of cluster ``c``):

    * ``intra[c][s * N_c + d]`` — ICN1 route ids of cluster ``c``;
    * ``intra_has_switch[c][...]`` — slowest-hop flag for those routes;
    * ``ascend[c][s * N_c + p]`` — ECN1 ascending-leg ids of cluster ``c``;
    * ``descend[c][p * N_c + d]`` — ECN1 descending-leg ids of cluster ``c``;
    * ``icn2[sc * C + dc]`` — ICN2 route ids between two concentrators;
    * ``concentrator[c]`` / ``dispatcher[c]`` — relay pseudo-channel slots.
    """

    __slots__ = (
        "core",
        "intra",
        "intra_has_switch",
        "ascend",
        "descend",
        "icn2",
        "concentrator",
        "dispatcher",
    )

    def __init__(self, core: CompiledSystem) -> None:
        self.core = core
        spec = core.spec
        intra: List[List[IdTuple | None]] = []
        intra_has_switch: List[List[bool]] = []
        ascend: List[List[IdTuple | None]] = []
        descend: List[List[IdTuple | None]] = []
        for index, height in enumerate(spec.cluster_heights):
            shape = compile_tree_routes(spec.m, height)
            if shape.lazy:
                intra.append(LazyRebasedTable(shape, shape.full, core.icn1_offsets[index]))
                intra_has_switch.append(LazyFlagTable(shape))
                ascend.append(LazyRebasedTable(shape, shape.ascending, core.ecn1_offsets[index]))
                descend.append(LazyRebasedTable(shape, shape.descending, core.ecn1_offsets[index]))
            else:
                intra.append(_rebase(shape.full, core.icn1_offsets[index]))
                intra_has_switch.append(shape.full_has_switch)
                ascend.append(_rebase(shape.ascending, core.ecn1_offsets[index]))
                descend.append(_rebase(shape.descending, core.ecn1_offsets[index]))
        icn2_shape = compile_tree_routes(spec.m, spec.icn2_height)
        self.intra = intra
        self.intra_has_switch = intra_has_switch
        self.ascend = ascend
        self.descend = descend
        self.icn2 = (
            LazyRebasedTable(icn2_shape, icn2_shape.full, core.icn2_offset)
            if icn2_shape.lazy
            else _rebase(icn2_shape.full, core.icn2_offset)
        )
        self.concentrator = tuple(
            core.concentrator_slot(index) for index in range(spec.num_clusters)
        )
        self.dispatcher = tuple(
            core.dispatcher_slot(index) for index in range(spec.num_clusters)
        )

    def warm(self) -> None:
        """Fill every lazy shape table completely (setup-time hook).

        Called by :meth:`repro.api.SimulationEngine.prepare` so scenarios
        whose traffic will touch most pairs anyway (uniform destinations)
        compile outside the timed region and before process-pool fan-out.
        """
        spec = self.core.spec
        for height in (*spec.cluster_heights, spec.icn2_height):
            shape = compile_tree_routes(spec.m, height)
            if shape.lazy:
                shape.ensure_complete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledSystemRoutes({self.core!r})"


class CompiledZooRoutes:
    """Zoo route tables presented through the system-routes surface.

    A zoo topology compiles as a single degenerate cluster, so only the
    intra tables carry routes; the external machinery (ascend/descend
    legs, ICN2 crossing, relay slots) is empty and — with every message
    intra-cluster by construction — never indexed by any kernel.
    """

    __slots__ = (
        "core",
        "intra",
        "intra_has_switch",
        "ascend",
        "descend",
        "icn2",
        "concentrator",
        "dispatcher",
    )

    def __init__(self, core) -> None:
        self.core = core
        shape = compile_graph_routes(core.spec)
        if shape.lazy:
            self.intra = [LazyRebasedTable(shape, shape.full, 0)]
            self.intra_has_switch = [LazyFlagTable(shape)]
        else:
            self.intra = [shape.full]
            self.intra_has_switch = [shape.full_has_switch]
        self.ascend = ((),)
        self.descend = ((),)
        self.icn2 = ()
        self.concentrator = ()
        self.dispatcher = ()

    def warm(self) -> None:
        """Fill the lazy route table completely (setup-time hook)."""
        shape = compile_graph_routes(self.core.spec)
        if shape.lazy:
            shape.ensure_complete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledZooRoutes({self.core!r})"


_SYSTEM_ROUTES: Dict[MultiClusterSpec, CompiledSystemRoutes] = {}
_ZOO_SYSTEM_ROUTES: Dict[Tuple, CompiledZooRoutes] = {}

#: Rebased system tables are the largest compiled artifact (O(sum N_i^2)
#: tuples per spec); bound the cache so sweeps over many organisations
#: cannot pin unbounded memory for the process lifetime.
_SYSTEM_ROUTE_CACHE_LIMIT = 64


def compile_system_routes(spec) -> "CompiledSystemRoutes | CompiledZooRoutes":
    """The (cached) global-id route tables of ``spec``.

    Cached per frozen spec alongside :func:`compile_system`, so repeated
    sweep points, engines and pool workers pay the compilation once per
    process.  ``spec`` may be a :class:`MultiClusterSpec` (the paper's
    system) or a :class:`~repro.topology.zoo.spec.TopologySpec` (a zoo
    member, cached by full topology identity).
    """
    if not isinstance(spec, MultiClusterSpec):
        key = spec.identity
        zoo_routes = _ZOO_SYSTEM_ROUTES.get(key)
        if zoo_routes is None:
            if len(_ZOO_SYSTEM_ROUTES) >= _SYSTEM_ROUTE_CACHE_LIMIT:
                _ZOO_SYSTEM_ROUTES.clear()
            zoo_routes = _ZOO_SYSTEM_ROUTES[key] = CompiledZooRoutes(
                compile_system(spec)
            )
        return zoo_routes
    routes = _SYSTEM_ROUTES.get(spec)
    if routes is None:
        if len(_SYSTEM_ROUTES) >= _SYSTEM_ROUTE_CACHE_LIMIT:
            _SYSTEM_ROUTES.clear()
        routes = _SYSTEM_ROUTES[spec] = CompiledSystemRoutes(compile_system(spec))
    return routes


def decompile(m: int, n: int, ids: IdTuple) -> Tuple[Channel, ...]:
    """Map shape-local channel ids back to their :class:`Channel` objects."""
    compiled = compile_tree(m, n)
    return tuple(compiled.channel_at(cid) for cid in ids)


def route_table_size(m: int, n: int) -> int:
    """Number of ordered node pairs a shape table holds (diagnostic aid)."""
    num_nodes = shared_tree(m, n).num_nodes
    if num_nodes < 2:
        raise ValidationError("route tables need at least two nodes")
    return num_nodes * (num_nodes - 1)


def clear_route_caches() -> None:
    """Drop all compiled route tables (test isolation hook)."""
    _TREE_ROUTES.clear()
    _SYSTEM_ROUTES.clear()
    _GRAPH_ROUTES.clear()
    _ZOO_SYSTEM_ROUTES.clear()
