"""Precomputed routing tables and traffic-balance accounting.

A :class:`RoutingTable` caches the deterministic route of every ordered node
pair of one tree.  Precomputation pays off twice:

* the wormhole simulator asks for the same routes over and over (every
  message between the same pair follows the same deterministic path);
* the balanced-traffic claim of the routing algorithm ("the switch
  contention problem will be extinguished") can be checked quantitatively by
  counting how many pair routes cross every channel —
  :func:`channel_load_histogram`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Tuple

from repro.routing.updown import Route, UpDownRouter
from repro.topology.fat_tree import Channel, ChannelKind, MPortNTree
from repro.utils.validation import ValidationError


class RoutingTable:
    """Lazy cache of deterministic routes for one m-port n-tree.

    Routes are computed on demand and memoised; ``precompute()`` fills the
    whole table eagerly (only sensible for the small trees used in tests and
    in per-cluster networks — a 128-node tree has 16 256 ordered pairs).
    """

    def __init__(self, tree: MPortNTree) -> None:
        self.tree = tree
        self.router = UpDownRouter(tree)
        self._cache: Dict[Tuple[int, int], Route] = {}

    def route(self, source: int, dest: int) -> Route:
        """The cached route from node ``source`` to node ``dest``."""
        if source == dest:
            raise ValidationError("source and destination must differ")
        key = (source, dest)
        if key not in self._cache:
            self._cache[key] = self.router.route(source, dest)
        return self._cache[key]

    def precompute(self) -> None:
        """Fill the table for every ordered node pair."""
        for source in range(self.tree.num_nodes):
            for dest in range(self.tree.num_nodes):
                if source != dest:
                    self.route(source, dest)

    def __len__(self) -> int:
        return len(self._cache)

    def routes(self) -> Iterator[Route]:
        """All routes computed so far."""
        return iter(self._cache.values())


def channel_load_histogram(tree: MPortNTree) -> Dict[Channel, int]:
    """Number of ordered pair routes crossing each directed channel.

    Under uniform traffic every ordered pair is equally likely, so this count
    is proportional to the channel utilisation.  For the destination-based
    deterministic routing used here the load is perfectly balanced within
    each channel class (all up-channels of one level carry the same count,
    ditto down-channels), which is what lets the analytical model describe a
    whole stage by a single channel rate (Eq. 10-12).
    """
    table = RoutingTable(tree)
    table.precompute()
    counter: Counter = Counter()
    for route in table.routes():
        for channel in route:
            counter[channel] += 1
    return dict(counter)


def load_by_kind_and_level(tree: MPortNTree) -> Dict[Tuple[str, int], Tuple[int, int]]:
    """Summarise the channel load as (min, max) per (kind, switch level).

    The key's level is the level of the switch end of the channel (for
    node-switch channels) or of the lower switch (for switch-switch
    channels); the value is the (min, max) load over all channels in that
    class.  Equal min and max in every class demonstrates balance.
    """
    loads = channel_load_histogram(tree)
    grouped: Dict[Tuple[str, int], list] = {}
    for channel, load in loads.items():
        if channel.kind in (ChannelKind.INJECTION, ChannelKind.EJECTION):
            level = 0
        else:
            level = min(channel.source.level, channel.target.level)
        grouped.setdefault((channel.kind.value, level), []).append(load)
    return {key: (min(values), max(values)) for key, values in grouped.items()}
