"""Nearest-common-ancestor (NCA) computations on m-port n-tree addresses.

In an m-port n-tree the up*/down* route between two nodes turns around at a
switch that is an ancestor of both; the *lowest* level at which such a switch
exists determines the route length.  Writing the node addresses as digit
tuples (most significant digit first), two nodes whose longest common prefix
has length ``n - j`` turn around at switch level ``j - 1`` and are ``2 j``
links apart — the ``j`` of Eq. (3)/(4) of the paper.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.topology.fat_tree import FatTreeNode, FatTreeSwitch, MPortNTree
from repro.utils.validation import ValidationError


def common_prefix_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common prefix of two digit tuples."""
    if len(a) != len(b):
        raise ValidationError(
            f"addresses must have the same length, got {len(a)} and {len(b)}"
        )
    length = 0
    for digit_a, digit_b in zip(a, b):
        if digit_a != digit_b:
            break
        length += 1
    return length


def nca_level(tree: MPortNTree, source: FatTreeNode | int, dest: FatTreeNode | int) -> int:
    """Switch level of the nearest common ancestor of two distinct nodes.

    Level 0 is the leaf level.  Raises for ``source == dest`` because a
    message to oneself never enters the network.
    """
    j = tree.nca_distance(source, dest)
    if j == 0:
        raise ValidationError("source and destination must differ")
    return j - 1


def ascent_digits(
    tree: MPortNTree, source: FatTreeNode | int, dest: FatTreeNode | int
) -> Tuple[int, ...]:
    """Up-port digits chosen on the ascending phase (destination-based).

    Ascending from level ``t-1`` to level ``t`` the router picks the up-port
    ``d_{n-t}`` — the ``t``-th *least* significant digit of the destination
    address (a "destination mod k" rule, as used by InfiniBand-style
    deterministic fat-tree routing).  Because these low-order digits are
    uniformly distributed over destinations and independent of which subtree
    the destination sits in, messages to different destinations spread evenly
    over the up-channels and every destination receives its traffic through
    a single dedicated descending path: the balanced traffic distribution the
    paper invokes to dismiss switch contention.
    """
    j = tree.nca_distance(source, dest)
    if j == 0:
        raise ValidationError("source and destination must differ")
    dest_index = dest.index if isinstance(dest, FatTreeNode) else dest
    digits = tree.node_address(dest_index)
    return tuple(digits[tree.n - t] % tree.k for t in range(1, j))


def nca_switch(
    tree: MPortNTree, source: FatTreeNode | int, dest: FatTreeNode | int
) -> FatTreeSwitch:
    """The switch at which the deterministic route turns around.

    The switch both is an ancestor of source and destination and carries the
    index digits selected by :func:`ascent_digits`, so the full route is
    reproducible from this function plus the descending rule.
    """
    source_index = source.index if isinstance(source, FatTreeNode) else source
    switch = tree.leaf_switch_of(source_index)
    for up_digit in ascent_digits(tree, source, dest):
        switch = tree.parent_toward(switch, up_digit)
    return switch
