"""The deterministic Up*/Down* routers.

:class:`UpDownRouter` is the paper's closed-form router for m-port n-trees
(NCA arithmetic on digit addresses); :class:`GraphUpDownRouter` generalizes
up*/down* to *any* graph carrying a spanning-tree orientation — the
topology-zoo members of :mod:`repro.topology.zoo` — via a per-source
breadth-first search over (switch, phase) states.

Every route is an explicit sequence of directed :class:`Channel` objects, so
that the analytical model (which only needs link counts and stage kinds) and
the wormhole simulator (which needs the actual contention points) consume the
very same description of a message's journey.

Besides the ordinary node-to-node route, the router also produces the two
half-journeys that inter-cluster messages make in the ECN1 networks:

* an *ascending leg* from the source node up to the NCA switch toward a
  chosen exit point, where the message is handed to the cluster's
  concentrator (Fig. 2, "leaves the ECN1 at the end of ascending phase");
* a *descending leg* from a switch of the destination cluster's ECN1 down to
  the destination node, where the dispatcher injected it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.routing.nca import ascent_digits
from repro.topology.fat_tree import (
    Channel,
    ChannelKind,
    FatTreeNode,
    FatTreeSwitch,
    MPortNTree,
)
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class Route:
    """An ordered sequence of directed channels through one tree."""

    tree_name: str
    channels: Tuple[Channel, ...]

    def __post_init__(self) -> None:
        for previous, current in zip(self.channels, self.channels[1:]):
            if previous.target != current.source:
                raise ValidationError(
                    f"route is not contiguous: {previous!r} then {current!r}"
                )

    # ----------------------------------------------------------------- lengths
    @property
    def num_links(self) -> int:
        """Number of channels (links) traversed."""
        return len(self.channels)

    @property
    def num_ascending(self) -> int:
        """Links traversed in the ascending phase (injection + up channels)."""
        return sum(
            1
            for channel in self.channels
            if channel.kind in (ChannelKind.INJECTION, ChannelKind.UP)
        )

    @property
    def num_descending(self) -> int:
        """Links traversed in the descending phase (down + ejection channels)."""
        return sum(
            1
            for channel in self.channels
            if channel.kind in (ChannelKind.DOWN, ChannelKind.EJECTION)
        )

    @property
    def switch_channels(self) -> int:
        """Number of switch-to-switch channels (service time ``t_cs``)."""
        return sum(1 for channel in self.channels if not channel.kind.is_node_channel)

    @property
    def node_channels(self) -> int:
        """Number of node-switch channels (service time ``t_cn``)."""
        return sum(1 for channel in self.channels if channel.kind.is_node_channel)

    # ------------------------------------------------------------------ shapes
    @property
    def source(self):
        """First entity on the route."""
        if not self.channels:
            raise ValidationError("empty route has no source")
        return self.channels[0].source

    @property
    def target(self):
        """Last entity on the route."""
        if not self.channels:
            raise ValidationError("empty route has no target")
        return self.channels[-1].target

    @property
    def highest_level(self) -> int:
        """Highest switch level touched (the NCA level for a full route)."""
        levels = [
            entity.level
            for channel in self.channels
            for entity in (channel.source, channel.target)
            if isinstance(entity, FatTreeSwitch)
        ]
        if not levels:
            raise ValidationError("route touches no switches")
        return max(levels)

    def concatenate(self, other: "Route") -> "Route":
        """Join two route legs end to end (used for diagnostics only)."""
        return Route(self.tree_name, self.channels + other.channels)

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self):
        return iter(self.channels)


class UpDownRouter:
    """Deterministic destination-based Up*/Down* routing on one tree."""

    def __init__(self, tree: MPortNTree) -> None:
        self.tree = tree

    # -------------------------------------------------------------- full route
    def route(self, source: FatTreeNode | int, dest: FatTreeNode | int) -> Route:
        """The 2j-link route from ``source`` to ``dest`` (distinct nodes)."""
        tree = self.tree
        source_node = self._as_node(source)
        dest_node = self._as_node(dest)
        if source_node == dest_node:
            raise ValidationError("source and destination must differ")

        channels: List[Channel] = []
        current = tree.leaf_switch_of(source_node)
        channels.append(Channel(source_node, current, ChannelKind.INJECTION))
        # Ascending phase: j-1 up hops chosen from the destination address.
        for up_digit in ascent_digits(tree, source_node, dest_node):
            upper = tree.parent_toward(current, up_digit)
            channels.append(Channel(current, upper, ChannelKind.UP))
            current = upper
        # Descending phase: unique downward path toward the destination.
        while current.level > 0:
            lower = tree.child_toward(current, dest_node)
            channels.append(Channel(current, lower, ChannelKind.DOWN))
            current = lower
        channels.append(Channel(current, dest_node, ChannelKind.EJECTION))
        return Route(tree.name, tuple(channels))

    # ------------------------------------------------------------- ECN1 legs
    def ascending_leg(self, source: FatTreeNode | int, exit_peer: FatTreeNode | int) -> Route:
        """The j-link ascending leg of an outgoing inter-cluster message.

        The message climbs from ``source`` to the NCA of ``source`` and
        ``exit_peer`` — the switch where the (distributed) concentrator picks
        it up.  Drawing ``exit_peer`` uniformly from the cluster's other
        nodes reproduces exactly the ascent-length distribution
        ``P_{j,n_i}`` the analytical model assumes for the ECN1.
        """
        tree = self.tree
        source_node = self._as_node(source)
        peer_node = self._as_node(exit_peer)
        if source_node == peer_node:
            raise ValidationError("exit peer must differ from the source")
        channels: List[Channel] = []
        current = tree.leaf_switch_of(source_node)
        channels.append(Channel(source_node, current, ChannelKind.INJECTION))
        for up_digit in ascent_digits(tree, source_node, peer_node):
            upper = tree.parent_toward(current, up_digit)
            channels.append(Channel(current, upper, ChannelKind.UP))
            current = upper
        return Route(tree.name, tuple(channels))

    def descending_leg(self, entry_peer: FatTreeNode | int, dest: FatTreeNode | int) -> Route:
        """The l-link descending leg of an incoming inter-cluster message.

        The dispatcher injects the message at the NCA of ``entry_peer`` and
        ``dest`` and it descends to ``dest``; the uniform choice of
        ``entry_peer`` gives the ``P_{l,n_v}`` descent-length distribution of
        the model.
        """
        tree = self.tree
        peer_node = self._as_node(entry_peer)
        dest_node = self._as_node(dest)
        if peer_node == dest_node:
            raise ValidationError("entry peer must differ from the destination")
        channels: List[Channel] = []
        current = tree.leaf_switch_of(peer_node)
        for up_digit in ascent_digits(tree, peer_node, dest_node):
            current = tree.parent_toward(current, up_digit)
        while current.level > 0:
            lower = tree.child_toward(current, dest_node)
            channels.append(Channel(current, lower, ChannelKind.DOWN))
            current = lower
        channels.append(Channel(current, dest_node, ChannelKind.EJECTION))
        return Route(tree.name, tuple(channels))

    # ------------------------------------------------------------------ helper
    def _as_node(self, node: FatTreeNode | int) -> FatTreeNode:
        if isinstance(node, FatTreeNode):
            self.tree.node_address(node.index)  # validates the range
            return node
        return self.tree.node(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpDownRouter({self.tree!r})"


#: BFS state of :class:`GraphUpDownRouter`: (switch id, phase), with phase 0
#: while the walk is still ascending and 1 once it has turned down.
_State = Tuple[int, int]


class GraphUpDownRouter:
    """Deterministic up*/down* routing over an oriented switch graph.

    Works on any :class:`~repro.topology.zoo.graphs.ZooTopology`: the
    topology's orientation (``oriented_links``) splits every link into an
    UP and a DOWN channel, and a legal route takes zero or more UP channels
    followed by zero or more DOWN channels — the classical deadlock-free
    up*/down* discipline.

    The router finds, per (source switch, destination switch) pair, the
    *shortest* legal switch path, deterministically: one breadth-first
    search per source switch over ``(switch, phase)`` states, expanding UP
    successors before DOWN successors and neighbours in ascending id
    order, with the first state reaching a switch recorded as that
    switch's arrival.  The search tree is memoised per source switch, so
    compiling a full source row costs one BFS (O(channels)), not one per
    destination.
    """

    def __init__(self, topology) -> None:
        self.topology = topology
        num_switches = topology.num_switches
        up_adj: List[List[int]] = [[] for _ in range(num_switches)]
        down_adj: List[List[int]] = [[] for _ in range(num_switches)]
        for child, parent in topology.oriented_links():
            up_adj[child].append(parent)
            down_adj[parent].append(child)
        self._up_adj = [sorted(adjacent) for adjacent in up_adj]
        self._down_adj = [sorted(adjacent) for adjacent in down_adj]
        self._trees: Dict[int, Tuple[Dict, Dict]] = {}

    # ------------------------------------------------------------ search tree
    def _search_tree(self, start: int) -> Tuple[Dict, Dict]:
        """The memoised BFS tree rooted at switch ``start``.

        Returns ``(parent, arrival)``: ``parent[state]`` is the
        ``(previous state, channel kind)`` edge that first enqueued
        ``state`` (``None`` at the root), ``arrival[switch]`` the first
        state that reached ``switch``.  FIFO order plus the fixed
        expansion order make both deterministic and distance-minimal.
        """
        memo = self._trees.get(start)
        if memo is not None:
            return memo
        up_adj = self._up_adj
        down_adj = self._down_adj
        root: _State = (start, 0)
        parent: Dict[_State, Optional[Tuple[_State, ChannelKind]]] = {root: None}
        arrival: Dict[int, _State] = {start: root}
        queue = deque((root,))
        while queue:
            state = queue.popleft()
            switch, phase = state
            if phase == 0:
                for upper in up_adj[switch]:
                    successor: _State = (upper, 0)
                    if successor not in parent:
                        parent[successor] = (state, ChannelKind.UP)
                        arrival.setdefault(upper, successor)
                        queue.append(successor)
            for lower in down_adj[switch]:
                successor = (lower, 1)
                if successor not in parent:
                    parent[successor] = (state, ChannelKind.DOWN)
                    arrival.setdefault(lower, successor)
                    queue.append(successor)
        memo = self._trees[start] = (parent, arrival)
        return memo

    # -------------------------------------------------------------- full route
    def route(self, source: int, dest: int) -> Route:
        """The shortest legal up*/down* route between two distinct hosts."""
        topology = self.topology
        source_index = self._as_host(source)
        dest_index = self._as_host(dest)
        if source_index == dest_index:
            raise ValidationError("source and destination must differ")
        # Imported lazily to keep the fat-tree-only import graph unchanged.
        from repro.topology.zoo.graphs import GraphSwitch, Host

        source_switch = topology.host_switch(source_index)
        dest_switch = topology.host_switch(dest_index)
        channels: List[Channel] = [
            Channel(Host(source_index), GraphSwitch(source_switch), ChannelKind.INJECTION)
        ]
        if source_switch != dest_switch:
            parent, arrival = self._search_tree(source_switch)
            state = arrival.get(dest_switch)
            if state is None:
                raise ValidationError(
                    f"no up*/down* route from switch {source_switch} to "
                    f"switch {dest_switch} on {topology.name}"
                )  # pragma: no cover - orientation invariant guarantees a route
            hops: List[Channel] = []
            while True:
                edge = parent[state]
                if edge is None:
                    break
                previous, kind = edge
                hops.append(
                    Channel(GraphSwitch(previous[0]), GraphSwitch(state[0]), kind)
                )
                state = previous
            channels.extend(reversed(hops))
        channels.append(
            Channel(GraphSwitch(dest_switch), Host(dest_index), ChannelKind.EJECTION)
        )
        return Route(topology.name, tuple(channels))

    # ------------------------------------------------------------------ helper
    def _as_host(self, host) -> int:
        index = getattr(host, "index", host)
        if not 0 <= index < self.topology.num_nodes:
            raise ValidationError(
                f"host index {index} out of range [0, {self.topology.num_nodes})"
            )
        return int(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphUpDownRouter({self.topology!r})"
