"""Deterministic Up*/Down* routing on m-port n-trees.

The paper adopts a deterministic routing in the family of Up*/Down*
[Autonet] algorithms, specialised to fat trees: every message first ascends
to a Nearest Common Ancestor (NCA) of its source and destination and then
descends to the destination.  The particular deterministic variant (from the
authors' technical report [18]) chooses the ascending path from the
*destination address*, which spreads the traffic of different destinations
over different switches and therefore removes switch contention — the
property the analytical model relies on when it treats all channels of one
stage as statistically identical.

Modules
-------
* :mod:`repro.routing.nca` — nearest-common-ancestor computations on node
  addresses;
* :mod:`repro.routing.updown` — the deterministic router producing explicit
  channel-by-channel routes (full routes, ascending-only and descending-only
  legs for the concentrator/dispatcher journeys);
* :mod:`repro.routing.table` — precomputed routing tables plus traffic-load
  accounting used to verify the balanced-traffic claim;
* :mod:`repro.routing.compile` — the same deterministic routes frozen into
  integer-indexed tables over the compiled channel-id space (what the
  wormhole simulator's hot path consumes).
"""

from repro.routing.nca import (
    ascent_digits,
    common_prefix_length,
    nca_level,
    nca_switch,
)
from repro.routing.updown import Route, UpDownRouter
from repro.routing.table import RoutingTable, channel_load_histogram
from repro.routing.compile import (
    CompiledSystemRoutes,
    CompiledTreeRoutes,
    compile_system_routes,
    compile_tree_routes,
)

__all__ = [
    "ascent_digits",
    "common_prefix_length",
    "nca_level",
    "nca_switch",
    "Route",
    "UpDownRouter",
    "RoutingTable",
    "channel_load_histogram",
    "CompiledSystemRoutes",
    "CompiledTreeRoutes",
    "compile_system_routes",
    "compile_tree_routes",
]
