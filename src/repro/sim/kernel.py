"""Direct-dispatch message kernel: the wormhole transfer as a flat FSM.

:func:`~repro.sim.wormhole.compiled_transfer` expresses the message life
cycle as a generator: one ``yield`` per channel grant and per header flit,
resumed through :class:`~repro.des.events.Process`.  That reads well — it
*is* the specification — but on the hot path every hop pays a generator
frame resume, an ``isinstance`` check, a callback append and a fresh
:class:`~repro.des.events.Timeout` allocation.

:class:`TransferKernel` lowers that life cycle to a finite-state machine
driven directly by event callbacks:

* each in-flight message owns one slab-recycled :class:`KernelEvent` that is
  rescheduled for every stage of its journey — the grant of the next
  channel, the header time of the hop just granted, the tail serialisation —
  so the per-flit path allocates nothing;
* the event's single callback is :meth:`TransferKernel._dispatch`, which
  advances a three-state machine (``GRANT -> HEADER -> { GRANT | TAIL }``)
  using integer indexes into the journey's precompiled slot tuple;
* channel state is the same :class:`~repro.sim.network.FlatChannels`
  instance the generator path uses, acquired/released with the identical
  FIFO protocol.

**The event sequence is bit-identical to the generator path.**  Every
``Environment.schedule`` call the generator realisation makes — one grant
and one header timeout per hop, one tail timeout, releases in acquisition
order after delivery — happens here at the same simulation time, with the
same priority, in the same relative order; only the bookkeeping events of
the process machinery (the URGENT ``Initialize`` kick-off and the process
completion event, both of which do no work in the transfer) disappear, which
renumbers event ids without reordering any two surviving events.  The
golden-seed regression and ``tests/sim/test_kernel.py`` pin the two
realisations to each other; keep ``wormhole_transfer`` /
``compiled_transfer`` as the readable specification when modifying this
file.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.des.core import Environment
from repro.des.events import Event
from repro.sim.message import Message
from repro.sim.network import FlatChannels
from repro.utils.validation import ValidationError

__all__ = ["KernelEvent", "TransferKernel"]

#: FSM states: what the in-flight kernel event currently represents.
_GRANT = 0    # waiting for / just granted the channel at `position`
_HEADER = 1   # header flit crossing the channel at `position`
_TAIL = 2     # body flits serialising behind the delivered header


class KernelEvent(Event):
    """The one recycled event record of an in-flight transfer.

    The same object serves as every channel grant and every timeout of its
    transfer: :class:`~repro.sim.network.FlatChannels` tracks holders by
    identity per slot, so one event can hold a whole journey's channels at
    once, and the environment detaches ``callbacks`` on processing, so the
    dispatcher re-arms the event before each reschedule.
    """

    __slots__ = ("transfer",)

    def __init__(self, env: Environment, transfer: "_Transfer") -> None:
        super().__init__(env)
        self.transfer = transfer


class _Transfer:
    """Journey state of one in-flight message (slab-recycled)."""

    __slots__ = ("message", "slots", "position", "tail_time", "state", "event", "callbacks")

    def __init__(self, kernel: "TransferKernel") -> None:
        self.message: Optional[Message] = None
        self.slots: Tuple[int, ...] = ()
        self.position = 0
        self.tail_time = 0.0
        self.state = _GRANT
        self.event = KernelEvent(kernel.env, self)
        #: the permanent single-callback list the event is re-armed with
        self.callbacks = [kernel._dispatch]


class TransferKernel:
    """Direct-dispatch twin of :func:`~repro.sim.wormhole.compiled_transfer`.

    Parameters
    ----------
    env / channels / header_times:
        The run's environment, flat channel state and per-slot flit-time
        table (shared by every transfer of the run).
    on_delivered:
        Callback invoked with the message after its tail arrives — the same
        hook the generator path takes.
    """

    __slots__ = (
        "env",
        "channels",
        "header_times",
        "on_delivered",
        "_free",
        "started",
        "completed",
        "_schedule",
        "_acquire",
        "_release",
    )

    def __init__(
        self,
        env: Environment,
        channels: FlatChannels,
        header_times: Sequence[float],
        on_delivered: Callable[[Message], None] | None = None,
    ) -> None:
        self.env = env
        self.channels = channels
        self.header_times = header_times
        self.on_delivered = on_delivered
        #: recycled transfer records (each owns its kernel event)
        self._free: List[_Transfer] = []
        #: lifetime counters (diagnostics; `in_flight` is their difference)
        self.started = 0
        self.completed = 0
        # Pre-bound hot-path callables (one attribute walk per run, not per
        # event).
        self._schedule = env.schedule
        self._acquire = channels.acquire
        self._release = channels.release

    @property
    def in_flight(self) -> int:
        """Number of transfers currently somewhere in the network."""
        return self.started - self.completed

    def start(self, message: Message, slots: Tuple[int, ...], tail_time: float) -> None:
        """Inject ``message`` on the journey ``slots`` (precompiled ids).

        Equivalent to ``env.process(compiled_transfer(...))`` on the
        generator path: the first channel is requested immediately at the
        current simulation time.
        """
        if not slots:
            raise ValidationError("a journey needs at least one hop")
        free = self._free
        transfer = free.pop() if free else _Transfer(self)
        transfer.message = message
        transfer.slots = slots
        transfer.position = 0
        transfer.tail_time = tail_time
        transfer.state = _GRANT
        event = transfer.event
        event.callbacks = transfer.callbacks
        self.started += 1
        self._acquire(slots[0], event)

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, event: KernelEvent) -> None:
        """Advance one transfer by one event (the kernel's only callback)."""
        transfer = event.transfer
        state = transfer.state
        if state == _GRANT:
            position = transfer.position
            if position == 0:
                # The wait for the first (injection) slot is the source-queue
                # delay of the analytical model.
                transfer.message.mark_injected(self.env._now)
            transfer.state = _HEADER
            event.callbacks = transfer.callbacks
            self._schedule(event, delay=self.header_times[transfer.slots[position]])
        elif state == _HEADER:
            slots = transfer.slots
            position = transfer.position + 1
            if position < len(slots):
                transfer.position = position
                transfer.state = _GRANT
                event.callbacks = transfer.callbacks
                self._acquire(slots[position], event)
            elif transfer.tail_time > 0.0:
                transfer.state = _TAIL
                event.callbacks = transfer.callbacks
                self._schedule(event, delay=transfer.tail_time)
            else:
                self._finish(transfer)
        else:
            self._finish(transfer)

    def _finish(self, transfer: _Transfer) -> None:
        """Deliver the message and release the whole journey in hop order."""
        message = transfer.message
        message.mark_delivered(self.env._now)
        if self.on_delivered is not None:
            self.on_delivered(message)
        release = self._release
        event = transfer.event
        for slot in transfer.slots:
            release(slot, event)
        transfer.message = None
        transfer.slots = ()
        self.completed += 1
        self._free.append(transfer)
