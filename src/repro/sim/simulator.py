"""The top-level multi-cluster wormhole simulator.

:class:`MultiClusterSimulator` takes the same inputs as the analytical model
(a :class:`MultiClusterSpec`, a message geometry, channel timing) plus a
traffic pattern and a statistics budget, and produces a
:class:`SimulationResult` per operating point.  A latency-versus-offered-
traffic sweep therefore needs nothing more than::

    simulator = MultiClusterSimulator(spec, MessageSpec(32, 256))
    results = [simulator.run(lambda_g) for lambda_g in offered_traffic]

Each run builds a fresh discrete-event environment, so runs are independent
and reproducible from their seed.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

from repro.des import Environment, Resource
from repro.model.parameters import MessageSpec, PAPER_TIMING, TimingParameters
from repro.routing.updown import UpDownRouter
from repro.sim.config import SimulationConfig
from repro.sim.message import Message
from repro.sim.network import ChannelPool
from repro.sim.statistics import SimulationResult, StatisticsCollector
from repro.sim.wormhole import (
    draw_peer,
    inter_cluster_hops,
    intra_cluster_hops,
    wormhole_transfer,
)
from repro.topology.multicluster import MultiClusterSpec, MultiClusterSystem
from repro.utils.rng import RandomStreams
from repro.utils.validation import check_positive
from repro.workloads.base import TrafficPattern
from repro.workloads.poisson import PoissonArrivals
from repro.workloads.uniform import UniformTraffic


class MultiClusterSimulator:
    """Discrete-event wormhole simulator of a heterogeneous multi-cluster system.

    Parameters
    ----------
    spec:
        The system organisation (e.g. a Table 1 row).
    message:
        Message geometry (``M`` flits of ``L_m`` bytes).
    timing:
        Channel timing; defaults to the paper's values.
    config:
        Statistics budget (warm-up / measured / drain counts and the seed).
    pattern:
        Destination distribution; defaults to the paper's uniform pattern.
    arrivals_factory:
        Callable mapping an offered traffic ``lambda_g`` to an
        :class:`~repro.workloads.base.ArrivalProcess`; defaults to Poisson
        generation (assumption 1).  Passing
        :class:`~repro.workloads.DeterministicArrivals` turns the generator
        into the variance ablation discussed in DESIGN.md.
    """

    def __init__(
        self,
        spec: MultiClusterSpec,
        message: MessageSpec = MessageSpec(),
        timing: TimingParameters = PAPER_TIMING,
        config: SimulationConfig = SimulationConfig(),
        pattern: Optional[TrafficPattern] = None,
        arrivals_factory=None,
    ) -> None:
        self.spec = spec
        self.message = message
        self.timing = timing
        self.config = config
        self.pattern = pattern if pattern is not None else UniformTraffic()
        self.arrivals_factory = (
            arrivals_factory if arrivals_factory is not None else PoissonArrivals
        )
        self.system = MultiClusterSystem(spec)
        self._icn1_routers = [UpDownRouter(cluster.icn1) for cluster in self.system.clusters]
        self._ecn1_routers = [UpDownRouter(cluster.ecn1) for cluster in self.system.clusters]
        self._icn2_router = UpDownRouter(self.system.icn2)

    # ------------------------------------------------------------------ runs
    def run(
        self,
        lambda_g: float,
        *,
        config: Optional[SimulationConfig] = None,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate one operating point and return its latency statistics."""
        check_positive(lambda_g, "lambda_g")
        run_config = config if config is not None else self.config
        if seed is not None:
            run_config = run_config.with_seed(seed)
        state = _RunState(self, lambda_g, run_config)
        started = _time.perf_counter()
        state.execute()
        elapsed = _time.perf_counter() - started
        return state.collector.result(
            lambda_g=lambda_g,
            saturated=state.timed_out,
            wall_clock_seconds=elapsed,
            channel_utilisation=state.channel_utilisation(),
            seed=run_config.seed,
        )

    def latency_curve(
        self,
        lambdas,
        *,
        config: Optional[SimulationConfig] = None,
    ) -> List[SimulationResult]:
        """One simulation run per offered-traffic value."""
        return [self.run(value, config=config) for value in lambdas]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiClusterSimulator(N={self.spec.total_nodes}, C={self.spec.num_clusters}, "
            f"m={self.spec.m}, {self.message.describe()}, {self.pattern.describe()})"
        )


class _RunState:
    """Everything belonging to one simulation run (one environment)."""

    def __init__(
        self, simulator: MultiClusterSimulator, lambda_g: float, config: SimulationConfig
    ) -> None:
        self.simulator = simulator
        self.lambda_g = lambda_g
        self.config = config
        self.env = Environment()
        self.streams = RandomStreams(config.seed)
        self.arrivals = simulator.arrivals_factory(lambda_g)
        link_timing = simulator.timing.link_timing(simulator.message.flit_bytes)
        self.relay_time = link_timing.t_cs
        system = simulator.system
        self.icn1_pools = [
            ChannelPool(self.env, f"cluster{c.index}/ICN1", link_timing) for c in system.clusters
        ]
        self.ecn1_pools = [
            ChannelPool(self.env, f"cluster{c.index}/ECN1", link_timing) for c in system.clusters
        ]
        self.icn2_pool = ChannelPool(self.env, "ICN2", link_timing)
        self.concentrators = [
            Resource(self.env, capacity=1, name=f"concentrator{c.index}")
            for c in system.clusters
        ]
        self.dispatchers = [
            Resource(self.env, capacity=1, name=f"dispatcher{c.index}")
            for c in system.clusters
        ]
        self.collector = StatisticsCollector(num_clusters=system.num_clusters)
        self.generated = 0
        self.delivered_measured = 0
        self.done = self.env.event()
        self.timed_out = False

    # ------------------------------------------------------------- execution
    def execute(self) -> None:
        for cluster_index, node in self.simulator.system.nodes():
            self.env.process(self._source_process(cluster_index, node.index))
        guard = self.env.timeout(self.config.max_time)
        self.env.run(until=self.done | guard)
        if not self.done.triggered:
            self.timed_out = True

    def channel_utilisation(self) -> Dict[str, tuple]:
        """Per-network (mean, max) channel utilisation over the whole run.

        ICN1 and ECN1 pools are aggregated over clusters (the max picks out
        the busiest cluster's busiest channel); the concentrator/dispatcher
        buffers are reported as their own "network" because they are the
        physical bottleneck of the Table 1 organisations.
        """
        elapsed = self.env.now
        if elapsed <= 0:
            return {}
        report: Dict[str, tuple] = {}
        for label, pools in (("ICN1", self.icn1_pools), ("ECN1", self.ecn1_pools)):
            values = [pool.utilisation(elapsed) for pool in pools if pool.touched_channels]
            if values:
                report[label] = (
                    sum(mean for mean, _ in values) / len(values),
                    max(peak for _, peak in values),
                )
        if self.icn2_pool.touched_channels:
            report["ICN2"] = self.icn2_pool.utilisation(elapsed)
        relay_fractions = [
            min(resource.busy_time / elapsed, 1.0)
            for resource in (*self.concentrators, *self.dispatchers)
            if resource.total_grants
        ]
        if relay_fractions:
            report["concentrators"] = (
                sum(relay_fractions) / len(relay_fractions),
                max(relay_fractions),
            )
        return report

    # ------------------------------------------------------------- processes
    def _source_process(self, cluster_index: int, node_index: int):
        """Poisson message generation at one node (assumption 1)."""
        rng = self.streams.get("arrivals", cluster_index, node_index)
        dest_rng = self.streams.get("destinations", cluster_index, node_index)
        peer_rng = self.streams.get("peers", cluster_index, node_index)
        system = self.simulator.system
        pattern = self.simulator.pattern
        while True:
            yield self.env.timeout(self.arrivals.next_interarrival(rng))
            if self.generated >= self.config.total_messages:
                return
            index = self.generated
            self.generated += 1
            destination = pattern.sample_destination(
                dest_rng, system, cluster_index, node_index
            )
            message = Message(
                index=index,
                source_cluster=cluster_index,
                source_node=node_index,
                dest_cluster=destination.cluster,
                dest_node=destination.node,
                length_flits=self.simulator.message.length_flits,
                created_at=self.env.now,
                measured=(
                    self.config.warmup_messages
                    <= index
                    < self.config.warmup_messages + self.config.measured_messages
                ),
            )
            hops = self._build_hops(message, peer_rng)
            self.env.process(
                wormhole_transfer(
                    self.env, message, hops, on_delivered=self._on_delivered
                )
            )

    def _build_hops(self, message: Message, peer_rng):
        simulator = self.simulator
        system = simulator.system
        if not message.is_external:
            return intra_cluster_hops(
                self.icn1_pools[message.source_cluster],
                simulator._icn1_routers[message.source_cluster],
                message.source_node,
                message.dest_node,
            )
        source_cluster = system.cluster(message.source_cluster)
        dest_cluster = system.cluster(message.dest_cluster)
        exit_peer = draw_peer(peer_rng, source_cluster.num_nodes, message.source_node)
        entry_peer = draw_peer(peer_rng, dest_cluster.num_nodes, message.dest_node)
        return inter_cluster_hops(
            source_pool=self.ecn1_pools[message.source_cluster],
            source_router=simulator._ecn1_routers[message.source_cluster],
            dest_pool=self.ecn1_pools[message.dest_cluster],
            dest_router=simulator._ecn1_routers[message.dest_cluster],
            icn2_pool=self.icn2_pool,
            icn2_router=simulator._icn2_router,
            concentrator=self.concentrators[message.source_cluster],
            dispatcher=self.dispatchers[message.dest_cluster],
            source_node=message.source_node,
            exit_peer=exit_peer,
            dest_node=message.dest_node,
            entry_peer=entry_peer,
            source_concentrator_node=message.source_cluster,
            dest_concentrator_node=message.dest_cluster,
            relay_time=self.relay_time,
        )

    def _on_delivered(self, message: Message) -> None:
        if not message.measured:
            return
        self.collector.record(message)
        self.delivered_measured += 1
        if self.delivered_measured >= self.config.measured_messages and not self.done.triggered:
            self.done.succeed()
