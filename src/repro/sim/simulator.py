"""The top-level multi-cluster wormhole simulator.

:class:`MultiClusterSimulator` takes the same inputs as the analytical model
(a :class:`MultiClusterSpec`, a message geometry, channel timing) plus a
traffic pattern and a statistics budget, and produces a
:class:`SimulationResult` per operating point.  A latency-versus-offered-
traffic sweep therefore needs nothing more than::

    simulator = MultiClusterSimulator(spec, MessageSpec(32, 256))
    results = [simulator.run(lambda_g) for lambda_g in offered_traffic]

Each run builds a fresh discrete-event environment, so runs are independent
and reproducible from their seed.

Since the compiled-core refactor the simulator executes on the flat-array
hot path: the constructor pulls the (module-cached) compiled channel-id
space of the organisation (:func:`repro.topology.compile.compile_system`)
and its precompiled route tables
(:func:`repro.routing.compile.compile_system_routes`), and every message
moves over dense integer channel ids.  The message life cycle itself runs
on the batched vectorized core of :mod:`repro.sim.vector` by default
(``kernel="vectorized"``): a calendar-ring scheduler popping equal-time
event cohorts, per-source pre-drawn workload chunks and flat NumPy channel
state.  The direct-dispatch FSM of :class:`~repro.sim.kernel.TransferKernel`
(``kernel="dispatch"``) and the generator-coroutine specification
(``kernel="generator"``) remain as the executable specification paths,
selectable per constructor or via ``REPRO_SIM_KERNEL``; per-run random
streams are restored from the pooled PCG64 snapshots of
:mod:`repro.utils.rng` in every kernel.  The event sequence is identical
across kernels and identical to the object-path realisation
(``ChannelPool`` + ``wormhole_transfer``), which remains in
:mod:`repro.sim.wormhole` as the readable specification; a golden-seed
regression test pins the statistics of all representations to each other.
"""

from __future__ import annotations

import gc
import os
import time as _time
from typing import Dict, List, Optional

from repro.des import Environment
from repro.model.parameters import MessageSpec, PAPER_TIMING, TimingParameters
from repro.routing.compile import compile_system_routes
from repro.sim.config import SimulationConfig
from repro.sim.kernel import TransferKernel
from repro.sim.message import Message
from repro.sim.network import FlatChannels
from repro.sim.statistics import SimulationResult, StatisticsCollector
from repro.sim.vector import VectorizedRunState
from repro.sim.wormhole import compiled_transfer, draw_peer
from repro.topology.compile import compile_system
from repro.utils.rng import RandomStreams
from repro.utils.validation import ValidationError, check_positive
from repro.workloads.base import TrafficPattern
from repro.workloads.poisson import PoissonArrivals
from repro.workloads.uniform import UniformTraffic

#: Recognised message-kernel realisations: the direct-dispatch FSM
#: (:mod:`repro.sim.kernel`), the generator-coroutine specification
#: (:mod:`repro.sim.wormhole`) and the batched flat-state core
#: (:mod:`repro.sim.vector`).
KERNEL_MODES = ("dispatch", "generator", "vectorized")

#: Kernel used when neither the constructor nor ``REPRO_SIM_KERNEL`` selects
#: one.  The result store's task keys hash this default, so it must live
#: here — next to the code it selects — not as a copied literal.
DEFAULT_KERNEL = "vectorized"

#: Per-node stream kinds a run draws from (arrival gaps, destinations,
#: distributed-concentrator peers).
STREAM_KINDS = ("arrivals", "destinations", "peers")


class MultiClusterSimulator:
    """Discrete-event wormhole simulator of a heterogeneous multi-cluster system.

    Parameters
    ----------
    spec:
        The system organisation: a
        :class:`~repro.topology.multicluster.MultiClusterSpec` (e.g. a
        Table 1 row) or a zoo
        :class:`~repro.topology.zoo.spec.TopologySpec`.
    message:
        Message geometry (``M`` flits of ``L_m`` bytes).
    timing:
        Channel timing; defaults to the paper's values.
    config:
        Statistics budget (warm-up / measured / drain counts and the seed).
    pattern:
        Destination distribution; defaults to the paper's uniform pattern.
    arrivals_factory:
        Callable mapping an offered traffic ``lambda_g`` to an
        :class:`~repro.workloads.base.ArrivalProcess`; defaults to Poisson
        generation (assumption 1).  Passing
        :class:`~repro.workloads.DeterministicArrivals` turns the generator
        into the variance ablation discussed in DESIGN.md.
    kernel:
        Message-lifecycle realisation: ``"vectorized"`` (default) runs the
        batched flat-state core of
        :class:`~repro.sim.vector.VectorizedRunState` on a calendar ring;
        ``"dispatch"`` drives the direct-dispatch FSM of
        :class:`~repro.sim.kernel.TransferKernel` on the generic event
        loop; ``"generator"`` keeps the coroutine specification path
        (:func:`~repro.sim.wormhole.compiled_transfer`).  All three replay
        the identical event sequence — the choice affects wall-clock only.
        Defaults to the ``REPRO_SIM_KERNEL`` environment variable when
        unset, so a debugging session can force a readable path without
        touching code.
    """

    def __init__(
        self,
        spec,
        message: MessageSpec = MessageSpec(),
        timing: TimingParameters = PAPER_TIMING,
        config: SimulationConfig = SimulationConfig(),
        pattern: Optional[TrafficPattern] = None,
        arrivals_factory=None,
        kernel: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.message = message
        self.timing = timing
        self.config = config
        self.pattern = pattern if pattern is not None else UniformTraffic()
        self.arrivals_factory = (
            arrivals_factory if arrivals_factory is not None else PoissonArrivals
        )
        if kernel is None:
            kernel = os.environ.get("REPRO_SIM_KERNEL", DEFAULT_KERNEL)
        if kernel not in KERNEL_MODES:
            raise ValidationError(
                f"unknown simulation kernel {kernel!r}; expected one of {KERNEL_MODES}"
            )
        self.kernel = kernel
        #: compiled channel-id space and route tables (module-cached per
        #: spec: shared across operating points, engines and pool workers)
        self.core = compile_system(spec)
        self.routes = compile_system_routes(spec)
        self.system = self.core.system
        link_timing = timing.link_timing(message.flit_bytes)
        self._t_cn = link_timing.t_cn
        self._t_cs = link_timing.t_cs
        self._max_header = max(self._t_cn, self._t_cs)
        #: per-slot flit transfer times (relay slots carry the switch time,
        #: matching the relay_time of the object-path realisation)
        self._header_times = self.core.header_times(self._t_cn, self._t_cs)
        self._cluster_nodes = [cluster.num_nodes for cluster in self.system.clusters]

    # ------------------------------------------------------------------ runs
    def run(
        self,
        lambda_g: float,
        *,
        config: Optional[SimulationConfig] = None,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate one operating point and return its latency statistics."""
        check_positive(lambda_g, "lambda_g")
        run_config = config if config is not None else self.config
        if seed is not None:
            run_config = run_config.with_seed(seed)
        if self.kernel == "vectorized":
            state = VectorizedRunState(self, lambda_g, run_config)
        else:
            state = _RunState(self, lambda_g, run_config)
        started = _time.perf_counter()
        state.execute()
        elapsed = _time.perf_counter() - started
        return state.collector.result(
            lambda_g=lambda_g,
            saturated=state.timed_out,
            wall_clock_seconds=elapsed,
            channel_utilisation=state.channel_utilisation(),
            seed=run_config.seed,
            events_processed=state.events_processed,
        )

    def latency_curve(
        self,
        lambdas,
        *,
        config: Optional[SimulationConfig] = None,
    ) -> List[SimulationResult]:
        """One simulation run per offered-traffic value."""
        return [self.run(value, config=config) for value in lambdas]

    def warm_streams(self, config: Optional[SimulationConfig] = None) -> None:
        """Build every per-node random stream once for the run seed.

        Constructing a stream seeds a PCG64 generator through SeedSequence
        entropy mixing — the dominant per-run setup cost on 1000+-node
        systems.  Each construction snapshots its initial state into the
        module-level pool of :mod:`repro.utils.rng`, so every later run of
        the same seed (each sweep point, and — under a fork start — every
        pool worker) restores states instead of re-mixing.
        """
        run_config = config if config is not None else self.config
        streams = RandomStreams(run_config.seed, pooled=True)
        for cluster_index, node in self.system.nodes():
            for kind in STREAM_KINDS:
                streams.get(kind, cluster_index, node.index)

    def prepare(self, config: Optional[SimulationConfig] = None) -> None:
        """Pay every remaining setup cost now, outside any timed region.

        Covers the stream pool (:meth:`warm_streams`) and the lazy route
        rows of tall shapes — a uniform pattern touches every source row
        eventually, so filling them here keeps row compilation out of the
        first timed run and out of every process-pool worker.
        """
        self.warm_streams(config)
        self.routes.warm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arity = getattr(self.spec, "m", None)
        detail = f"m={arity}, " if arity is not None else f"{self.spec.name}, "
        return (
            f"MultiClusterSimulator(N={self.spec.total_nodes}, C={self.spec.num_clusters}, "
            f"{detail}{self.message.describe()}, {self.pattern.describe()})"
        )


class _RunState:
    """Everything belonging to one simulation run (one environment)."""

    def __init__(
        self, simulator: MultiClusterSimulator, lambda_g: float, config: SimulationConfig
    ) -> None:
        self.simulator = simulator
        self.lambda_g = lambda_g
        self.config = config
        self.env = Environment()
        self.streams = RandomStreams(config.seed, pooled=True)
        self.arrivals = simulator.arrivals_factory(lambda_g)
        core = simulator.core
        self.channels = FlatChannels(self.env, core.total_slots)
        self.kernel: Optional[TransferKernel] = (
            TransferKernel(
                self.env,
                self.channels,
                simulator._header_times,
                on_delivered=self._on_delivered,
            )
            if simulator.kernel == "dispatch"
            else None
        )
        #: which slots appeared on any built journey, and in which order per
        #: pool — mirrors the lazy-creation order of the object path's
        #: ChannelPool dicts so utilisation aggregation sums identically
        self._touched = bytearray(core.total_slots)
        self._pool_touch_order: List[List[int]] = [[] for _ in range(core.num_pools)]
        self.collector = StatisticsCollector(num_clusters=core.spec.num_clusters)
        self.generated = 0
        self.delivered_measured = 0
        self.done = self.env.event()
        self.timed_out = False
        self.events_processed = 0

    # ------------------------------------------------------------- execution
    def execute(self) -> None:
        for cluster_index, node in self.simulator.system.nodes():
            self.env.process(self._source_process(cluster_index, node.index))
        guard = self.env.timeout(self.config.max_time)
        # The event loop allocates heavily (queue entries, messages) but its
        # hot path creates no cyclic garbage — everything dies by refcount,
        # and the slab-recycled kernel records never die at all.  Cyclic GC
        # passes during the loop would rescan the (large, immortal) compiled
        # route tables over and over, costing up to ~40% of a run on
        # 1000-node systems, so collection is suspended for the duration and
        # any stragglers are picked up when the caller's GC resumes.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.env.run(until=self.done | guard)
        finally:
            if gc_was_enabled:
                gc.enable()
        if not self.done.triggered:
            self.timed_out = True
        self.events_processed = self.env.events_processed

    # ----------------------------------------------------------- utilisation
    def channel_utilisation(self) -> Dict[str, tuple]:
        """Per-network (mean, max) channel utilisation over the whole run.

        ICN1 and ECN1 pools are aggregated over clusters (the max picks out
        the busiest cluster's busiest channel); the concentrator/dispatcher
        buffers are reported as their own "network" because they are the
        physical bottleneck of the Table 1 organisations.
        """
        elapsed = self.env.now
        if elapsed <= 0:
            return {}
        core = self.simulator.core
        busy = self.channels.busy_time
        num_clusters = core.spec.num_clusters
        labels = core.utilisation_labels
        report: Dict[str, tuple] = {}
        for label, start in ((labels[0], 0), (labels[1], num_clusters)):
            values = []
            for pool in range(start, start + num_clusters):
                order = self._pool_touch_order[pool]
                if not order:
                    continue
                fractions = [min(busy[slot] / elapsed, 1.0) for slot in order]
                values.append((sum(fractions) / len(fractions), max(fractions)))
            if values:
                report[label] = (
                    sum(mean for mean, _ in values) / len(values),
                    max(peak for _, peak in values),
                )
        icn2_order = self._pool_touch_order[2 * num_clusters]
        if icn2_order:
            fractions = [min(busy[slot] / elapsed, 1.0) for slot in icn2_order]
            report[labels[2]] = (sum(fractions) / len(fractions), max(fractions))
        grants = self.channels.total_grants
        relay_fractions = [
            min(busy[slot] / elapsed, 1.0)
            for slot in (
                *range(core.concentrator_base, core.concentrator_base + num_clusters),
                *range(core.dispatcher_base, core.dispatcher_base + num_clusters),
            )
            if grants[slot]
        ]
        if relay_fractions:
            report[labels[3]] = (
                sum(relay_fractions) / len(relay_fractions),
                max(relay_fractions),
            )
        return report

    # ------------------------------------------------------------- processes
    def _source_process(self, cluster_index: int, node_index: int):
        """Poisson message generation at one node (assumption 1)."""
        rng = self.streams.get("arrivals", cluster_index, node_index)
        dest_rng = self.streams.get("destinations", cluster_index, node_index)
        peer_rng = self.streams.get("peers", cluster_index, node_index)
        simulator = self.simulator
        system = simulator.system
        pattern = simulator.pattern
        env = self.env
        config = self.config
        length_flits = simulator.message.length_flits
        warmup = config.warmup_messages
        measured_end = warmup + config.measured_messages
        kernel = self.kernel
        while True:
            yield env.timeout(self.arrivals.next_interarrival(rng))
            if self.generated >= config.total_messages:
                return
            index = self.generated
            self.generated += 1
            destination = pattern.sample_destination(
                dest_rng, system, cluster_index, node_index
            )
            message = Message(
                index=index,
                source_cluster=cluster_index,
                source_node=node_index,
                dest_cluster=destination.cluster,
                dest_node=destination.node,
                length_flits=length_flits,
                created_at=env.now,
                measured=warmup <= index < measured_end,
            )
            slots, tail_time = self._build_journey(message, peer_rng)
            if kernel is not None:
                kernel.start(message, slots, tail_time)
            else:
                env.process(
                    compiled_transfer(
                        env,
                        message,
                        slots,
                        self.channels,
                        simulator._header_times,
                        tail_time,
                        on_delivered=self._on_delivered,
                    )
                )

    def _touch(self, slots) -> None:
        """Record journey slots in pool-local first-touch order."""
        touched = self._touched
        pool_index = self.simulator.core.pool_index_list
        order = self._pool_touch_order
        for slot in slots:
            if not touched[slot]:
                touched[slot] = 1
                order[pool_index[slot]].append(slot)

    def _build_journey(self, message: Message, peer_rng):
        """The journey's global slot-id tuple and its body serialisation time."""
        simulator = self.simulator
        routes = simulator.routes
        source_cluster = message.source_cluster
        dest_cluster = message.dest_cluster
        tail_flits = message.length_flits - 1
        if source_cluster == dest_cluster:
            nodes = simulator._cluster_nodes[source_cluster]
            pair = message.source_node * nodes + message.dest_node
            slots = routes.intra[source_cluster][pair]
            self._touch(slots)
            slowest = (
                simulator._max_header
                if routes.intra_has_switch[source_cluster][pair]
                else simulator._t_cn
            )
            return slots, tail_flits * slowest
        source_nodes = simulator._cluster_nodes[source_cluster]
        dest_nodes = simulator._cluster_nodes[dest_cluster]
        exit_peer = draw_peer(peer_rng, source_nodes, message.source_node)
        entry_peer = draw_peer(peer_rng, dest_nodes, message.dest_node)
        ascent = routes.ascend[source_cluster][message.source_node * source_nodes + exit_peer]
        crossing = routes.icn2[source_cluster * len(routes.concentrator) + dest_cluster]
        descent = routes.descend[dest_cluster][entry_peer * dest_nodes + message.dest_node]
        self._touch(ascent)
        self._touch(crossing)
        self._touch(descent)
        slots = (
            ascent
            + (routes.concentrator[source_cluster],)
            + crossing
            + (routes.dispatcher[dest_cluster],)
            + descent
        )
        # Inter-cluster journeys always cross both channel classes (injection
        # plus relay/switch hops), so the slowest hop is the slower class.
        return slots, tail_flits * simulator._max_header

    def _on_delivered(self, message: Message) -> None:
        if not message.measured:
            return
        self.collector.record(message)
        self.delivered_measured += 1
        if self.delivered_measured >= self.config.measured_messages and not self.done.triggered:
            self.done.succeed()
