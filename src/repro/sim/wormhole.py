"""Wormhole message transfer: journey construction and the transfer process.

A wormhole message advances header-first: at every hop it must acquire the
hop's channel before the header can cross it, and with single-flit buffers
(assumption 4) every channel it has already crossed stays occupied by its
body flits until the tail has drained.  The simulator realises this as a
process that

1. acquires the hop resources strictly in route order (waiting in FIFO order
   whenever a channel is busy — this is where all contention arises),
2. spends the per-flit header time on each hop,
3. after the header reaches the destination, spends the serialisation time of
   the remaining ``M - 1`` flits at the slowest hop of the path,
4. releases everything.

Holding every acquired channel until the tail is delivered is slightly
conservative (a real worm frees its earliest channels a few flit-times
sooner); DESIGN.md discusses why this does not change the latency behaviour
the validation study measures.

Inter-cluster journeys chain three networks: the ascending leg in the source
cluster's ECN1, the ICN2 crossing between the two concentrators, and the
descending leg in the destination cluster's ECN1, with the concentrator and
dispatcher units appearing as single-server hops between the legs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.des import Environment, Resource
from repro.des.events import Timeout
from repro.routing.updown import UpDownRouter
from repro.sim.message import Message
from repro.sim.network import ChannelPool, FlatChannels
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class Hop:
    """One contention point of a journey and its per-flit header time."""

    resource: Resource
    header_time: float


def intra_cluster_hops(
    pool: ChannelPool,
    router: UpDownRouter,
    source_node: int,
    dest_node: int,
) -> List[Hop]:
    """The hop sequence of an intra-cluster (ICN1) journey."""
    route = router.route(source_node, dest_node)
    return [Hop(resource, time) for resource, time in pool.hops_for(route)]


def inter_cluster_hops(
    *,
    source_pool: ChannelPool,
    source_router: UpDownRouter,
    dest_pool: ChannelPool,
    dest_router: UpDownRouter,
    icn2_pool: ChannelPool,
    icn2_router: UpDownRouter,
    concentrator: Resource,
    dispatcher: Resource,
    source_node: int,
    exit_peer: int,
    dest_node: int,
    entry_peer: int,
    source_concentrator_node: int,
    dest_concentrator_node: int,
    relay_time: float,
) -> List[Hop]:
    """The hop sequence of an inter-cluster (ECN1 + ICN2 + ECN1) journey.

    ``exit_peer`` and ``entry_peer`` are the uniformly drawn peers that fix
    where the message leaves the source ECN1 and enters the destination ECN1
    (the distributed-concentrator realisation described in DESIGN.md); they
    reproduce exactly the ``P_{j,n}`` leg-length distributions the analytical
    model assumes.
    """
    hops: List[Hop] = []
    ascent = source_router.ascending_leg(source_node, exit_peer)
    hops.extend(Hop(resource, time) for resource, time in source_pool.hops_for(ascent))
    hops.append(Hop(concentrator, relay_time))
    icn2_route = icn2_router.route(source_concentrator_node, dest_concentrator_node)
    hops.extend(Hop(resource, time) for resource, time in icn2_pool.hops_for(icn2_route))
    hops.append(Hop(dispatcher, relay_time))
    descent = dest_router.descending_leg(entry_peer, dest_node)
    hops.extend(Hop(resource, time) for resource, time in dest_pool.hops_for(descent))
    return hops


def draw_peer(rng: np.random.Generator, num_nodes: int, excluded: int) -> int:
    """A uniformly random node index different from ``excluded``."""
    if num_nodes < 2:
        raise ValidationError("drawing a peer needs at least two nodes")
    draw = int(rng.integers(0, num_nodes - 1))
    if draw >= excluded:
        draw += 1
    return draw


def wormhole_transfer(
    env: Environment,
    message: Message,
    hops: Sequence[Hop],
    *,
    on_delivered: Callable[[Message], None] | None = None,
):
    """The DES process moving one message along its hops (generator).

    The first hop is the injection channel, so the wait for it *is* the
    source-queue delay of the analytical model; ``message.mark_injected`` is
    called the moment that first channel is granted.
    """
    if not hops:
        raise ValidationError("a journey needs at least one hop")
    held = []
    try:
        for position, hop in enumerate(hops):
            request = hop.resource.request()
            yield request
            held.append((hop.resource, request))
            if position == 0:
                message.mark_injected(env.now)
            yield env.timeout(hop.header_time)
        # Header is at the destination; the body pipelines behind it at the
        # pace of the slowest hop on the path.
        serialisation = (message.length_flits - 1) * max(hop.header_time for hop in hops)
        if serialisation > 0:
            yield env.timeout(serialisation)
        message.mark_delivered(env.now)
        if on_delivered is not None:
            on_delivered(message)
    finally:
        for resource, request in held:
            request.cancel()


def journey_hop_count(hops: Iterable[Hop]) -> int:
    """Number of contention points of a journey (diagnostic helper)."""
    return sum(1 for _ in hops)


def compiled_transfer(
    env: Environment,
    message: Message,
    slots: Tuple[int, ...],
    channels: FlatChannels,
    header_times: Sequence[float],
    tail_time: float,
    on_delivered: Callable[[Message], None] | None = None,
):
    """The flat-array twin of :func:`wormhole_transfer` (generator).

    ``slots`` is the precompiled global channel-id tuple of the journey
    (route tables of :mod:`repro.routing.compile`), ``header_times`` the
    per-slot flit time table of the compiled system and ``tail_time`` the
    precomputed body serialisation ``(M - 1) * max(header times)``.

    The yielded event sequence — one grant and one header timeout per hop,
    one tail timeout, releases in acquisition order on exit — is exactly the
    sequence :func:`wormhole_transfer` produces over ``Resource`` objects,
    so a compiled run replays an object-path run event for event.
    """
    if not slots:
        raise ValidationError("a journey needs at least one hop")
    held: List[Tuple[int, object]] = []
    acquire = channels.acquire
    hold = held.append
    try:
        first = True
        for slot in slots:
            grant = acquire(slot)
            yield grant
            hold((slot, grant))
            if first:
                # The wait for the first (injection) slot is the source-queue
                # delay of the analytical model.
                message.mark_injected(env.now)
                first = False
            yield Timeout(env, header_times[slot])
        if tail_time > 0.0:
            yield Timeout(env, tail_time)
        message.mark_delivered(env.now)
        if on_delivered is not None:
            on_delivered(message)
    finally:
        release = channels.release
        for slot, grant in held:
            release(slot, grant)
