"""The message objects tracked by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.utils.validation import ValidationError


class MessagePhase(str, Enum):
    """Where a message currently is in its life cycle."""

    QUEUED = "queued"          # generated, waiting for its injection channel
    IN_NETWORK = "in-network"  # header traveling / worm advancing
    DELIVERED = "delivered"    # tail flit reached the destination node


@dataclass(slots=True)
class Message:
    """One wormhole message and its timing record.

    Times are simulation timestamps; ``None`` until the event happens.
    ``measured`` marks messages inside the measurement window (not warm-up,
    not drain).  The dataclass is slotted: a paper-budget run allocates over
    a hundred thousand messages, and dropping the per-instance ``__dict__``
    keeps them cheap to create and collect.
    """

    index: int
    source_cluster: int
    source_node: int
    dest_cluster: int
    dest_node: int
    length_flits: int
    created_at: float
    measured: bool = True
    injected_at: Optional[float] = None
    delivered_at: Optional[float] = None
    phase: MessagePhase = field(default=MessagePhase.QUEUED)

    @property
    def is_external(self) -> bool:
        """True for inter-cluster messages (they cross ECN1 and ICN2)."""
        return self.source_cluster != self.dest_cluster

    @property
    def latency(self) -> float:
        """Total latency: generation to tail delivery (includes source queueing)."""
        if self.delivered_at is None:
            raise ValidationError(f"message {self.index} has not been delivered")
        return self.delivered_at - self.created_at

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for the injection channel (the source queue)."""
        if self.injected_at is None:
            raise ValidationError(f"message {self.index} has not been injected")
        return self.injected_at - self.created_at

    @property
    def network_latency(self) -> float:
        """Latency excluding the source queue (header injection to delivery)."""
        if self.delivered_at is None or self.injected_at is None:
            raise ValidationError(f"message {self.index} has not been delivered")
        return self.delivered_at - self.injected_at

    def mark_injected(self, now: float) -> None:
        self.injected_at = now
        self.phase = MessagePhase.IN_NETWORK

    def mark_delivered(self, now: float) -> None:
        self.delivered_at = now
        self.phase = MessagePhase.DELIVERED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.index}, c{self.source_cluster}n{self.source_node} -> "
            f"c{self.dest_cluster}n{self.dest_node}, {self.phase.value})"
        )
