"""Flit-level wormhole simulator of the multi-cluster system (Section 4).

The paper validates its analytical model against a discrete-event simulator
that "uses the same assumptions as the analysis": Poisson sources, uniform
destinations, wormhole flow control with single-flit buffers, infinite
source queues, deterministic NCA routing, 100 000 measured messages with a
10 000-message warm-up and a drain phase.  This subpackage is that simulator,
built on the :mod:`repro.des` kernel:

* every directed channel of every ICN1/ECN1/ICN2 is a capacity-1 resource;
* a message is a process that acquires the channels of its deterministic
  route hop by hop (wormhole: everything it holds stays held until its tail
  is delivered), with the concentrator and dispatcher appearing as additional
  single-server hops on inter-cluster journeys;
* warm-up, measurement and drain phases follow the paper's methodology, and
  latency statistics come with confidence intervals.

See DESIGN.md for the two documented deviations from a fully physical
simulator (channel-release granularity and the distributed-concentrator
realisation of the ECN1 exit points).
"""

from repro.sim.config import SimulationConfig
from repro.sim.kernel import TransferKernel
from repro.sim.message import Message, MessagePhase
from repro.sim.network import ChannelGrant, ChannelPool, FlatChannels
from repro.sim.statistics import ClusterStatistics, SimulationResult, StatisticsCollector
from repro.sim.simulator import MultiClusterSimulator

__all__ = [
    "SimulationConfig",
    "TransferKernel",
    "Message",
    "MessagePhase",
    "ChannelGrant",
    "ChannelPool",
    "FlatChannels",
    "ClusterStatistics",
    "SimulationResult",
    "StatisticsCollector",
    "MultiClusterSimulator",
]
