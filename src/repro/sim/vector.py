"""The vectorized event core: cohort-batched execution on flat state.

This is the third realisation of the message life cycle
(``kernel="vectorized"``), and the first that abandons the generic DES
environment: the run executes on a specialised integer-dispatch loop over a
:class:`~repro.des.ring.FifoRing`, with every piece of per-message and
per-channel state held in flat parallel arrays.  Three layers make it fast:

* **scheduler** — the ring pops whole same-timestamp *runs* at once and
  carries no per-event id: every push here uses one priority, and eids are
  allocated in push order, so the ring's FIFO-by-position order *is* the
  heap's ``(time, priority, eid)`` order.  Events scheduled at the
  *current* time never enter it — they go through a plain FIFO ``deque``
  (append order is eid order) — and the delay-0 grant hop is elided
  entirely on schedules where that is provably order-safe (see
  :meth:`VectorizedRunState._grant_elision_safe`), which leaves the deque
  to the stop markers.
* **arrivals** — per-source :class:`~repro.workloads.batch.SourceBatcher`
  chunks replace one generator resume plus three scalar RNG round trips per
  message with pre-drawn arrays (bit-identical by the property pinned in
  ``tests/workloads/test_batch.py``).
* **dispatch** — equal-time header cohorts large enough to matter are
  processed with vectorized channel array ops (gathered hold-state, sorted
  first-acquirer resolution), falling back to scalar dispatch for
  intra-batch conflicts on the same channel and for the small cohorts that
  dominate Poisson traffic, where NumPy call overhead would exceed the
  loop it replaces.

**Event-sequence bit-identity.**  The FSM path is the executable
specification; this kernel replays its schedule exactly, by construction:

* every ``Environment.schedule`` call of the FSM path happens here at the
  same simulation time, with the same priority, at the same relative
  position — future events keep ring order because pushes occur in FSM
  push order, and same-time events keep eid order because the FIFO queue
  preserves append order;
* the FSM-only bookkeeping events (URGENT ``Initialize`` kick-offs,
  process-completion events) do no work in the transfer, so dropping them
  renumbers event ids without reordering any two surviving events — the
  same argument that justified the dispatch kernel;
* ``run(until=done | guard)`` stop semantics are replayed with FIFO
  markers: ``done.succeed()`` schedules the done event at NORMAL priority,
  whose processing schedules the condition, whose processing stops the run
  — two hops, so events scheduled in between still fire.  ``_MARK_DONE``
  followed by ``_MARK_STOP`` reproduce the cutoff event for event; the
  guard timeout has one hop and appends ``_MARK_STOP`` directly.
* statistics arithmetic is shared:
  :meth:`~repro.sim.statistics.StatisticsCollector.record_delivery`
  performs the identical float operations in the identical order as the
  message-object path, and channel accounting accumulates ``busy_time`` on
  release exactly like :class:`~repro.sim.network.FlatChannels`.

The golden-seed regression pins all four scenarios to the fixture under
this kernel, and ``tests/sim/test_vectorized.py`` pins it against the FSM
path directly.
"""

from __future__ import annotations

import gc
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.des.calendar import sized_width
from repro.des.exceptions import SimulationError
from repro.des.ring import FifoRing
from repro.sim.config import SimulationConfig
from repro.sim.statistics import StatisticsCollector
from repro.utils.rng import RandomStreams
from repro.workloads.batch import SourceBatcher, initial_chunk
from repro.workloads.poisson import DeterministicArrivals, PoissonArrivals

__all__ = ["VectorizedRunState"]

#: Payload encoding: ``(ident << 3) | kind`` packs an event into one int.
_EV_ARRIVAL = 0   # ident = source id
_EV_HEADER = 1    # ident = transfer row
_EV_TAIL = 2      # ident = transfer row
_EV_GUARD = 3     # ident unused
_EV_GRANT = 4     # ident = transfer row (FIFO queue only, never the ring)

#: FIFO markers replaying the done -> condition -> stop cascade.
_MARK_DONE = -1
_MARK_STOP = -2

#: Cohort size from which an all-header cohort takes the vectorized channel
#: path.  Below it, building the index arrays costs more than the scalar
#: loop; above it (lockstep phases, deterministic arrivals) the gathers and
#: the sorted first-acquirer resolution run at C speed.
VECTOR_BATCH_MIN = 64

#: Safety margin over the clock's unit-in-the-last-place used by the grant
#: elision precondition: two deterministic schedule deltas are "separated"
#: when they differ by more than ``max_time * 2**-50`` (four ulps of the
#: largest representable clock value, so no reachable ``time + delta`` pair
#: can round together).
_ULP_MARGIN = 2.0 ** -50


class VectorizedRunState:
    """One simulation run on the vectorized core (drop-in for ``_RunState``)."""

    def __init__(
        self, simulator, lambda_g: float, config: SimulationConfig
    ) -> None:
        self.simulator = simulator
        self.lambda_g = lambda_g
        self.config = config
        self.streams = RandomStreams(config.seed, pooled=True)
        self.arrivals = simulator.arrivals_factory(lambda_g)
        core = simulator.core
        self.collector = StatisticsCollector(num_clusters=core.spec.num_clusters)
        self.timed_out = False
        self.now = 0.0
        self.events_processed = 0
        self._done_fired = False
        # -- flat channel state (the FlatChannels protocol on flat lists) --
        # Plain lists, not ndarrays: the scalar loop reads and writes one
        # element at a time, where a list indexes in ~40ns but a numpy
        # scalar access boxes through __getitem__/__setitem__ at several
        # times that.  Arithmetic on the Python floats is the same IEEE
        # double arithmetic, so accounting stays bit-identical; the batch
        # path gathers into arrays with ``np.fromiter`` where it wins.
        num_slots = core.total_slots
        self._holder: List[int] = [-1] * num_slots
        self._granted_at: List[float] = [0.0] * num_slots
        self._busy_time: List[float] = [0.0] * num_slots
        self._total_grants: List[int] = [0] * num_slots
        self._queues: List[Optional[deque]] = [None] * num_slots
        # -- transfer rows (parallel arrays, recycled through a free list) --
        self._row_slots: List[Tuple[int, ...]] = []
        self._row_pos: List[int] = []
        self._row_tail: List[float] = []
        self._row_created: List[float] = []
        self._row_injected: List[float] = []
        self._row_measured: List[bool] = []
        self._row_cluster: List[int] = []
        self._row_external: List[bool] = []
        self._free_rows: List[int] = []
        # -- journey-touch bookkeeping (mirrors _RunState._touch) ----------
        self._touched = bytearray(num_slots)
        self._pool_touch_order: List[List[int]] = [[] for _ in range(core.num_pools)]
        # -- per-source batched workload ----------------------------------
        system = simulator.system
        cluster_nodes = np.asarray(simulator._cluster_nodes, dtype=np.int64)
        pattern = simulator.pattern
        streams_get = self.streams.get
        chunk = initial_chunk(config.total_messages, system.total_nodes)
        self._source_cluster: List[int] = []
        self._source_node: List[int] = []
        self._batchers: List[SourceBatcher] = []
        for cluster_index, node in system.nodes():
            node_index = node.index
            self._source_cluster.append(cluster_index)
            self._source_node.append(node_index)
            batcher = SourceBatcher(
                system,
                pattern,
                self.arrivals,
                streams_get("arrivals", cluster_index, node_index),
                streams_get("destinations", cluster_index, node_index),
                streams_get("peers", cluster_index, node_index),
                cluster_index,
                node_index,
                cluster_nodes,
                chunk,
            )
            # Pre-draw the source's expected share here, outside the event
            # loop: the loop then refills only for sources that run ahead
            # of the mean.
            batcher.materialize()
            if chunk > 1:
                batcher.refill()
            self._batchers.append(batcher)
        self._cluster_nodes_list = simulator._cluster_nodes
        self._elide_grants = self._grant_elision_safe()

    def _grant_elision_safe(self) -> bool:
        """Whether the delay-0 grant hop may be collapsed into its acquire.

        A channel grant's whole effect is to stamp the injection time and
        schedule the header one header-time ahead; everything the FSM
        mutates at grant *scheduling* (holder, grant counters) this kernel
        already mutates synchronously at the acquire.  Eliding the hop
        therefore only moves the header's event id earlier — from "after
        the grant pops" to "at the acquire" — which can flip pop order
        solely against an event pushed in that window landing at the *same*
        ``(time, priority)`` key.  All such pushes target ``time + delta``
        for a delta in a small deterministic set (header times, tail
        times, a fixed inter-arrival gap), so it suffices that those deltas
        are pairwise separated by more than four ulps of the largest
        reachable clock: no two ``time + delta`` values can then round to
        equality.  Poisson gaps are continuous draws — a half-ulp
        coincidence with a header delta has the same measure-zero status as
        the documented zero-gap caveat, and the golden fixtures pin the
        actual seeds.  Unknown arrival processes disable elision outright,
        as do zero header times (whose headers would re-enter the same-time
        FIFO *behind* later appends, unlike the grant they replace).
        """
        headers = sorted({float(h) for h in self.simulator._header_times})
        if not headers or headers[0] <= 0.0:
            return False
        # Exact types only: a subclass may override the gap distribution,
        # which would void the separation argument below.
        arrivals = self.arrivals
        if type(arrivals) is DeterministicArrivals:
            extra = (1.0 / arrivals.rate,)
        elif type(arrivals) is PoissonArrivals:
            extra = ()
        else:
            return False
        tail_flits = self.simulator.message.length_flits - 1
        deltas = sorted({*headers, *(tail_flits * h for h in headers), *extra})
        separation = min(
            (b - a for a, b in zip(deltas, deltas[1:])), default=float("inf")
        )
        return separation > self.config.max_time * _ULP_MARGIN

    # ------------------------------------------------------------- execution
    def execute(self) -> None:
        """Run the event loop to the stop marker (same GC policy as the FSM)."""
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._loop()
        finally:
            if gc_was_enabled:
                gc.enable()
        self.timed_out = not self._done_fired

    def _loop(self) -> None:
        # Local aliases: this loop processes hundreds of thousands of
        # events and every global/attribute lookup in it is measurable.
        simulator = self.simulator
        config = self.config
        routes = simulator.routes
        core = simulator.core
        # Plain floats: one scalar indexing of an ndarray costs more than
        # the whole list lookup, and the boxed np.float64 would propagate
        # into every scheduled time.
        header_times = [float(h) for h in simulator._header_times]
        cluster_nodes = self._cluster_nodes_list
        num_clusters = core.spec.num_clusters
        concentrator = routes.concentrator
        dispatcher = routes.dispatcher
        routes_intra = routes.intra
        intra_has_switch = routes.intra_has_switch
        routes_ascend = routes.ascend
        routes_icn2 = routes.icn2
        routes_descend = routes.descend
        tail_flits = simulator.message.length_flits - 1
        t_cn = simulator._t_cn
        max_header = simulator._max_header
        intra_headers = (t_cn, max_header)

        total_messages = config.total_messages
        warmup = config.warmup_messages
        measured_end = warmup + config.measured_messages
        measured_target = config.measured_messages

        holder = self._holder
        granted_at = self._granted_at
        busy_time = self._busy_time
        total_grants = self._total_grants
        queues = self._queues
        row_slots = self._row_slots
        row_pos = self._row_pos
        row_tail = self._row_tail
        row_created = self._row_created
        row_injected = self._row_injected
        row_measured = self._row_measured
        row_cluster = self._row_cluster
        row_external = self._row_external
        free_rows = self._free_rows
        batchers = self._batchers
        source_cluster = self._source_cluster
        source_node = self._source_node
        touched = self._touched
        pool_index = core.pool_index_list
        pool_order = self._pool_touch_order
        record_delivery = self.collector.record_delivery

        # -- initial schedule -------------------------------------------
        # The FSM path schedules its guard timeout before any source draws
        # a gap, so the guard precedes every arrival; the ring must see the
        # same push order for the FIFO tie at max_time.
        first_times = [batcher.times[0] for batcher in batchers]
        num_sources = len(batchers)
        ring = FifoRing(
            width=sized_width(min(first_times), max(first_times), num_sources)
        )
        ring.push(config.max_time, _EV_GUARD)
        ring.push_batch(
            first_times,
            [(source << 3) | _EV_ARRIVAL for source in range(num_sources)],
        )

        now_queue: deque = deque()
        nq_append = now_queue.append
        nq_popleft = now_queue.popleft
        ring_push = ring.push
        pop_run = ring.pop_run
        # Collapse the delay-0 grant hop into its acquire when provably
        # order-safe (see _grant_elision_safe) — grants are nearly half of
        # all events, and elision leaves the FIFO to the stop markers.
        elide = self._elide_grants

        generated = 0
        delivered = 0
        events = 0
        time = 0.0

        def start_transfer(created_at, measured, external, cluster, slots, tail):
            if free_rows:
                row = free_rows.pop()
                row_slots[row] = slots
                row_pos[row] = 0
                row_tail[row] = tail
                row_created[row] = created_at
                row_measured[row] = measured
                row_cluster[row] = cluster
                row_external[row] = external
            else:
                row = len(row_slots)
                row_slots.append(slots)
                row_pos.append(0)
                row_tail.append(tail)
                row_created.append(created_at)
                row_injected.append(0.0)
                row_measured.append(measured)
                row_cluster.append(cluster)
                row_external.append(external)
            return row

        halted = False
        while not halted:
            run = pop_run()
            if run is None:
                # Unreachable while the guard is pending: mirrors the
                # environment's complaint when `until` never triggers.
                raise SimulationError(
                    "vectorized run drained its event queue before stopping"
                )
            # `head[start:end]` stays valid while we push: pop_run advanced
            # the consume cursor, so insorts land at or past `end`.
            time, head, start, end = run
            events += end - start

            if end - start >= VECTOR_BATCH_MIN and all(
                head[index][1] & 7 == _EV_HEADER for index in range(start, end)
            ):
                # ---------------- vectorized header cohort ----------------
                # Split the cohort into runs of pure channel acquisitions
                # broken by deliveries: a delivery releases channels, which
                # can hand a slot to a *later* acquirer at the same time, so
                # hold-state gathered across a delivery would be stale.
                pending: List[Tuple[int, int]] = []

                def flush_acquires():
                    count = len(pending)
                    slots_arr = np.fromiter(
                        (slot for _, slot in pending), np.int64, count
                    )
                    # First acquirer per slot wins (stable sort keeps eid
                    # order within a slot); later ones fall back to the
                    # scalar queueing path below.
                    order = np.argsort(slots_arr, kind="stable")
                    ranked = slots_arr[order]
                    duplicate = np.empty(count, dtype=bool)
                    duplicate[0] = False
                    duplicate[1:] = ranked[1:] == ranked[:-1]
                    first = np.empty(count, dtype=bool)
                    first[order] = ~duplicate
                    holder_arr = np.fromiter(
                        (holder[slot] for _, slot in pending), np.int64, count
                    )
                    wins = (holder_arr < 0) & first
                    for index, win in enumerate(wins.tolist()):
                        row, slot = pending[index]
                        if win:
                            holder[slot] = row
                            granted_at[slot] = time
                            total_grants[slot] += 1
                            if elide:
                                # Pending rows advanced to position >= 1,
                                # so no injection stamp here.
                                ring_push(
                                    time + header_times[slot], (row << 3) | _EV_HEADER
                                )
                            else:
                                nq_append((row << 3) | _EV_GRANT)
                        else:
                            queue = queues[slot]
                            if queue is None:
                                queue = queues[slot] = deque()
                            queue.append(row)
                    pending.clear()

                for index in range(start, end):
                    row = head[index][1] >> 3
                    position = row_pos[row] + 1
                    slots = row_slots[row]
                    if position < len(slots):
                        row_pos[row] = position
                        pending.append((row, slots[position]))
                        continue
                    if row_tail[row] > 0.0:
                        if pending:
                            flush_acquires()
                        tail_at = time + row_tail[row]
                        if tail_at > time:
                            ring_push(tail_at, (row << 3) | _EV_TAIL)
                        else:
                            nq_append((row << 3) | _EV_TAIL)
                        continue
                    # Delivered with no body: finish right here — releases
                    # change hold state, so drain the acquisitions first.
                    if pending:
                        flush_acquires()
                    slots = row_slots[row]
                    if row_measured[row]:
                        record_delivery(
                            row_cluster[row],
                            row_external[row],
                            row_created[row],
                            row_injected[row],
                            time,
                        )
                        delivered += 1
                        if delivered >= measured_target and not self._done_fired:
                            self._done_fired = True
                            nq_append(_MARK_DONE)
                    for slot in slots:
                        busy_time[slot] += time - granted_at[slot]
                        queue = queues[slot]
                        if queue:
                            successor = queue.popleft()
                            holder[slot] = successor
                            granted_at[slot] = time
                            total_grants[slot] += 1
                            if elide:
                                if row_pos[successor] == 0:
                                    row_injected[successor] = time
                                ring_push(
                                    time + header_times[slot], (successor << 3) | _EV_HEADER
                                )
                            else:
                                nq_append((successor << 3) | _EV_GRANT)
                        else:
                            holder[slot] = -1
                    row_slots[row] = ()
                    free_rows.append(row)
                if pending:
                    flush_acquires()
                start = end

            for index in range(start, end):
                payload = head[index][1]
                kind = payload & 7
                ident = payload >> 3
                if kind == _EV_HEADER:
                    position = row_pos[ident] + 1
                    slots = row_slots[ident]
                    if position < len(slots):
                        row_pos[ident] = position
                        slot = slots[position]
                        if holder[slot] < 0:
                            holder[slot] = ident
                            granted_at[slot] = time
                            total_grants[slot] += 1
                            if elide:
                                # Headers advance to position >= 1 before
                                # acquiring, so no injection stamp.
                                ring_push(
                                    time + header_times[slot], (ident << 3) | _EV_HEADER
                                )
                            else:
                                nq_append((ident << 3) | _EV_GRANT)
                        else:
                            queue = queues[slot]
                            if queue is None:
                                queue = queues[slot] = deque()
                            queue.append(ident)
                        continue
                    if row_tail[ident] > 0.0:
                        tail_at = time + row_tail[ident]
                        if tail_at > time:
                            ring_push(tail_at, (ident << 3) | _EV_TAIL)
                        else:
                            nq_append((ident << 3) | _EV_TAIL)
                        continue
                    kind = _EV_TAIL  # delivered with no body: fall through
                if kind == _EV_TAIL:
                    slots = row_slots[ident]
                    if row_measured[ident]:
                        record_delivery(
                            row_cluster[ident],
                            row_external[ident],
                            row_created[ident],
                            row_injected[ident],
                            time,
                        )
                        delivered += 1
                        if delivered >= measured_target and not self._done_fired:
                            self._done_fired = True
                            nq_append(_MARK_DONE)
                    for slot in slots:
                        busy_time[slot] += time - granted_at[slot]
                        queue = queues[slot]
                        if queue:
                            successor = queue.popleft()
                            holder[slot] = successor
                            granted_at[slot] = time
                            total_grants[slot] += 1
                            if elide:
                                if row_pos[successor] == 0:
                                    row_injected[successor] = time
                                ring_push(
                                    time + header_times[slot], (successor << 3) | _EV_HEADER
                                )
                            else:
                                nq_append((successor << 3) | _EV_GRANT)
                        else:
                            holder[slot] = -1
                    row_slots[ident] = ()
                    free_rows.append(ident)
                elif kind == _EV_ARRIVAL:
                    if generated >= total_messages:
                        continue  # the source retires without drawing
                    index = generated
                    generated = index + 1
                    batcher = batchers[ident]
                    cursor = batcher.cursor
                    dest_cluster = batcher.dest_clusters[cursor]
                    dest_node = batcher.dest_nodes[cursor]
                    cluster = source_cluster[ident]
                    node = source_node[ident]
                    if dest_cluster == cluster:
                        pair = node * cluster_nodes[cluster] + dest_node
                        slots = routes_intra[cluster][pair]
                        tail = tail_flits * intra_headers[
                            intra_has_switch[cluster][pair]
                        ]
                        external = False
                        for slot in slots:
                            if not touched[slot]:
                                touched[slot] = 1
                                pool_order[pool_index[slot]].append(slot)
                    else:
                        source_nodes = cluster_nodes[cluster]
                        dest_nodes = cluster_nodes[dest_cluster]
                        ascent = routes_ascend[cluster][
                            node * source_nodes + batcher.exit_peers[cursor]
                        ]
                        crossing = routes_icn2[
                            cluster * num_clusters + dest_cluster
                        ]
                        descent = routes_descend[dest_cluster][
                            batcher.entry_peers[cursor] * dest_nodes + dest_node
                        ]
                        for group in (ascent, crossing, descent):
                            for slot in group:
                                if not touched[slot]:
                                    touched[slot] = 1
                                    pool_order[pool_index[slot]].append(slot)
                        slots = (
                            ascent
                            + (concentrator[cluster],)
                            + crossing
                            + (dispatcher[dest_cluster],)
                            + descent
                        )
                        tail = tail_flits * max_header
                        external = True
                    row = start_transfer(
                        time,
                        warmup <= index < measured_end,
                        external,
                        cluster,
                        slots,
                        tail,
                    )
                    slot = slots[0]
                    if holder[slot] < 0:
                        holder[slot] = row
                        granted_at[slot] = time
                        total_grants[slot] += 1
                        if elide:
                            # A fresh transfer acquires at position 0: the
                            # elided grant's injection stamp lands here.
                            row_injected[row] = time
                            ring_push(
                                time + header_times[slot], (row << 3) | _EV_HEADER
                            )
                        else:
                            nq_append((row << 3) | _EV_GRANT)
                    else:
                        queue = queues[slot]
                        if queue is None:
                            queue = queues[slot] = deque()
                        queue.append(row)
                    cursor += 1
                    if cursor >= batcher.limit:
                        batcher.refill()
                    batcher.cursor = cursor
                    ring_push(batcher.times[cursor], (ident << 3) | _EV_ARRIVAL)
                else:  # _EV_GUARD — one hop to the stop, like its condition
                    nq_append(_MARK_STOP)

            # ------------- same-time FIFO (eid order == append order) ------
            while now_queue:
                payload = nq_popleft()
                events += 1
                if payload < 0:
                    if payload == _MARK_DONE:
                        nq_append(_MARK_STOP)
                        continue
                    halted = True  # _MARK_STOP: nothing after e2 may run
                    break
                kind = payload & 7
                ident = payload >> 3
                if kind == _EV_GRANT:
                    position = row_pos[ident]
                    if position == 0:
                        # The wait for the injection slot is the source-queue
                        # delay of the analytical model.
                        row_injected[ident] = time
                    slot = row_slots[ident][position]
                    header_at = time + header_times[slot]
                    if header_at > time:
                        ring_push(header_at, (ident << 3) | _EV_HEADER)
                    else:
                        nq_append((ident << 3) | _EV_HEADER)
                elif kind == _EV_HEADER:
                    position = row_pos[ident] + 1
                    slots = row_slots[ident]
                    if position < len(slots):
                        row_pos[ident] = position
                        slot = slots[position]
                        if holder[slot] < 0:
                            holder[slot] = ident
                            granted_at[slot] = time
                            total_grants[slot] += 1
                            if elide:
                                # Headers advance to position >= 1 before
                                # acquiring, so no injection stamp.
                                ring_push(
                                    time + header_times[slot], (ident << 3) | _EV_HEADER
                                )
                            else:
                                nq_append((ident << 3) | _EV_GRANT)
                        else:
                            queue = queues[slot]
                            if queue is None:
                                queue = queues[slot] = deque()
                            queue.append(ident)
                        continue
                    if row_tail[ident] > 0.0:
                        tail_at = time + row_tail[ident]
                        if tail_at > time:
                            ring_push(tail_at, (ident << 3) | _EV_TAIL)
                        else:
                            nq_append((ident << 3) | _EV_TAIL)
                        continue
                    kind = _EV_TAIL  # zero-body delivery
                if kind == _EV_TAIL:
                    slots = row_slots[ident]
                    if row_measured[ident]:
                        record_delivery(
                            row_cluster[ident],
                            row_external[ident],
                            row_created[ident],
                            row_injected[ident],
                            time,
                        )
                        delivered += 1
                        if delivered >= measured_target and not self._done_fired:
                            self._done_fired = True
                            nq_append(_MARK_DONE)
                    for slot in slots:
                        busy_time[slot] += time - granted_at[slot]
                        queue = queues[slot]
                        if queue:
                            successor = queue.popleft()
                            holder[slot] = successor
                            granted_at[slot] = time
                            total_grants[slot] += 1
                            if elide:
                                if row_pos[successor] == 0:
                                    row_injected[successor] = time
                                ring_push(
                                    time + header_times[slot], (successor << 3) | _EV_HEADER
                                )
                            else:
                                nq_append((successor << 3) | _EV_GRANT)
                        else:
                            holder[slot] = -1
                    row_slots[ident] = ()
                    free_rows.append(ident)

        self.now = time
        self.events_processed = events

    # ----------------------------------------------------------- utilisation
    def channel_utilisation(self) -> Dict[str, tuple]:
        """Identical aggregation to ``_RunState.channel_utilisation``.

        Same first-touch ordering, same float arithmetic (float64 array
        cells follow IEEE double exactly like Python floats); values are
        converted to built-in floats so results serialise identically.
        """
        elapsed = self.now
        if elapsed <= 0:
            return {}
        core = self.simulator.core
        busy = self._busy_time
        num_clusters = core.spec.num_clusters
        labels = core.utilisation_labels
        report: Dict[str, tuple] = {}
        for label, start in ((labels[0], 0), (labels[1], num_clusters)):
            values = []
            for pool in range(start, start + num_clusters):
                order = self._pool_touch_order[pool]
                if not order:
                    continue
                fractions = [min(busy[slot] / elapsed, 1.0) for slot in order]
                values.append((sum(fractions) / len(fractions), max(fractions)))
            if values:
                report[label] = (
                    float(sum(mean for mean, _ in values) / len(values)),
                    float(max(peak for _, peak in values)),
                )
        icn2_order = self._pool_touch_order[2 * num_clusters]
        if icn2_order:
            fractions = [min(busy[slot] / elapsed, 1.0) for slot in icn2_order]
            report[labels[2]] = (
                float(sum(fractions) / len(fractions)),
                float(max(fractions)),
            )
        grants = self._total_grants
        relay_fractions = [
            min(busy[slot] / elapsed, 1.0)
            for slot in (
                *range(core.concentrator_base, core.concentrator_base + num_clusters),
                *range(core.dispatcher_base, core.dispatcher_base + num_clusters),
            )
            if grants[slot]
        ]
        if relay_fractions:
            report[labels[3]] = (
                float(sum(relay_fractions) / len(relay_fractions)),
                float(max(relay_fractions)),
            )
        return report
