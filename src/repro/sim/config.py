"""Simulation run configuration (the paper's Section 4 methodology)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_non_negative, check_positive_int


@dataclass(frozen=True)
class SimulationConfig:
    """How long to simulate and how to gather statistics.

    The paper gathers statistics over 100 000 messages, discards the first
    10 000 (warm-up) and generates 10 000 more whose delivery it does not
    wait to record (drain).  Those are the ``paper()`` defaults; the regular
    defaults are one tenth of that so the example scripts and benchmarks run
    in seconds on a laptop while preserving the methodology.

    Attributes
    ----------
    measured_messages:
        Number of delivered messages whose latency enters the statistics.
    warmup_messages:
        Number of initial messages excluded from the statistics.
    drain_messages:
        Number of messages generated after the measurement window so the
        network stays loaded while the last measured messages drain.
    seed:
        Root seed of all random streams (arrivals, destinations, routing
        peers); the same seed reproduces the same run bit for bit.
    max_time:
        Safety cap on simulated time; a run that exceeds it is reported as
        saturated rather than looping forever.
    """

    measured_messages: int = 10_000
    warmup_messages: int = 1_000
    drain_messages: int = 1_000
    seed: int | None = 0
    max_time: float = 5_000_000.0

    def __post_init__(self) -> None:
        check_positive_int(self.measured_messages, "measured_messages")
        check_non_negative(self.warmup_messages, "warmup_messages")
        check_non_negative(self.drain_messages, "drain_messages")
        check_non_negative(self.max_time, "max_time")

    @classmethod
    def paper(cls, seed: int | None = 0) -> "SimulationConfig":
        """The exact message budget of the paper's validation study."""
        return cls(
            measured_messages=100_000,
            warmup_messages=10_000,
            drain_messages=10_000,
            seed=seed,
        )

    @classmethod
    def quick(cls, seed: int | None = 0) -> "SimulationConfig":
        """A small budget for unit tests and smoke runs."""
        return cls(
            measured_messages=1_500,
            warmup_messages=150,
            drain_messages=150,
            seed=seed,
        )

    @property
    def total_messages(self) -> int:
        """Total number of messages generated over the run."""
        return self.measured_messages + self.warmup_messages + self.drain_messages

    def with_seed(self, seed: int | None) -> "SimulationConfig":
        """The same budget with a different random seed (for replications)."""
        return replace(self, seed=seed)

    def scaled(self, factor: float) -> "SimulationConfig":
        """A configuration with all message counts scaled by ``factor``."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return replace(
            self,
            measured_messages=max(1, int(self.measured_messages * factor)),
            warmup_messages=int(self.warmup_messages * factor),
            drain_messages=int(self.drain_messages * factor),
        )
