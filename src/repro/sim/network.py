"""Channel state of the simulated networks.

Every directed channel of every network is a capacity-1 FIFO contention
point (assumption 4: input-buffered switches with a single flit buffer per
channel).  Two equivalent representations live here:

* :class:`ChannelPool` — the object-graph reference implementation: lazily
  created :class:`~repro.des.Resource` objects keyed by :class:`Channel`.
  It remains the readable specification of the channel semantics and the
  backend of the journey-construction helpers in :mod:`repro.sim.wormhole`.
* :class:`FlatChannels` — the compiled hot path: one flat array of held /
  queued / accounting state addressed by the dense integer channel ids of
  :mod:`repro.topology.compile`.  Acquisition and release follow exactly
  the ``Resource`` FIFO protocol (grant immediately when free, FIFO wake on
  release, busy time accumulated on release only) so a compiled run is
  event-for-event identical to an object-path run — it just stops paying a
  dataclass hash and a ``Resource``/``Request`` allocation per hop.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.des import Environment, Resource
from repro.des.events import Event
from repro.topology.fat_tree import Channel, ChannelKind
from repro.utils.units import LinkTiming


class ChannelPool:
    """Lazily created capacity-1 resources for the channels of one network."""

    def __init__(self, env: Environment, name: str, timing: LinkTiming) -> None:
        self.env = env
        self.name = name
        self.timing = timing
        self._resources: Dict[Channel, Resource] = {}
        #: total number of channel acquisitions (diagnostics)
        self.total_acquisitions = 0

    def resource(self, channel: Channel) -> Resource:
        """The resource guarding ``channel`` (created on first use)."""
        if channel not in self._resources:
            self._resources[channel] = Resource(
                self.env, capacity=1, name=f"{self.name}:{channel.kind.value}"
            )
        return self._resources[channel]

    def header_time(self, channel: Channel) -> float:
        """Per-flit transfer time of the channel (Eq. 14 vs 15)."""
        if channel.kind in (ChannelKind.INJECTION, ChannelKind.EJECTION):
            return self.timing.t_cn
        return self.timing.t_cs

    def hops_for(self, route) -> Iterator[Tuple[Resource, float]]:
        """(resource, header time) pairs for every channel of a route."""
        for channel in route:
            yield self.resource(channel), self.header_time(channel)

    # ------------------------------------------------------------ diagnostics
    @property
    def touched_channels(self) -> int:
        """Number of channels that have been used at least once."""
        return len(self._resources)

    def busy_channels(self) -> int:
        """Number of channels currently held by a message."""
        return sum(1 for resource in self._resources.values() if resource.count > 0)

    def queued_requests(self) -> int:
        """Number of requests currently waiting across all channels."""
        return sum(resource.queue_length for resource in self._resources.values())

    def utilisation(self, elapsed: float) -> Tuple[float, float]:
        """(mean, max) fraction of ``elapsed`` the pool's channels were held.

        Only channels that were actually used enter the mean, so an idle
        corner of a large tree does not hide a saturated hot path; the max is
        the utilisation of the single busiest channel.
        """
        if elapsed <= 0 or not self._resources:
            return (0.0, 0.0)
        fractions = [
            min(resource.busy_time / elapsed, 1.0)
            for resource in self._resources.values()
        ]
        return (sum(fractions) / len(fractions), max(fractions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelPool({self.name!r}, touched={self.touched_channels})"


class ChannelGrant(Event):
    """The slotted event a :class:`FlatChannels` acquisition resolves to.

    Mirrors :class:`~repro.des.resources.Request` in scheduling behaviour
    (triggered immediately when the channel is free, woken FIFO otherwise)
    without the per-request bookkeeping attributes the compiled path keeps
    in flat arrays instead.
    """

    __slots__ = ()


class FlatChannels:
    """Array-backed capacity-1 FIFO channels addressed by dense slot id.

    One instance covers *every* contention point of a compiled system —
    all tree channels plus the concentrator/dispatcher pseudo-channels —
    so the wormhole hot path is integer indexing into five flat arrays.

    The protocol matches :class:`~repro.des.Resource` with capacity 1:

    * :meth:`acquire` returns an event; it is already triggered (scheduled
      at the current time) when the slot was free, and is parked in the
      slot's FIFO queue otherwise;
    * :meth:`release` accumulates the held time into ``busy_time`` and
      wakes the queue head, granting at the release timestamp — the same
      event push the object path performs inside ``Request.cancel``.
    """

    __slots__ = (
        "env",
        "num_slots",
        "holder",
        "granted_at",
        "busy_time",
        "total_grants",
        "queues",
        "_schedule",
    )

    def __init__(self, env: Environment, num_slots: int) -> None:
        self.env = env
        self.num_slots = num_slots
        #: pre-bound scheduler entry point (hot path: one grant per hop)
        self._schedule = env.schedule
        #: grant currently holding each slot (None when free)
        self.holder: List[Optional[ChannelGrant]] = [None] * num_slots
        #: timestamp the current holder acquired the slot
        self.granted_at: List[float] = [0.0] * num_slots
        #: accumulated held time (updated on release, like ``Resource``)
        self.busy_time: List[float] = [0.0] * num_slots
        #: total grants per slot (relay-utilisation filter, diagnostics)
        self.total_grants: List[int] = [0] * num_slots
        #: FIFO wait queues, created lazily on first contention
        self.queues: List[Optional[deque]] = [None] * num_slots

    def acquire(self, slot: int, grant: Optional[Event] = None) -> Event:
        """Claim ``slot``; the returned event fires once the claim holds.

        ``grant`` lets the direct-dispatch kernel pass in a recycled event
        record instead of allocating a fresh :class:`ChannelGrant` per hop;
        the scheduling behaviour is identical either way.
        """
        if grant is None:
            grant = ChannelGrant(self.env)
        if self.holder[slot] is None:
            self.holder[slot] = grant
            self.granted_at[slot] = self.env._now
            self.total_grants[slot] += 1
            grant._ok = True
            grant._value = None
            self._schedule(grant)
        else:
            queue = self.queues[slot]
            if queue is None:
                queue = self.queues[slot] = deque()
            queue.append(grant)
        return grant

    def release(self, slot: int, grant: Event) -> None:
        """Release ``slot`` if ``grant`` holds it; withdraw it otherwise."""
        if self.holder[slot] is grant:
            now = self.env._now
            self.busy_time[slot] += now - self.granted_at[slot]
            queue = self.queues[slot]
            if queue:
                successor = queue.popleft()
                self.holder[slot] = successor
                self.granted_at[slot] = now
                self.total_grants[slot] += 1
                successor._ok = True
                successor._value = None
                self._schedule(successor)
            else:
                self.holder[slot] = None
        else:
            queue = self.queues[slot]
            if queue is not None:
                try:
                    queue.remove(grant)
                except ValueError:
                    # Withdrawing twice is a no-op, as for ``Request.cancel``.
                    pass

    # ------------------------------------------------------------ diagnostics
    def busy_slots(self) -> int:
        """Number of slots currently held (diagnostic aid)."""
        return sum(1 for holder in self.holder if holder is not None)

    def queued_requests(self) -> int:
        """Number of grants currently waiting across all slots."""
        return sum(len(queue) for queue in self.queues if queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatChannels(slots={self.num_slots}, busy={self.busy_slots()})"
