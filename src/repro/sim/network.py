"""Channel resources of the simulated networks.

Every directed channel of every network is a capacity-1 FIFO resource
(assumption 4: input-buffered switches with a single flit buffer per
channel).  Resources are created lazily — a 1120-node system has tens of
thousands of channels but a short run touches only a fraction of them — and
kept in a pool keyed by ``(network name, channel)`` so that the statistics
code can inspect utilisation per network.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.des import Environment, Resource
from repro.topology.fat_tree import Channel, ChannelKind
from repro.utils.units import LinkTiming


class ChannelPool:
    """Lazily created capacity-1 resources for the channels of one network."""

    def __init__(self, env: Environment, name: str, timing: LinkTiming) -> None:
        self.env = env
        self.name = name
        self.timing = timing
        self._resources: Dict[Channel, Resource] = {}
        #: total number of channel acquisitions (diagnostics)
        self.total_acquisitions = 0

    def resource(self, channel: Channel) -> Resource:
        """The resource guarding ``channel`` (created on first use)."""
        if channel not in self._resources:
            self._resources[channel] = Resource(
                self.env, capacity=1, name=f"{self.name}:{channel.kind.value}"
            )
        return self._resources[channel]

    def header_time(self, channel: Channel) -> float:
        """Per-flit transfer time of the channel (Eq. 14 vs 15)."""
        if channel.kind in (ChannelKind.INJECTION, ChannelKind.EJECTION):
            return self.timing.t_cn
        return self.timing.t_cs

    def hops_for(self, route) -> Iterator[Tuple[Resource, float]]:
        """(resource, header time) pairs for every channel of a route."""
        for channel in route:
            yield self.resource(channel), self.header_time(channel)

    # ------------------------------------------------------------ diagnostics
    @property
    def touched_channels(self) -> int:
        """Number of channels that have been used at least once."""
        return len(self._resources)

    def busy_channels(self) -> int:
        """Number of channels currently held by a message."""
        return sum(1 for resource in self._resources.values() if resource.count > 0)

    def queued_requests(self) -> int:
        """Number of requests currently waiting across all channels."""
        return sum(resource.queue_length for resource in self._resources.values())

    def utilisation(self, elapsed: float) -> Tuple[float, float]:
        """(mean, max) fraction of ``elapsed`` the pool's channels were held.

        Only channels that were actually used enter the mean, so an idle
        corner of a large tree does not hide a saturated hot path; the max is
        the utilisation of the single busiest channel.
        """
        if elapsed <= 0 or not self._resources:
            return (0.0, 0.0)
        fractions = [
            min(resource.busy_time / elapsed, 1.0)
            for resource in self._resources.values()
        ]
        return (sum(fractions) / len(fractions), max(fractions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelPool({self.name!r}, touched={self.touched_channels})"
