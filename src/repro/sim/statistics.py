"""Latency statistics gathering and the simulation result record."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.des import Tally
from repro.sim.message import Message
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class ClusterStatistics:
    """Latency statistics of the measured messages originating in one cluster."""

    cluster: int
    count: int
    mean_latency: float
    std_latency: float


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run at one operating point."""

    lambda_g: float
    #: number of measured (recorded) messages
    measured_messages: int
    #: overall mean message latency over the measured messages
    mean_latency: float
    std_latency: float
    confidence_interval: Tuple[float, float]
    #: mean time spent waiting for the injection channel
    mean_queueing_delay: float
    #: mean latency excluding the source queue
    mean_network_latency: float
    #: share of measured messages that crossed cluster boundaries
    external_fraction: float
    #: per-source-cluster statistics
    clusters: Tuple[ClusterStatistics, ...]
    #: simulated time spanned by the measurement window
    measurement_time: float
    #: delivered-messages throughput over the measurement window
    throughput: float
    #: True when the run hit its safety time limit before delivering the
    #: measured messages — the operating point is beyond saturation
    saturated: bool
    #: wall-clock seconds the run took (useful for benchmark reporting)
    wall_clock_seconds: float = 0.0
    #: per-network (mean, max) channel utilisation over the run, keyed by
    #: network name (ICN1/ECN1 pools, "ICN2", "concentrators"); empty when
    #: utilisation accounting was not requested
    channel_utilisation: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: root RNG seed the run was executed with (None when seeded from OS
    #: entropy); together with the configuration it makes the run reproducible
    #: from its serialised form
    seed: Optional[int] = None
    #: discrete events the run's kernel processed (0 when the kernel predates
    #: event accounting); feeds the benchmark's events-per-second figure
    events_processed: int = 0

    def bottleneck(self) -> Optional[str]:
        """Name of the network with the busiest single channel (None if unknown)."""
        if not self.channel_utilisation:
            return None
        return max(self.channel_utilisation, key=lambda name: self.channel_utilisation[name][1])

    def summary(self) -> Dict[str, float]:
        """JSON-friendly scalar summary (used by EXPERIMENTS.md generation)."""
        return {
            "lambda_g": self.lambda_g,
            "measured_messages": self.measured_messages,
            "mean_latency": self.mean_latency,
            "std_latency": self.std_latency,
            "ci_low": self.confidence_interval[0],
            "ci_high": self.confidence_interval[1],
            "mean_queueing_delay": self.mean_queueing_delay,
            "external_fraction": self.external_fraction,
            "throughput": self.throughput,
            "saturated": self.saturated,
            "seed": self.seed,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


@dataclass
class StatisticsCollector:
    """Accumulates message records during a run and produces the result."""

    num_clusters: int
    latency: Tally = field(default_factory=lambda: Tally("latency"))
    queueing: Tally = field(default_factory=lambda: Tally("queueing", keep_samples=False))
    network: Tally = field(default_factory=lambda: Tally("network", keep_samples=False))
    external_count: int = 0
    first_measured_at: Optional[float] = None
    last_measured_at: Optional[float] = None
    _per_cluster: Dict[int, Tally] = field(default_factory=dict)

    def record(self, message: Message) -> None:
        """Record one delivered, measured message."""
        if not message.measured:
            raise ValidationError("only measured messages should be recorded")
        self.latency.record(message.latency)
        self.queueing.record(message.queueing_delay)
        self.network.record(message.network_latency)
        if message.is_external:
            self.external_count += 1
        cluster_tally = self._per_cluster.setdefault(
            message.source_cluster, Tally(f"cluster{message.source_cluster}", keep_samples=False)
        )
        cluster_tally.record(message.latency)
        if self.first_measured_at is None:
            self.first_measured_at = message.delivered_at
        self.last_measured_at = message.delivered_at

    def record_delivery(
        self,
        source_cluster: int,
        is_external: bool,
        created_at: float,
        injected_at: float,
        delivered_at: float,
    ) -> None:
        """Record one delivery from flat timing fields (no Message object).

        The vectorized kernel keeps message timing in parallel arrays and
        never builds :class:`~repro.sim.message.Message` instances.  This
        performs the *identical* float arithmetic in the identical order as
        :meth:`record` reading the message properties — tallies accumulate
        running sums, so even a reordering of two subtractions would break
        golden-seed bit-identity.
        """
        latency = delivered_at - created_at
        self.latency.record(latency)
        self.queueing.record(injected_at - created_at)
        self.network.record(delivered_at - injected_at)
        if is_external:
            self.external_count += 1
        cluster_tally = self._per_cluster.setdefault(
            source_cluster, Tally(f"cluster{source_cluster}", keep_samples=False)
        )
        cluster_tally.record(latency)
        if self.first_measured_at is None:
            self.first_measured_at = delivered_at
        self.last_measured_at = delivered_at

    @property
    def recorded(self) -> int:
        return self.latency.count

    def result(
        self,
        *,
        lambda_g: float,
        saturated: bool,
        wall_clock_seconds: float = 0.0,
        channel_utilisation: Optional[Dict[str, Tuple[float, float]]] = None,
        seed: Optional[int] = None,
        events_processed: int = 0,
    ) -> SimulationResult:
        """Finalise the statistics into a :class:`SimulationResult`."""
        utilisation = channel_utilisation or {}
        if self.recorded == 0:
            return SimulationResult(
                lambda_g=lambda_g,
                measured_messages=0,
                mean_latency=math.inf,
                std_latency=math.nan,
                confidence_interval=(math.inf, math.inf),
                mean_queueing_delay=math.nan,
                mean_network_latency=math.nan,
                external_fraction=math.nan,
                clusters=(),
                measurement_time=0.0,
                throughput=0.0,
                saturated=True,
                wall_clock_seconds=wall_clock_seconds,
                channel_utilisation=utilisation,
                seed=seed,
                events_processed=events_processed,
            )
        clusters = tuple(
            ClusterStatistics(
                cluster=cluster,
                count=tally.count,
                mean_latency=tally.mean,
                std_latency=tally.std,
            )
            for cluster, tally in sorted(self._per_cluster.items())
        )
        span = 0.0
        if self.first_measured_at is not None and self.last_measured_at is not None:
            span = self.last_measured_at - self.first_measured_at
        throughput = self.recorded / span if span > 0 else 0.0
        return SimulationResult(
            lambda_g=lambda_g,
            measured_messages=self.recorded,
            mean_latency=self.latency.mean,
            std_latency=self.latency.std,
            confidence_interval=self.latency.confidence_interval(0.95),
            mean_queueing_delay=self.queueing.mean,
            mean_network_latency=self.network.mean,
            external_fraction=self.external_count / self.recorded,
            clusters=clusters,
            measurement_time=span,
            throughput=throughput,
            saturated=saturated,
            wall_clock_seconds=wall_clock_seconds,
            channel_utilisation=utilisation,
            seed=seed,
            events_processed=events_processed,
        )
