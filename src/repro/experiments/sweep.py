"""Latency-versus-offered-traffic sweeps (the raw material of Fig. 3 / Fig. 4).

A sweep evaluates the analytical model at every operating point and, unless
disabled, also runs the wormhole simulator there, producing one
:class:`OperatingPoint` per offered-traffic value.  Sweeps are executed
through the unified scenario/engine API (:mod:`repro.api`);
:func:`latency_sweep` is kept as the established convenience entry point and
:func:`sweep_result_from_runset` converts any API :class:`~repro.api.RunSet`
into the :class:`SweepResult` shape the report/figure layers consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import api
from repro.model.parameters import MessageSpec, PAPER_TIMING, TimingParameters
from repro.sim.config import SimulationConfig
from repro.sim.statistics import SimulationResult
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError
from repro.workloads.base import TrafficPattern


@dataclass(frozen=True)
class OperatingPoint:
    """Model prediction and (optional) simulation measurement at one load."""

    lambda_g: float
    model_latency: float
    simulated: Optional[SimulationResult] = None

    @property
    def simulated_latency(self) -> float:
        if self.simulated is None:
            return math.nan
        return self.simulated.mean_latency

    @property
    def relative_error(self) -> float:
        """(model - simulation) / simulation; ``nan`` when either is unusable."""
        if self.simulated is None:
            return math.nan
        simulated = self.simulated.mean_latency
        if not math.isfinite(simulated) or not math.isfinite(self.model_latency):
            return math.nan
        return (self.model_latency - simulated) / simulated

    @property
    def model_saturated(self) -> bool:
        return math.isinf(self.model_latency)


@dataclass(frozen=True)
class SweepResult:
    """All operating points of one latency-versus-traffic sweep."""

    spec_name: str
    message: MessageSpec
    points: Tuple[OperatingPoint, ...]

    @property
    def offered_traffic(self) -> np.ndarray:
        return np.array([point.lambda_g for point in self.points])

    @property
    def model_curve(self) -> np.ndarray:
        return np.array([point.model_latency for point in self.points])

    @property
    def simulation_curve(self) -> np.ndarray:
        return np.array([point.simulated_latency for point in self.points])

    @property
    def has_simulation(self) -> bool:
        return any(point.simulated is not None for point in self.points)

    def steady_state_points(self) -> Tuple[OperatingPoint, ...]:
        """Operating points where the model has not saturated."""
        return tuple(point for point in self.points if not point.model_saturated)

    def max_steady_state_error(self) -> float:
        """Largest |relative error| over the steady-state region (nan without sim)."""
        errors = [
            abs(point.relative_error)
            for point in self.steady_state_points()
            if not math.isnan(point.relative_error)
        ]
        return max(errors) if errors else math.nan

    def model_saturation_point(self) -> float:
        """First offered traffic at which the model saturates (inf if never)."""
        for point in self.points:
            if point.model_saturated:
                return point.lambda_g
        return math.inf

    def describe(self) -> str:
        return f"{self.spec_name}, {self.message.describe()}"


def sweep_result_from_runset(
    runset: api.RunSet,
    *,
    model_engine: str = "model",
    simulation_engine: str = "sim",
) -> SweepResult:
    """Convert an API :class:`~repro.api.RunSet` into a :class:`SweepResult`.

    The run set may lack either engine: a missing model series yields ``nan``
    model latencies, a missing simulation series yields ``simulated=None``
    points (exactly the shapes the tables and agreement metrics already
    handle).
    """
    engines = runset.engines
    model_series = (
        runset.series(model_engine) if model_engine in engines else None
    )
    sim_series = (
        runset.series(simulation_engine) if simulation_engine in engines else None
    )
    points = []
    for index, lambda_g in enumerate(runset.scenario.offered_traffic):
        model_latency = model_series[index].latency if model_series is not None else math.nan
        simulated = sim_series[index].simulation if sim_series is not None else None
        points.append(
            OperatingPoint(
                lambda_g=float(lambda_g),
                model_latency=float(model_latency),
                simulated=simulated,
            )
        )
    return SweepResult(
        spec_name=runset.scenario.spec_label,
        message=runset.scenario.message,
        points=tuple(points),
    )


def latency_sweep(
    spec: MultiClusterSpec,
    message: MessageSpec,
    offered_traffic: Sequence[float],
    *,
    timing: TimingParameters = PAPER_TIMING,
    run_simulation: bool = True,
    simulation_config: SimulationConfig = SimulationConfig(),
    pattern: Optional[TrafficPattern] = None,
    variance_approximation: str = "draper-ghosh",
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Evaluate model (and optionally simulator) over ``offered_traffic``.

    This is a thin convenience wrapper over the unified API: it builds a
    :class:`repro.api.Scenario` and dispatches to :func:`repro.api.run`.

    Parameters
    ----------
    spec, message, timing:
        The system organisation and workload geometry under study.
    offered_traffic:
        The ``lambda_g`` grid; values must be strictly positive (the
        zero-load point is analytic only and can be obtained from the model
        directly).
    run_simulation:
        When False only the analytical model is evaluated — three orders of
        magnitude faster, which is what the design-space exploration example
        relies on.
    simulation_config:
        Statistics budget for the simulation runs.
    pattern:
        Traffic pattern for the simulator (uniform by default).  The
        analytical curve always uses the paper's uniform-traffic model, so a
        non-uniform pattern here shows how far the published model drifts
        under other workloads.
    parallel:
        Fan the simulation points out over a process pool (identical
        results, lower wall-clock on multi-core machines).
    """
    if len(offered_traffic) == 0:
        raise ValidationError("offered_traffic must contain at least one value")
    scenario = api.Scenario(
        system=spec,
        message=message,
        timing=timing,
        offered_traffic=tuple(float(value) for value in offered_traffic),
        sim=simulation_config,
        variance_approximation=variance_approximation,
    )
    engines: list = [api.AnalyticalEngine()]
    if run_simulation:
        engines.append(api.SimulationEngine(pattern=pattern))
    runset = api.run(scenario, engines=engines, parallel=parallel, max_workers=max_workers)
    return sweep_result_from_runset(runset)
