"""Machine-readable simulator benchmark (the ``BENCH_simulator.json`` artifact).

The ROADMAP's north star is a simulator that runs "as fast as the hardware
allows"; that is only a meaningful claim if every PR measures it the same
way.  This module defines that measurement: a small **fixed scenario set**
(the paper's two Table 1 organisations plus the heterogeneous integration
system) run sequentially through :class:`repro.api.SimulationEngine` at a
fixed budget and seed, reporting wall-clock seconds and delivered
messages/second per scenario.

``repro-multicluster bench`` runs it and writes ``BENCH_simulator.json``;
passing ``--baseline`` (typically the artifact committed by an earlier PR)
adds per-scenario speedup ratios, and ``--parallel`` additionally executes
the whole scenario set as **one campaign over one shared process pool** at a
ladder of worker counts, recording a speedup-vs-workers curve.  The JSON
schema is intentionally tiny and stable so the perf trajectory stays
machine-readable across PRs::

    {
      "schema": 1,
      "budget": "quick", "points": 3, "seed": 0,
      "scenarios": {"fig3": {"wall_clock_seconds": ..,
                             "messages_per_second": ..,
                             "events_per_second": ..,
                             "kernel": "vectorized",
                             "setup_seconds": ..,     # compile + streams
                             "run_seconds": ..,       # event-loop execute
                             "collect_seconds": ..,   # state + statistics
                             ...}, ...},
      "kernels": [{"scenario": "fig3", "kernel": "dispatch",
                   "wall_clock_seconds": .., "messages_per_second": ..,
                   "events_per_second": .., "speedup": 1.0},
                  {"scenario": "fig3", "kernel": "vectorized",
                   "speedup": 2.3, ...}, ...],
      "scaling": [{"workers": 1, "mode": "cold", "kernel": "vectorized",
                   "elapsed_seconds": ..,
                   "messages_per_second": .., "speedup": 1.0,
                   "retries": 0},
                  ...,
                  {"workers": 2, "mode": "daemon", "speedup": ..,
                   "speedup_vs_sequential": ..,
                   "warmup_seconds": .., ...},
                  {"workers": 2, "mode": "distributed", "runners": 2,
                   "speedup": .., "warmup_seconds": .., ...}],  # --parallel
      "task_retries": 0,                                 # --parallel
      "baseline": {"label": .., "scenarios": {...}},   # when compared
      "speedup": {"fig3": 2.2, ...}                    # when compared
    }

The ``kernels`` rungs are the matched-budget comparison between the FSM
dispatch kernel (the executable specification) and the vectorized core:
same scenario, same :class:`~repro.sim.config.SimulationConfig`, same seed,
interleaved repetitions with the minimum wall clock reported per kernel —
the measurement ``benchmarks/diff_bench.py`` gates on.

The per-scenario entries are always measured sequentially (one engine, one
process), so the ``messages_per_second`` trajectory stays comparable across
PRs and machines regardless of ``--parallel``; the ``scaling`` section is
where multi-core fan-out is recorded.  Its ``"cold"`` rungs measure a fresh
campaign process (compile caches cleared, ephemeral pool); the ``"daemon"``
rung measures the same campaign against a warm
:class:`repro.service.daemon.WorkerDaemon` — what a request to an
already-running ``repro-multicluster serve`` costs once the compiled route
tables sit in shared memory and the persistent workers are warm.  Cold
rungs report ``speedup`` against the sequential (1-worker cold) baseline;
the daemon rung reports ``speedup`` against the cold rung at the *same*
worker count — warm service vs fresh campaign process is the comparison
the rung exists to measure — and carries the sequential ratio separately
as ``speedup_vs_sequential``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List

from repro import api
from repro.utils.serialization import dump_json, load_json
from repro.utils.validation import ValidationError

__all__ = [
    "BENCH_SCENARIOS",
    "BENCH_KERNELS",
    "bench_campaign",
    "run_bench",
    "attach_baseline",
    "write_bench",
]

#: The fixed scenario set every PR benchmarks (order is report order).
BENCH_SCENARIOS = ("fig3", "fig4", "heterogeneous")

#: Default operating-point count per scenario.
BENCH_POINTS = 3

#: The kernel-comparison rung pair: the FSM dispatch kernel (executable
#: specification) first — it is the rung the speedups are relative to.
BENCH_KERNELS = ("dispatch", "vectorized")

#: Interleaved repetitions per kernel rung; the minimum wall clock is
#: reported, which drops scheduler/thermal noise without inventing speed.
KERNEL_BENCH_REPS = 5


def _resolved_kernel() -> str:
    """The kernel the engine-backed measurements actually run."""
    from repro.sim.simulator import DEFAULT_KERNEL

    return os.environ.get("REPRO_SIM_KERNEL", DEFAULT_KERNEL)


def bench_campaign(
    scenarios: Iterable[str] = BENCH_SCENARIOS, *, points: int = BENCH_POINTS, sim=None
) -> "Campaign":
    """The benchmark scenario set as one simulation-only campaign."""
    from repro.campaign import Campaign, CampaignEntry

    sim = sim if sim is not None else api.simulation_budget("quick", 0)
    return Campaign(
        entries=tuple(
            CampaignEntry(
                scenario=api.scenario(name, points=points, sim=sim),
                engines=("sim",),
                label=name,
            )
            for name in scenarios
        ),
        name="bench",
    )


def _worker_ladder(effective_workers: int) -> List[int]:
    """1, 2, 4, … up to (and always including) ``effective_workers``."""
    ladder = [1]
    width = 2
    while width < effective_workers:
        ladder.append(width)
        width *= 2
    if effective_workers > 1:
        ladder.append(effective_workers)
    return ladder


def _clear_compiled_state() -> None:
    """Return this process to a cold start: compiled caches, warmed streams."""
    from repro.routing.compile import clear_route_caches
    from repro.topology.compile import clear_compile_caches
    from repro.utils.rng import clear_stream_pool

    clear_compile_caches()
    clear_route_caches()
    clear_stream_pool()


def _run_rung(
    campaign: "Campaign", *, parallel: bool, workers: int, backend: Any = None
) -> tuple:
    """One timed campaign execution; returns (elapsed, messages, retries)."""
    from repro.campaign import CampaignExecutor, RetryPolicy

    executor = CampaignExecutor(
        campaign,
        parallel=parallel,
        max_workers=workers,
        store=None,
        retry=RetryPolicy(max_attempts=2),
        backend=backend,
    )
    started = time.perf_counter()
    result = executor.collect()
    elapsed = time.perf_counter() - started
    measured = sum(
        record.simulation.measured_messages
        for runset in result.runsets
        for record in runset.records
        if record.simulation is not None
    )
    return elapsed, measured, result.task_retries


def _measure_scaling(
    campaign: "Campaign", effective_workers: int
) -> List[Dict[str, Any]]:
    """Elapsed/messages-per-second of the shared-pool campaign per rung.

    Two rung modes, distinguished by the ``mode`` field:

    * ``"cold"`` — what a fresh ``repro-multicluster campaign run`` pays.
      The compile caches and stream pool are cleared before each rung, so
      the measurement includes route-table compilation and (for pooled
      rungs) process-pool start-up.  The ``workers=1`` cold rung executes
      sequentially in-process and is the curve's speedup baseline.
    * ``"daemon"`` — the same campaign served by a *warm*
      :class:`repro.service.daemon.WorkerDaemon` at the top worker count:
      one untimed warm-up campaign spawns the persistent workers, exports
      the compiled tables into shared memory and warms the worker-side
      engines, then the timed run measures what a request to an
      already-running ``repro-multicluster serve`` costs.  The warm-up cost
      itself is recorded as ``warmup_seconds``.  Its ``speedup`` is against
      the cold rung at the same worker count (warm service vs fresh
      campaign process); ``speedup_vs_sequential`` keeps the ratio against
      the 1-worker baseline that the cold rungs report.
    * ``"distributed"`` — the same campaign sharded over ``runners`` (>= 2)
      auto-spawned loopback runner subprocesses through
      :class:`repro.service.cluster.ClusterBackend`, after one untimed
      warm-up pass; ``speedup`` is against the 1-worker cold baseline.  On
      a many-core host the runners are genuinely parallel machines-in-
      miniature; on a small host the rung prices the socket protocol.

    Results are bit-identical across every rung (each point is reproducible
    from the scenario seed alone); only the elapsed time changes.

    All pooled rungs run under the campaign retry policy (one re-queue per
    task), so a transient worker death cannot sink a benchmark run; each
    rung records how many retries it needed (0 on healthy hardware — a
    non-zero count flags that the elapsed time includes recovery work).
    """
    from repro.service.daemon import PersistentPoolBackend, WorkerDaemon

    def rung_entry(mode: str, workers: int, elapsed: float, measured: int, retries: int):
        return {
            "workers": int(workers),
            "mode": mode,
            "kernel": _resolved_kernel(),
            "elapsed_seconds": round(elapsed, 4),
            "measured_messages": int(measured),
            "messages_per_second": round(measured / elapsed, 1),
            "speedup": round(curve[0]["elapsed_seconds"] / elapsed, 2) if curve else 1.0,
            "retries": int(retries),
        }

    curve: List[Dict[str, Any]] = []
    for workers in _worker_ladder(effective_workers):
        _clear_compiled_state()
        elapsed, measured, retries = _run_rung(
            campaign, parallel=workers > 1, workers=workers
        )
        curve.append(rung_entry("cold", workers, elapsed, measured, retries))
    _clear_compiled_state()
    with WorkerDaemon(effective_workers) as daemon:
        warmup_started = time.perf_counter()
        _run_rung(
            campaign,
            parallel=True,
            workers=effective_workers,
            backend=PersistentPoolBackend(daemon),
        )
        warmup_seconds = time.perf_counter() - warmup_started
        elapsed, measured, retries = _run_rung(
            campaign,
            parallel=True,
            workers=effective_workers,
            backend=PersistentPoolBackend(daemon),
        )
    entry = rung_entry("daemon", effective_workers, elapsed, measured, retries)
    # The daemon rung answers "same campaign, same worker count: what does
    # the warm service save over a fresh campaign process?", so its headline
    # speedup is against the cold rung at the same width; the sequential
    # ratio every cold rung reports is kept alongside.
    same_width = next(
        rung for rung in curve
        if rung["workers"] == effective_workers and rung["mode"] == "cold"
    )
    entry["speedup_vs_sequential"] = entry["speedup"]
    entry["speedup"] = round(same_width["elapsed_seconds"] / elapsed, 2)
    entry["warmup_seconds"] = round(warmup_seconds, 4)
    curve.append(entry)

    # Distributed rung: the same campaign sharded over loopback runner
    # subprocesses (>= 2, per the multi-runner claim this rung records)
    # through the socket coordinator.  One untimed warm-up campaign lets
    # each runner compile its tables and warm its engine cache — matching
    # the daemon rung's warm-service framing — then the timed run measures
    # coordinator + wire + remote evaluation.  Results stay bit-identical
    # to every other rung; on a single-core host the rung records protocol
    # overhead rather than speedup, which is exactly what it should say.
    from repro.service.cluster import ClusterBackend, LocalRunnerFleet

    runner_count = max(2, effective_workers)
    _clear_compiled_state()
    with LocalRunnerFleet(runner_count) as fleet:
        backend = ClusterBackend(fleet.addresses)
        try:
            warmup_started = time.perf_counter()
            _run_rung(
                campaign, parallel=True, workers=runner_count, backend=backend
            )
            warmup_seconds = time.perf_counter() - warmup_started
            elapsed, measured, retries = _run_rung(
                campaign, parallel=True, workers=runner_count, backend=backend
            )
        finally:
            backend.close()
    entry = rung_entry("distributed", runner_count, elapsed, measured, retries)
    entry["runners"] = int(runner_count)
    entry["warmup_seconds"] = round(warmup_seconds, 4)
    curve.append(entry)
    return curve


def _measure_kernels(
    scenarios: Iterable[str],
    *,
    points: int,
    sim,
    reps: int = KERNEL_BENCH_REPS,
) -> List[Dict[str, Any]]:
    """Matched-budget kernel rungs: FSM dispatch vs the vectorized core.

    Each scenario is run at its lowest grid operating point (the unsaturated
    regime, where the event loop — not the guard timeout — is what is being
    timed) under both kernels, with the *same* budget, seed and offered
    traffic.  Repetitions interleave the kernels so both see the same
    machine conditions, and each rung reports its minimum wall clock: on a
    noisy box the minimum is the least-contended observation of the same
    deterministic computation.  The first warm run per kernel (compile
    caches, stream-pool snapshots, allocator) is untimed.

    Results are bit-identical between the rung pair by the golden-seed
    gate, so the ratio isolates kernel mechanics.
    """
    from repro.sim.simulator import MultiClusterSimulator

    rungs: List[Dict[str, Any]] = []
    for name in scenarios:
        scenario = api.scenario(name, points=points, sim=sim)
        lambda_g = float(scenario.offered_traffic[0])
        simulators = {}
        for kernel in BENCH_KERNELS:
            simulator = MultiClusterSimulator(
                scenario.network,
                scenario.message,
                scenario.timing,
                config=scenario.sim,
                pattern=scenario.pattern.build(),
                kernel=kernel,
            )
            simulator.run(lambda_g)  # warm-up, untimed
            simulators[kernel] = simulator
        walls: Dict[str, List[float]] = {kernel: [] for kernel in BENCH_KERNELS}
        results: Dict[str, Any] = {}
        for _ in range(max(1, reps)):
            for kernel, simulator in simulators.items():
                result = simulator.run(lambda_g)
                walls[kernel].append(result.wall_clock_seconds)
                results[kernel] = result
        reference = min(walls[BENCH_KERNELS[0]])
        for kernel in BENCH_KERNELS:
            wall = min(walls[kernel])
            result = results[kernel]
            rungs.append(
                {
                    "scenario": name,
                    "topology": scenario.spec_label,
                    "kernel": kernel,
                    "lambda_g": lambda_g,
                    "reps": int(max(1, reps)),
                    "measured_messages": int(result.measured_messages),
                    "events_processed": int(result.events_processed),
                    "wall_clock_seconds": round(wall, 4),
                    "messages_per_second": round(result.measured_messages / wall, 1),
                    "events_per_second": round(result.events_processed / wall, 1),
                    "speedup": round(reference / wall, 2),
                }
            )
    return rungs


def run_bench(
    scenarios: Iterable[str] = BENCH_SCENARIOS,
    *,
    points: int = BENCH_POINTS,
    budget: str = "quick",
    seed: int = 0,
    smoke: bool = False,
    parallel: bool = False,
    workers: int | None = None,
) -> Dict[str, Any]:
    """Run the benchmark scenario set and return the JSON payload.

    ``smoke=True`` shrinks the budget to a few hundred messages — enough to
    execute every code path (CI keeps the harness from rotting) while making
    no timing claims; smoke payloads are marked so they are never mistaken
    for a trajectory point.

    ``parallel=True`` keeps the per-scenario trajectory measurement
    sequential (so ``messages_per_second`` stays comparable across PRs) and
    *additionally* executes the whole set as one campaign whose tasks share
    a single process pool: cold rungs at worker counts 1, 2, 4, … up to
    ``workers`` (default CPU count, capped by the task count), plus one
    warm-daemon rung at the top worker count (see :func:`_measure_scaling`).
    The resulting speedup-vs-workers curve lands in the payload's
    ``scaling`` list; results are bit-identical at every rung.
    """
    scenarios = tuple(scenarios)
    sim = api.simulation_budget(budget, seed)
    if smoke:
        sim = sim.scaled(200 / sim.measured_messages)
    requested_workers = workers if workers is not None else (os.cpu_count() or 1)
    total_tasks = points * len(scenarios)
    # The shared pool never exceeds the campaign's task count — record what
    # actually happens, not what was asked for.
    effective_workers = (
        max(1, min(requested_workers, total_tasks)) if parallel and total_tasks > 1 else 1
    )
    payload: Dict[str, Any] = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "budget": budget,
        "points": int(points),
        "seed": int(seed),
        "smoke": bool(smoke),
        "parallel": bool(parallel and effective_workers > 1),
        "workers": int(effective_workers),
        "scenarios": {},
    }
    for name in scenarios:
        scenario = api.scenario(name, points=points, sim=sim)
        setup_started = time.perf_counter()
        engine = api.SimulationEngine()
        engine.prepare(scenario)  # compile + warm streams outside the timed region
        setup_seconds = time.perf_counter() - setup_started
        kernel = engine.simulator_for(scenario).kernel
        sweep_started = time.perf_counter()
        records = tuple(
            engine.evaluate(scenario, lambda_g) for lambda_g in scenario.offered_traffic
        )
        elapsed = time.perf_counter() - sweep_started
        wall = 0.0
        measured = 0
        events = 0
        for record in records:
            result = record.simulation
            wall += result.wall_clock_seconds
            measured += result.measured_messages
            events += result.events_processed
        if wall <= 0:
            raise ValidationError(
                f"benchmark scenario {name!r} reported no wall-clock time"
            )  # pragma: no cover - perf_counter is monotonic
        payload["scenarios"][name] = {
            "points": int(points),
            "topology": scenario.spec_label,
            "kernel": kernel,
            "measured_messages": measured,
            "events_processed": events,
            "wall_clock_seconds": round(wall, 4),
            "messages_per_second": round(measured / wall, 1),
            "events_per_second": round(events / wall, 1),
            # The per-layer timing split: setup (compile + stream snapshots,
            # before any run), run (the event loop itself — the sum of the
            # per-point wall clocks, which time `execute()` only), collect
            # (everything else inside the sweep: per-run state construction,
            # RNG restores, pre-draws, statistics assembly).
            "setup_seconds": round(setup_seconds, 4),
            "run_seconds": round(wall, 4),
            "collect_seconds": round(max(elapsed - wall, 0.0), 4),
            "elapsed_seconds": round(elapsed, 4),
            "workers": 1,
        }
    # Smoke still measures the rung pair (the CI perf gate reads it), just
    # with fewer repetitions; ratios survive tiny budgets, absolutes don't.
    payload["kernels"] = _measure_kernels(
        scenarios, points=points, sim=sim, reps=3 if smoke else KERNEL_BENCH_REPS
    )
    if payload["parallel"]:
        campaign = bench_campaign(scenarios, points=points, sim=sim)
        payload["fan_out"] = "scenario"
        payload["scaling"] = _measure_scaling(campaign, effective_workers)
        # Worker re-queues across every rung: 0 on healthy hardware, and a
        # non-zero value flags elapsed times that include crash recovery.
        payload["task_retries"] = sum(rung["retries"] for rung in payload["scaling"])
    return payload


def attach_baseline(
    payload: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    label: str = "baseline",
) -> Dict[str, Any]:
    """Merge a previous run into ``payload`` and compute speedup ratios."""
    baseline_scenarios = baseline.get("scenarios", baseline)
    payload["baseline"] = {"label": label, "scenarios": baseline_scenarios}
    speedup: Dict[str, float] = {}
    for name, current in payload["scenarios"].items():
        reference = baseline_scenarios.get(name)
        if not reference:
            continue
        before = reference.get("messages_per_second")
        if before:
            speedup[name] = round(current["messages_per_second"] / before, 2)
    payload["speedup"] = speedup
    return payload


def write_bench(payload: Dict[str, Any], path: str | Path) -> Path:
    """Write the payload as JSON and return the path."""
    return dump_json(payload, path)


def load_baseline(path: str | Path) -> Dict[str, Any]:
    """Load a baseline payload written by :func:`write_bench`."""
    data = load_json(path)
    if not isinstance(data, dict):
        raise ValidationError(f"baseline file {path} does not hold a JSON object")
    return data


def bench_to_text(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a benchmark payload."""
    lines = []
    tag = " (smoke: no timing claims)" if payload.get("smoke") else ""
    if payload.get("parallel"):
        tag += f" (parallel, {payload.get('workers', '?')} workers)"
    lines.append(
        f"simulator benchmark — budget={payload['budget']}, "
        f"points={payload['points']}, seed={payload['seed']}{tag}"
    )
    speedup = payload.get("speedup", {})
    for name, entry in payload["scenarios"].items():
        line = (
            f"  {name:<14} {entry['measured_messages']:>6} msgs  "
            f"{entry['wall_clock_seconds']:>8.3f} s  "
            f"{entry['messages_per_second']:>9.1f} msg/s"
        )
        if name in speedup:
            line += f"  ({speedup[name]:.2f}x vs {payload['baseline']['label']})"
        lines.append(line)
    kernels = payload.get("kernels")
    if kernels:
        lines.append("  kernel rungs (matched budget, min of interleaved reps):")
        for rung in kernels:
            line = (
                f"    {rung['scenario']:<14} {rung['kernel']:<11} "
                f"{rung['wall_clock_seconds']:>8.3f} s  "
                f"{rung['messages_per_second']:>9.1f} msg/s  "
                f"{rung['events_per_second']:>11.1f} ev/s"
            )
            if rung["kernel"] != BENCH_KERNELS[0]:
                line += f"  ({rung['speedup']:.2f}x vs {BENCH_KERNELS[0]})"
            lines.append(line)
    scaling = payload.get("scaling")
    if scaling:
        lines.append("  shared-pool scenario fan-out (all scenarios, one pool):")
        for rung in scaling:
            mode = rung.get("mode", "cold")
            reference = (
                f"vs {rung['workers']}-worker cold" if mode == "daemon"
                else "vs 1 worker cold"
            )
            width = rung["runners"] if mode == "distributed" else rung["workers"]
            unit = "runners" if mode == "distributed" else "workers"
            line = (
                f"    {width:>2} {unit:<7} {mode:<11} "
                f"{rung['elapsed_seconds']:>8.3f} s  "
                f"{rung['messages_per_second']:>9.1f} msg/s  "
                f"({rung['speedup']:.2f}x {reference})"
            )
            if rung.get("warmup_seconds") is not None:
                line += f"  [warm-up {rung['warmup_seconds']:.3f} s]"
            if rung.get("retries"):
                line += f"  [{rung['retries']} retries]"
            lines.append(line)
    return "\n".join(lines)
