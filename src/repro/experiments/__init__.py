"""Experiment harness reproducing the paper's evaluation (Table 1, Fig. 3, Fig. 4).

The harness turns "regenerate figure 3" into one function call:

* :mod:`repro.experiments.configs` — the exact Table 1 system organisations,
  the paper's channel timing, the four message geometries and the offered-
  traffic ranges of the figures;
* :mod:`repro.experiments.sweep` — latency-versus-offered-traffic sweeps
  running the analytical model and (optionally) the simulator at every
  operating point;
* :mod:`repro.experiments.figures` — Fig. 3 and Fig. 4 as data (one series
  per curve of the original plots);
* :mod:`repro.experiments.table1` — the Table 1 organisation summary;
* :mod:`repro.experiments.compare` — model-versus-simulation agreement
  metrics (the paper's "good degree of accuracy" claim, quantified);
* :mod:`repro.experiments.ablation` — the design-choice ablations called out
  in DESIGN.md (heterogeneity awareness, variance approximation, traffic
  pattern);
* :mod:`repro.experiments.report` — plain-text / CSV / Markdown rendering,
  including the EXPERIMENTS.md generator.
"""

from repro.experiments.configs import (
    FIGURE_SPECS,
    FigureSpec,
    paper_message_specs,
    table1_specs,
    table1_system,
)
from repro.experiments.sweep import (
    OperatingPoint,
    SweepResult,
    latency_sweep,
    sweep_result_from_runset,
)
from repro.experiments.figures import (
    FigureResult,
    figure_campaign,
    panel_scenario,
    run_figure,
)
from repro.experiments.table1 import table1_campaign, table1_rows
from repro.experiments.compare import (
    AgreementReport,
    ApplicabilityReport,
    compare_campaign,
    compare_model_and_simulation,
    compare_runset,
    model_applicability,
)
from repro.experiments.ablation import (
    heterogeneity_ablation,
    traffic_pattern_ablation,
    variance_ablation,
)
from repro.experiments.report import (
    experiments_markdown,
    figure_to_table,
    sweep_to_table,
)

__all__ = [
    "FIGURE_SPECS",
    "FigureSpec",
    "paper_message_specs",
    "table1_specs",
    "table1_system",
    "OperatingPoint",
    "SweepResult",
    "latency_sweep",
    "sweep_result_from_runset",
    "FigureResult",
    "figure_campaign",
    "panel_scenario",
    "run_figure",
    "table1_campaign",
    "table1_rows",
    "AgreementReport",
    "ApplicabilityReport",
    "compare_campaign",
    "compare_model_and_simulation",
    "compare_runset",
    "model_applicability",
    "heterogeneity_ablation",
    "traffic_pattern_ablation",
    "variance_ablation",
    "experiments_markdown",
    "figure_to_table",
    "sweep_to_table",
]
