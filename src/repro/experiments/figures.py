"""Reproduction of Fig. 3 and Fig. 4: latency versus offered traffic.

Each figure of the paper has two panels (message length 32 and 64 flits) and
each panel shows four curves: analysis and simulation for flit sizes 256 and
512 bytes.  :func:`run_figure` regenerates all of that as data — one
:class:`~repro.experiments.sweep.SweepResult` per (panel, flit size) — which
the report module renders as tables/CSV and the benchmarks check for shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import api
from repro.campaign import Campaign, CampaignEntry, run_campaign
from repro.experiments.configs import FigureSpec, figure_panels
from repro.experiments.sweep import SweepResult, sweep_result_from_runset
from repro.model.parameters import MessageSpec
from repro.sim.config import SimulationConfig
from repro.store import ResultStore
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class FigureResult:
    """All series of one figure, keyed by (message length, flit size)."""

    figure: str
    sweeps: Dict[Tuple[int, int], SweepResult]

    def sweep(self, message_length: int, flit_bytes: int) -> SweepResult:
        key = (message_length, flit_bytes)
        if key not in self.sweeps:
            raise ValidationError(
                f"{self.figure} has no series for M={message_length}, Lm={flit_bytes}"
            )
        return self.sweeps[key]

    @property
    def panels(self) -> Tuple[int, ...]:
        """The message lengths (one per panel of the original figure)."""
        return tuple(sorted({length for length, _ in self.sweeps}))

    def series_labels(self) -> Tuple[str, ...]:
        return tuple(
            f"M={length} Lm={flit}" for length, flit in sorted(self.sweeps.keys())
        )


def panel_scenario(
    panel: FigureSpec,
    message: MessageSpec,
    *,
    num_points: Optional[int] = None,
    simulation_config: SimulationConfig = SimulationConfig(),
) -> api.Scenario:
    """The :class:`repro.api.Scenario` of one series of one panel."""
    return api.Scenario(
        system=panel.system,
        message=message,
        offered_traffic=tuple(float(v) for v in panel.offered_traffic(num_points)),
        sim=simulation_config,
        name=f"{panel.figure}/M{message.length_flits}-Lm{message.flit_bytes}",
    )


def figure_campaign(
    figure: str,
    *,
    num_points: Optional[int] = None,
    run_simulation: bool = True,
    simulation_config: SimulationConfig = SimulationConfig(),
) -> Campaign:
    """The whole figure — every panel, every flit size — as one campaign.

    Each series becomes one campaign entry, so a parallel execution fans the
    simulation points of *all four* series into one shared process pool
    instead of sweeping them one series at a time.
    """
    engines = ("model", "sim") if run_simulation else ("model",)
    entries = []
    for panel in figure_panels(figure):
        for message in panel.message_specs():
            scenario = panel_scenario(
                panel, message, num_points=num_points, simulation_config=simulation_config
            )
            entries.append(CampaignEntry(scenario=scenario, engines=engines))
    return Campaign(entries=tuple(entries), name=figure)


def _sweeps_from_campaign(result) -> Dict[Tuple[int, int], SweepResult]:
    sweeps: Dict[Tuple[int, int], SweepResult] = {}
    for _, runset in result:
        message = runset.scenario.message
        sweeps[(message.length_flits, message.flit_bytes)] = sweep_result_from_runset(runset)
    return sweeps


def run_panel(
    panel: FigureSpec,
    *,
    num_points: Optional[int] = None,
    run_simulation: bool = True,
    simulation_config: SimulationConfig = SimulationConfig(),
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> Dict[Tuple[int, int], SweepResult]:
    """All series of one panel (one sweep per flit size)."""
    sweeps: Dict[Tuple[int, int], SweepResult] = {}
    engines = ("model", "sim") if run_simulation else ("model",)
    for message in panel.message_specs():
        scenario = panel_scenario(
            panel, message, num_points=num_points, simulation_config=simulation_config
        )
        runset = api.run(scenario, engines=engines, parallel=parallel, max_workers=max_workers)
        sweeps[(message.length_flits, message.flit_bytes)] = sweep_result_from_runset(runset)
    return sweeps


def run_figure(
    figure: str,
    *,
    num_points: Optional[int] = None,
    run_simulation: bool = True,
    simulation_config: SimulationConfig = SimulationConfig(),
    parallel: bool = False,
    max_workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> FigureResult:
    """Regenerate ``"fig3"`` (N=1120) or ``"fig4"`` (N=544) as data.

    The figure executes as one campaign (:func:`figure_campaign`): with
    ``parallel=True`` all series share a single process pool, and passing a
    :class:`~repro.store.ResultStore` makes re-generation incremental —
    only series whose scenario (or kernel switches) changed re-simulate.

    With ``run_simulation=False`` only the analysis curves are produced,
    which takes well under a second; the full analysis-plus-simulation
    reproduction at the paper's message budget is available through
    ``simulation_config=SimulationConfig.paper()`` and takes minutes (or
    ``parallel=True`` to spread the points over the machine's cores).
    """
    campaign = figure_campaign(
        figure,
        num_points=num_points,
        run_simulation=run_simulation,
        simulation_config=simulation_config,
    )
    result = run_campaign(
        campaign, parallel=parallel, max_workers=max_workers, store=store
    )
    return FigureResult(figure=figure, sweeps=_sweeps_from_campaign(result))


def expected_message_specs(figure: str) -> Tuple[MessageSpec, ...]:
    """The four (M, Lm) combinations a figure's panels cover."""
    specs = []
    for panel in figure_panels(figure):
        specs.extend(panel.message_specs())
    return tuple(specs)
