"""Design-choice ablations (DESIGN.md section 6).

Three questions the paper's design raises but does not answer directly:

1. **Does modelling cluster-size heterogeneity matter?**  Compare the exact
   model with the equal-cluster-size approximation on the Table 1
   organisations (:func:`heterogeneity_ablation`).
2. **Does the Draper-Ghosh variance approximation matter?**  Compare the
   published source-queue variance (Eq. 22) with a deterministic-service
   assumption (:func:`variance_ablation`).
3. **How far does the uniform-traffic model stretch?**  Evaluate the
   simulator under non-uniform patterns against the (uniform-traffic)
   analytical curve (:func:`traffic_pattern_ablation`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro import api
from repro.model.parameters import MessageSpec, PAPER_TIMING, TimingParameters
from repro.sim.config import SimulationConfig
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError
from repro.workloads.base import TrafficPattern


@dataclass(frozen=True)
class AblationPoint:
    """Latency of the reference and the variant at one offered traffic."""

    lambda_g: float
    reference: float
    variant: float

    @property
    def relative_difference(self) -> float:
        if not math.isfinite(self.reference) or not math.isfinite(self.variant):
            return math.nan
        return (self.variant - self.reference) / self.reference


@dataclass(frozen=True)
class AblationResult:
    """One ablation: what was varied and the point-by-point comparison."""

    name: str
    reference_label: str
    variant_label: str
    points: Tuple[AblationPoint, ...]

    def max_relative_difference(self) -> float:
        values = [
            abs(point.relative_difference)
            for point in self.points
            if not math.isnan(point.relative_difference)
        ]
        return max(values) if values else math.nan

    def mean_relative_difference(self) -> float:
        values = [
            point.relative_difference
            for point in self.points
            if not math.isnan(point.relative_difference)
        ]
        return sum(values) / len(values) if values else math.nan


def _two_engine_ablation(
    scenario: api.Scenario,
    reference_engine: api.Engine,
    variant_engine: api.Engine,
    *,
    name: str,
    reference_label: str,
    variant_label: str,
) -> AblationResult:
    """Run one scenario under two engines and pair their curves point-wise."""
    runset = api.run(scenario, engines=(reference_engine, variant_engine))
    reference = runset.series(reference_engine.name)
    variant = runset.series(variant_engine.name)
    points = tuple(
        AblationPoint(
            lambda_g=float(lambda_g),
            reference=reference[index].latency,
            variant=variant[index].latency,
        )
        for index, lambda_g in enumerate(scenario.offered_traffic)
    )
    return AblationResult(
        name=name,
        reference_label=reference_label,
        variant_label=variant_label,
        points=points,
    )


def heterogeneity_ablation(
    spec: MultiClusterSpec,
    message: MessageSpec,
    offered_traffic: Sequence[float],
    *,
    timing: TimingParameters = PAPER_TIMING,
) -> AblationResult:
    """Exact heterogeneous model vs the equal-cluster-size approximation."""
    _check_traffic(offered_traffic)
    scenario = api.Scenario(
        system=spec,
        message=message,
        timing=timing,
        offered_traffic=tuple(float(v) for v in offered_traffic),
    )
    variant = api.equal_size_engine()
    equivalent_height = variant.model_for(scenario).equivalent_height
    return _two_engine_ablation(
        scenario,
        api.AnalyticalEngine(),
        variant,
        name=f"heterogeneity ({spec.name or spec.total_nodes})",
        reference_label="heterogeneity-aware model",
        variant_label=f"equal-size approximation (n={equivalent_height})",
    )


def variance_ablation(
    spec: MultiClusterSpec,
    message: MessageSpec,
    offered_traffic: Sequence[float],
    *,
    timing: TimingParameters = PAPER_TIMING,
) -> AblationResult:
    """Draper-Ghosh source-queue variance (Eq. 22) vs deterministic service."""
    _check_traffic(offered_traffic)
    scenario = api.Scenario(
        system=spec,
        message=message,
        timing=timing,
        offered_traffic=tuple(float(v) for v in offered_traffic),
    )
    return _two_engine_ablation(
        scenario,
        api.AnalyticalEngine(),
        api.AnalyticalEngine(variance_approximation="zero", name="model/zero-variance"),
        name=f"variance approximation ({spec.name or spec.total_nodes})",
        reference_label="Draper-Ghosh variance (Eq. 22)",
        variant_label="zero-variance (M/D/1) source queues",
    )


def traffic_pattern_ablation(
    spec: MultiClusterSpec,
    message: MessageSpec,
    offered_traffic: Sequence[float],
    patterns: Dict[str, Optional[TrafficPattern]],
    *,
    timing: TimingParameters = PAPER_TIMING,
    simulation_config: SimulationConfig = SimulationConfig(),
    parallel: bool = False,
) -> Dict[str, AblationResult]:
    """Simulated latency under alternative traffic patterns vs the uniform model.

    ``patterns`` maps a label to a traffic pattern (``None`` means the
    uniform pattern).  Every pattern is simulated over the same traffic grid
    and compared against the analytical (uniform-traffic) curve, showing
    where the published model stops being a good predictor.
    """
    _check_traffic(offered_traffic)
    scenario = api.Scenario(
        system=spec,
        message=message,
        timing=timing,
        offered_traffic=tuple(float(v) for v in offered_traffic),
        sim=simulation_config,
    )
    reference_curve = api.run(scenario, engines=(api.AnalyticalEngine(),)).curve("model")
    # One campaign entry per pattern: a parallel execution fans every
    # pattern's simulation points into one shared process pool instead of
    # paying a fresh pool (and pool warm-up) per pattern.
    from repro.campaign import Campaign, CampaignEntry, run_campaign

    labels = tuple(patterns)
    campaign = Campaign(
        entries=tuple(
            CampaignEntry(
                scenario=scenario,
                engines=(api.SimulationEngine(pattern=pattern),),
                label=label,
            )
            for label, pattern in patterns.items()
        ),
        name="traffic-pattern-ablation",
    )
    campaign_result = run_campaign(campaign, parallel=parallel, store=None)
    results: Dict[str, AblationResult] = {}
    for label in labels:
        runset = campaign_result.runset(label)
        points = tuple(
            AblationPoint(
                lambda_g=float(value),
                reference=float(reference),
                variant=record.latency,
            )
            for value, reference, record in zip(
                offered_traffic, reference_curve, runset.series("sim")
            )
        )
        results[label] = AblationResult(
            name=f"traffic pattern: {label}",
            reference_label="uniform-traffic analytical model",
            variant_label=f"simulation under {label}",
            points=points,
        )
    return results


def _check_traffic(offered_traffic: Sequence[float]) -> None:
    if len(offered_traffic) == 0:
        raise ValidationError("offered_traffic must contain at least one value")
    if any(value <= 0 for value in offered_traffic):
        raise ValidationError("offered traffic values must be > 0")
