"""Design-choice ablations (DESIGN.md section 6).

Three questions the paper's design raises but does not answer directly:

1. **Does modelling cluster-size heterogeneity matter?**  Compare the exact
   model with the equal-cluster-size approximation on the Table 1
   organisations (:func:`heterogeneity_ablation`).
2. **Does the Draper-Ghosh variance approximation matter?**  Compare the
   published source-queue variance (Eq. 22) with a deterministic-service
   assumption (:func:`variance_ablation`).
3. **How far does the uniform-traffic model stretch?**  Evaluate the
   simulator under non-uniform patterns against the (uniform-traffic)
   analytical curve (:func:`traffic_pattern_ablation`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.model.homogeneous import EqualSizeApproximationModel
from repro.model.latency import MultiClusterLatencyModel
from repro.model.parameters import MessageSpec, PAPER_TIMING, TimingParameters
from repro.sim.config import SimulationConfig
from repro.sim.simulator import MultiClusterSimulator
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError
from repro.workloads.base import TrafficPattern


@dataclass(frozen=True)
class AblationPoint:
    """Latency of the reference and the variant at one offered traffic."""

    lambda_g: float
    reference: float
    variant: float

    @property
    def relative_difference(self) -> float:
        if not math.isfinite(self.reference) or not math.isfinite(self.variant):
            return math.nan
        return (self.variant - self.reference) / self.reference


@dataclass(frozen=True)
class AblationResult:
    """One ablation: what was varied and the point-by-point comparison."""

    name: str
    reference_label: str
    variant_label: str
    points: Tuple[AblationPoint, ...]

    def max_relative_difference(self) -> float:
        values = [
            abs(point.relative_difference)
            for point in self.points
            if not math.isnan(point.relative_difference)
        ]
        return max(values) if values else math.nan

    def mean_relative_difference(self) -> float:
        values = [
            point.relative_difference
            for point in self.points
            if not math.isnan(point.relative_difference)
        ]
        return sum(values) / len(values) if values else math.nan


def heterogeneity_ablation(
    spec: MultiClusterSpec,
    message: MessageSpec,
    offered_traffic: Sequence[float],
    *,
    timing: TimingParameters = PAPER_TIMING,
) -> AblationResult:
    """Exact heterogeneous model vs the equal-cluster-size approximation."""
    _check_traffic(offered_traffic)
    exact = MultiClusterLatencyModel(spec, message, timing)
    approximate = EqualSizeApproximationModel(spec, message, timing)
    points = tuple(
        AblationPoint(
            lambda_g=float(value),
            reference=exact.mean_latency(value),
            variant=approximate.mean_latency(value),
        )
        for value in offered_traffic
    )
    return AblationResult(
        name=f"heterogeneity ({spec.name or spec.total_nodes})",
        reference_label="heterogeneity-aware model",
        variant_label=f"equal-size approximation (n={approximate.equivalent_height})",
        points=points,
    )


def variance_ablation(
    spec: MultiClusterSpec,
    message: MessageSpec,
    offered_traffic: Sequence[float],
    *,
    timing: TimingParameters = PAPER_TIMING,
) -> AblationResult:
    """Draper-Ghosh source-queue variance (Eq. 22) vs deterministic service."""
    _check_traffic(offered_traffic)
    draper = MultiClusterLatencyModel(spec, message, timing)
    deterministic = MultiClusterLatencyModel(
        spec, message, timing, variance_approximation="zero"
    )
    points = tuple(
        AblationPoint(
            lambda_g=float(value),
            reference=draper.mean_latency(value),
            variant=deterministic.mean_latency(value),
        )
        for value in offered_traffic
    )
    return AblationResult(
        name=f"variance approximation ({spec.name or spec.total_nodes})",
        reference_label="Draper-Ghosh variance (Eq. 22)",
        variant_label="zero-variance (M/D/1) source queues",
        points=points,
    )


def traffic_pattern_ablation(
    spec: MultiClusterSpec,
    message: MessageSpec,
    offered_traffic: Sequence[float],
    patterns: Dict[str, Optional[TrafficPattern]],
    *,
    timing: TimingParameters = PAPER_TIMING,
    simulation_config: SimulationConfig = SimulationConfig(),
) -> Dict[str, AblationResult]:
    """Simulated latency under alternative traffic patterns vs the uniform model.

    ``patterns`` maps a label to a traffic pattern (``None`` means the
    uniform pattern).  Every pattern is simulated over the same traffic grid
    and compared against the analytical (uniform-traffic) curve, showing
    where the published model stops being a good predictor.
    """
    _check_traffic(offered_traffic)
    model = MultiClusterLatencyModel(spec, message, timing)
    reference_curve = [model.mean_latency(value) for value in offered_traffic]
    results: Dict[str, AblationResult] = {}
    for label, pattern in patterns.items():
        simulator = MultiClusterSimulator(
            spec, message, timing, config=simulation_config, pattern=pattern
        )
        points = []
        for value, reference in zip(offered_traffic, reference_curve):
            simulated = simulator.run(value)
            points.append(
                AblationPoint(
                    lambda_g=float(value),
                    reference=reference,
                    variant=simulated.mean_latency,
                )
            )
        results[label] = AblationResult(
            name=f"traffic pattern: {label}",
            reference_label="uniform-traffic analytical model",
            variant_label=f"simulation under {label}",
            points=tuple(points),
        )
    return results


def _check_traffic(offered_traffic: Sequence[float]) -> None:
    if len(offered_traffic) == 0:
        raise ValidationError("offered_traffic must contain at least one value")
    if any(value <= 0 for value in offered_traffic):
        raise ValidationError("offered traffic values must be > 0")
