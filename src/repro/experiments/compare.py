"""Model-versus-simulation agreement metrics.

The paper's claim is qualitative ("a good degree of accuracy ... in the
steady state region"); this module quantifies it so the benchmark harness can
assert it: mean/max relative error over the steady-state region, and the
ratio of the two saturation estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro import api
from repro.experiments.sweep import SweepResult, sweep_result_from_runset
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign import CampaignResult


@dataclass(frozen=True)
class ApplicabilityReport:
    """Whether the paper's analytical model applies to one scenario.

    The model (Eq. 35-36) is derived for the multi-cluster fat-tree family;
    topology-zoo scenarios run through the simulator only.  This report is
    how front-ends (the CLI ``run`` command, campaign summaries) state that
    per scenario instead of crashing inside the model.
    """

    scenario_name: str
    #: the organisation's display name (system or zoo topology)
    topology: str
    applicable: bool
    reason: str

    def summary(self) -> dict:
        return {
            "scenario": self.scenario_name,
            "topology": self.topology,
            "applicable": self.applicable,
            "reason": self.reason,
        }


def model_applicability(scenario: api.Scenario) -> ApplicabilityReport:
    """Report whether the analytical model applies to ``scenario``.

    Multi-cluster scenarios (``scenario.system`` set) are the family the
    paper's queueing model was derived for; zoo scenarios
    (``scenario.topology`` set) are simulation-only.
    """
    name = scenario.name or scenario.spec_label
    if scenario.system is not None:
        return ApplicabilityReport(
            scenario_name=name,
            topology=scenario.system.name or scenario.spec_label,
            applicable=True,
            reason="multi-cluster fat-tree system: the paper's Eq. 35-36 "
            "derivation applies",
        )
    return ApplicabilityReport(
        scenario_name=name,
        topology=scenario.network.name,
        applicable=False,
        reason=(
            f"zoo topology {scenario.network.name!r} is outside the "
            "multi-cluster fat-tree family the analytical model is derived "
            "for; simulation engines only"
        ),
    )


@dataclass(frozen=True)
class AgreementReport:
    """How well the analytical model tracks the simulation over one sweep."""

    sweep_name: str
    #: operating points in the steady-state region that have both values
    compared_points: int
    mean_relative_error: float
    max_relative_error: float
    #: offered traffic at which the model first saturates (inf if never)
    model_saturation: float
    #: offered traffic at which the simulation first exceeds the blow-up
    #: threshold (inf if never within the sweep)
    simulation_blowup: float

    @property
    def agrees_in_steady_state(self) -> bool:
        """The reproduction-level restatement of the paper's accuracy claim."""
        return self.compared_points > 0 and self.mean_relative_error < 0.2

    def summary(self) -> dict:
        return {
            "sweep": self.sweep_name,
            "compared_points": self.compared_points,
            "mean_relative_error": self.mean_relative_error,
            "max_relative_error": self.max_relative_error,
            "model_saturation": self.model_saturation,
            "simulation_blowup": self.simulation_blowup,
        }


def compare_model_and_simulation(
    sweep: SweepResult,
    *,
    blowup_factor: float = 5.0,
) -> AgreementReport:
    """Quantify the agreement of one sweep's model and simulation curves.

    Parameters
    ----------
    sweep:
        A sweep that was run with simulation enabled.
    blowup_factor:
        The simulation is considered saturated once its latency exceeds this
        multiple of the lowest simulated latency of the sweep (the knee of
        the curve in Fig. 3/4 terms).
    """
    if not sweep.has_simulation:
        raise ValidationError("the sweep was run without simulation")
    errors = []
    for point in sweep.steady_state_points():
        error = point.relative_error
        if not math.isnan(error):
            errors.append(abs(error))
    baseline = min(
        (
            point.simulated.mean_latency
            for point in sweep.points
            if point.simulated is not None and math.isfinite(point.simulated.mean_latency)
        ),
        default=math.inf,
    )
    simulation_blowup = math.inf
    for point in sweep.points:
        if point.simulated is None:
            continue
        latency = point.simulated.mean_latency
        if point.simulated.saturated or latency > blowup_factor * baseline:
            simulation_blowup = point.lambda_g
            break
    return AgreementReport(
        sweep_name=sweep.describe(),
        compared_points=len(errors),
        mean_relative_error=sum(errors) / len(errors) if errors else math.nan,
        max_relative_error=max(errors) if errors else math.nan,
        model_saturation=sweep.model_saturation_point(),
        simulation_blowup=simulation_blowup,
    )


def compare_runset(
    runset: api.RunSet,
    *,
    model_engine: str = "model",
    simulation_engine: str = "sim",
    blowup_factor: float = 5.0,
) -> AgreementReport:
    """Agreement metrics straight from a :class:`repro.api.RunSet`.

    The run set must contain both the analytical and the simulation series
    (the default engines of :func:`repro.api.run`).
    """
    sweep = sweep_result_from_runset(
        runset, model_engine=model_engine, simulation_engine=simulation_engine
    )
    return compare_model_and_simulation(sweep, blowup_factor=blowup_factor)


def compare_campaign(
    result: "CampaignResult",
    *,
    model_engine: str = "model",
    simulation_engine: str = "sim",
    blowup_factor: float = 5.0,
) -> Dict[str, AgreementReport]:
    """Agreement metrics for every campaign entry that ran both engines.

    Entries lacking either the model or the simulation series are skipped —
    a campaign may mix analysis-only and simulation-only scenarios — so the
    returned mapping covers exactly the entries where the paper's
    model-vs-simulation claim is testable, keyed by entry label.
    """
    reports: Dict[str, AgreementReport] = {}
    for label, runset in result:
        engines = runset.engines
        if model_engine not in engines or simulation_engine not in engines:
            continue
        reports[label] = compare_runset(
            runset,
            model_engine=model_engine,
            simulation_engine=simulation_engine,
            blowup_factor=blowup_factor,
        )
    return reports


def saturation_shift(report: AgreementReport) -> float:
    """Ratio model-saturation / simulation-blow-up (``nan`` if undetermined).

    Values below 1 mean the model is conservative (saturates earlier than the
    simulated system), which is the behaviour the paper reports near
    saturation.
    """
    if math.isinf(report.model_saturation) or math.isinf(report.simulation_blowup):
        return math.nan
    return report.model_saturation / report.simulation_blowup


def curves_match_in_shape(sweep: SweepResult, tolerance: float = 0.25) -> Tuple[bool, str]:
    """Cheap structural check used by the benchmarks.

    Verifies (a) both curves are non-decreasing over the steady-state region
    and (b) the model tracks the simulation within ``tolerance`` there.
    Returns (ok, reason).
    """
    steady = sweep.steady_state_points()
    if len(steady) < 2:
        return False, "fewer than two steady-state points"
    last_model = -math.inf
    last_sim = -math.inf
    for point in steady:
        if point.model_latency < last_model - 1e-9:
            return False, f"model curve decreases at lambda={point.lambda_g}"
        last_model = point.model_latency
        if point.simulated is not None and math.isfinite(point.simulated.mean_latency):
            if point.simulated.mean_latency < last_sim * 0.9:
                return False, f"simulation curve decreases at lambda={point.lambda_g}"
            last_sim = point.simulated.mean_latency
    if sweep.has_simulation:
        error = sweep.max_steady_state_error()
        if not math.isnan(error) and error > tolerance:
            return False, f"steady-state error {error:.2f} exceeds {tolerance}"
    return True, "ok"
