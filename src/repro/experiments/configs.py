"""The paper's experimental configurations (Table 1 and the figure settings).

Table 1 of the paper defines two heterogeneous system organisations used in
the validation study:

=======  ====  ===  =====================================================
N        C     m    node organisation (tree height n_i per cluster group)
=======  ====  ===  =====================================================
1120     32    8    n=1 for clusters 0-11, n=2 for 12-27, n=3 for 28-31
544      16    4    n=3 for clusters 0-7,  n=4 for 8-10,  n=5 for 11-15
=======  ====  ===  =====================================================

Fig. 3 plots mean message latency versus offered traffic for the N=1120
organisation (left panel M=32 flits, right panel M=64 flits, two curves per
panel for L_m = 256 and 512 bytes); Fig. 4 repeats this for N=544.  The
offered-traffic ranges below are the figure axis ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.model.parameters import (
    MessageSpec,
    PAPER_MESSAGE_SPECS,
    PAPER_TIMING,
    TimingParameters,
)
from repro.topology.multicluster import ClusterSpec, MultiClusterSpec
from repro.utils.validation import ValidationError

#: Offered-traffic axis ranges of the paper's figures, keyed by
#: (total nodes, message length in flits).
FIGURE_TRAFFIC_RANGES: Dict[Tuple[int, int], float] = {
    (1120, 32): 5.0e-4,
    (1120, 64): 2.5e-4,
    (544, 32): 1.0e-3,
    (544, 64): 5.0e-4,
}


def table1_specs() -> Tuple[MultiClusterSpec, MultiClusterSpec]:
    """Both Table 1 organisations, largest first."""
    return (table1_system(1120), table1_system(544))


def table1_system(total_nodes: int) -> MultiClusterSpec:
    """One Table 1 organisation selected by its total node count (1120 or 544)."""
    if total_nodes == 1120:
        return MultiClusterSpec.from_groups(
            m=8,
            groups=[ClusterSpec(n=1, count=12), ClusterSpec(n=2, count=16), ClusterSpec(n=3, count=4)],
            name="N=1120",
        )
    if total_nodes == 544:
        return MultiClusterSpec.from_groups(
            m=4,
            groups=[ClusterSpec(n=3, count=8), ClusterSpec(n=4, count=3), ClusterSpec(n=5, count=5)],
            name="N=544",
        )
    raise ValidationError(
        f"Table 1 defines organisations for 1120 and 544 nodes, not {total_nodes}"
    )


def paper_timing() -> TimingParameters:
    """The channel timing used throughout Section 4."""
    return PAPER_TIMING


def paper_message_specs() -> Tuple[MessageSpec, ...]:
    """The four (M, Lm) combinations of Fig. 3 / Fig. 4."""
    return PAPER_MESSAGE_SPECS


@dataclass(frozen=True)
class FigureSpec:
    """One panel of Fig. 3 or Fig. 4 (a fixed system and message length)."""

    figure: str
    total_nodes: int
    message_length: int
    flit_sizes: Tuple[int, ...] = (256, 512)
    num_points: int = 11

    @property
    def system(self) -> MultiClusterSpec:
        return table1_system(self.total_nodes)

    @property
    def max_traffic(self) -> float:
        return FIGURE_TRAFFIC_RANGES[(self.total_nodes, self.message_length)]

    def offered_traffic(self, num_points: int | None = None) -> np.ndarray:
        """The offered-traffic grid of the panel (excludes the idle point 0)."""
        points = num_points if num_points is not None else self.num_points
        return np.linspace(0.0, self.max_traffic, points + 1)[1:]

    def message_specs(self) -> Tuple[MessageSpec, ...]:
        return tuple(
            MessageSpec(length_flits=self.message_length, flit_bytes=flit_bytes)
            for flit_bytes in self.flit_sizes
        )

    def describe(self) -> str:
        return (
            f"{self.figure}: N={self.total_nodes}, M={self.message_length} flits, "
            f"Lm in {self.flit_sizes}"
        )


#: The four panels of the paper's two validation figures.
FIGURE_SPECS: Dict[str, FigureSpec] = {
    "fig3-M32": FigureSpec(figure="fig3", total_nodes=1120, message_length=32),
    "fig3-M64": FigureSpec(figure="fig3", total_nodes=1120, message_length=64),
    "fig4-M32": FigureSpec(figure="fig4", total_nodes=544, message_length=32),
    "fig4-M64": FigureSpec(figure="fig4", total_nodes=544, message_length=64),
}


def figure_panels(figure: str) -> Sequence[FigureSpec]:
    """The panels belonging to one figure (``"fig3"`` or ``"fig4"``)."""
    panels = [spec for spec in FIGURE_SPECS.values() if spec.figure == figure]
    if not panels:
        raise ValidationError(f"unknown figure {figure!r}; use 'fig3' or 'fig4'")
    return panels
