"""Reproduction of Table 1: the validation system organisations.

The table itself is static information, but regenerating it from the
:class:`MultiClusterSpec` objects verifies that the organisations we feed to
the model and the simulator really are the paper's (node counts, cluster
counts, switch arities and the per-group tree heights all have to line up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.configs import table1_specs
from repro.topology.multicluster import MultiClusterSpec, MultiClusterSystem


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 plus derived structural quantities."""

    name: str
    total_nodes: int
    num_clusters: int
    switch_ports: int
    organisation: str
    icn2_height: int
    total_switches: int
    cluster_sizes: Tuple[int, ...]

    def as_cells(self) -> Tuple:
        """The row in the paper's column order (N, C, m, organisation)."""
        return (self.total_nodes, self.num_clusters, self.switch_ports, self.organisation)


def _organisation_string(spec: MultiClusterSpec) -> str:
    groups: List[str] = []
    heights = spec.cluster_heights
    start = 0
    for index in range(1, len(heights) + 1):
        if index == len(heights) or heights[index] != heights[start]:
            groups.append(f"ni={heights[start]} i in [{start},{index - 1}]")
            start = index
    return "; ".join(groups)


def table1_row(spec: MultiClusterSpec) -> Table1Row:
    """Build one Table 1 row from a system organisation."""
    system = MultiClusterSystem(spec)
    return Table1Row(
        name=spec.name or f"N={spec.total_nodes}",
        total_nodes=spec.total_nodes,
        num_clusters=spec.num_clusters,
        switch_ports=spec.m,
        organisation=_organisation_string(spec),
        icn2_height=spec.icn2_height,
        total_switches=system.total_switches,
        cluster_sizes=spec.cluster_sizes,
    )


def table1_rows() -> Tuple[Table1Row, ...]:
    """Both rows of Table 1 (N=1120 then N=544)."""
    return tuple(table1_row(spec) for spec in table1_specs())


def table1_campaign(
    *, points: int = 8, budget: str = "quick", seed: int | None = 0
) -> "Campaign":
    """Both Table 1 validation organisations as one executable campaign.

    The returned plan runs the analytical model and the simulator over the
    registered ``table1/1120`` and ``table1/544`` scenarios; executing it
    with ``parallel=True`` fans both organisations' simulation points into
    one shared process pool, and the default result store makes repeated
    validation runs incremental.
    """
    # Imported lazily: repro.campaign pulls in repro.api, which reaches back
    # into repro.experiments.configs — importing it at module level here
    # would create a cycle during package initialisation.
    from repro.campaign import Campaign

    return Campaign.from_scenarios(
        ("table1/1120", "table1/544"),
        points=points,
        budget=budget,
        seed=seed,
        name="table1",
    )
